"""Service load benchmark: shard-scaling curve with SLOs.

Replays the same seeded ``repro.loadgen`` campaign — 1000+ simulated users,
mixed flow kinds, heavy-tailed arrivals, one deliberately flaky model lane
— against the sharded router at increasing shard counts, and records
p50/p95/p99 latency, shed rate, breaker trips and sustained throughput in
``BENCH_service.json`` at the repo root.

Each shard is a broker with a small bounded worker pool (modeling one
serving process on one core), so the offered load saturates a single shard
and the scaling curve measures what sharding actually buys.  The schedule
is identical across shard counts; only capacity changes.

Hard checks: **zero stranded futures** in every run (the shutdown-vs-submit
and shed-vs-probe fixes guard this), every submission accounted for in
exactly one outcome bucket, and — in full mode — at least **2x sustained
throughput at 4 shards vs 1**.

Run standalone (``python benchmarks/bench_service.py``), in CI smoke form
(``--smoke``: fewer users, shards 1 and 2, no speedup floor), or via
pytest (``pytest benchmarks/bench_service.py -s``).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _util import print_table  # noqa: E402

from repro.loadgen import LoadConfig, run_load  # noqa: E402
from repro.service import BrokerConfig  # noqa: E402

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_service.json")

# One serving process: 2 backend-call slots, small bounded lane queues, a
# 2 s request deadline.  The campaign's offered load (~1200 rps at 8 ms
# mean service time ≈ 9.6 erlangs) saturates one shard's 2 slots and fits
# comfortably in 4 shards' 8 — that head-room gap is the curve.
_SHARD_CONFIG = dict(queue_capacity=64, max_concurrent=2,
                     request_timeout_s=2.0, breaker_threshold=5,
                     breaker_reset_s=0.25)


def _campaign(smoke: bool) -> LoadConfig:
    if smoke:
        return LoadConfig(users=200, seed=7, duration_s=1.5,
                          service_time_ms=8.0, time_scale=1.5)
    return LoadConfig(users=1200, seed=7, duration_s=4.0,
                      service_time_ms=8.0)


def bench_shard_scaling(smoke: bool) -> dict:
    cfg = _campaign(smoke)
    shard_counts = (1, 2) if smoke else (1, 2, 4)
    results: dict[str, dict] = {}
    for shards in shard_counts:
        report = run_load(cfg, shards=shards,
                          broker_config=BrokerConfig(**_SHARD_CONFIG))
        assert report.stranded == 0, (
            f"{report.stranded} stranded futures at {shards} shard(s)")
        assert report.accounted() == report.requests, (
            f"accounting leak at {shards} shard(s): "
            f"{report.accounted()} != {report.requests}")
        results[str(shards)] = report.as_dict()
    base = results[str(shard_counts[0])]["throughput_rps"]
    top = results[str(shard_counts[-1])]["throughput_rps"]
    speedup = round(top / base, 2) if base else 0.0
    return {
        "smoke": smoke,
        "users": cfg.users,
        "requests": results[str(shard_counts[0])]["requests"],
        "mix": "vrank/autochip/chat/structured sessions, 8 model lanes + "
               "1 flaky lane, heavy-tailed Pareto arrivals and service "
               "times, tenant share 0.25",
        "shard_config": dict(_SHARD_CONFIG),
        "shards": results,
        "throughput_speedup": speedup,
    }


def main(argv=None) -> dict:
    smoke = "--smoke" in (sys.argv[1:] if argv is None else argv)
    data = {"cpus": os.cpu_count(),
            "shard_scaling": bench_shard_scaling(smoke)}
    with open(_OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    sc = data["shard_scaling"]
    print_table(
        "E-service: loadgen campaign vs shard count",
        ["shards", "ok", "rps", "p50 ms", "p95 ms", "p99 ms",
         "shed rate", "trips", "stranded"],
        [[n, r["ok"], r["throughput_rps"], r["p50_ms"], r["p95_ms"],
          r["p99_ms"], r["shed_rate"], r["breaker_trips"], r["stranded"]]
         for n, r in sorted(sc["shards"].items(), key=lambda kv: int(kv[0]))])
    print_table("E-service: summary",
                ["users", "requests", "speedup", "smoke"],
                [[sc["users"], sc["requests"], sc["throughput_speedup"],
                  sc["smoke"]]])
    if not smoke:
        assert sc["users"] >= 1000
        assert sc["throughput_speedup"] >= 2.0, (
            f"4-shard speedup {sc['throughput_speedup']} < 2.0")
    return data


def test_service_scaling(benchmark=None):
    sc = main(["--smoke"])["shard_scaling"]
    for report in sc["shards"].values():
        assert report["stranded"] == 0
    assert sc["throughput_speedup"] > 0


if __name__ == "__main__":
    main()
