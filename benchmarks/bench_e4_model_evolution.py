"""E4 — Section IV: the evolution of LLMs for hardware design.

Regenerates the historical comparison: DAVE (finetuned GPT-2) solves novice
problems but collapses on complex/open-ended ones; VeriGen (finetuned
CodeGen-16B) outperforms ChatGPT-3.5 and approaches GPT-4 on in-distribution
Verilog at a fraction of the size; conversational models dominate open-ended
specs.
"""

from _util import full_eval, print_table

from repro.bench import all_problems, evaluate_model
from repro.llm import get_model

MODELS = ["dave-gpt2", "verigen-codegen-16b", "chatgpt-3.5", "gpt-4"]
K = 5 if full_eval() else 3
SEED = 0


def _bucket(problems, lo, hi):
    return [p for p in problems if lo <= p.complexity <= hi]


def test_e4_model_evolution(benchmark):
    problems = all_problems()
    novice = _bucket(problems, 1, 2)
    complex_ = _bucket(problems, 3, 5)

    def eval_one():
        return evaluate_model("dave-gpt2", novice, k=1, seed=SEED)

    benchmark(eval_one)

    rows = []
    stats = {}
    for model in MODELS:
        novice_suite = evaluate_model(model, novice, k=K, seed=SEED)
        complex_suite = evaluate_model(model, complex_, k=K, seed=SEED)
        stats[model] = (novice_suite, complex_suite)
        profile = get_model(model)
        rows.append([model, f"{profile.params_b:g}B",
                     f"{novice_suite.pass_at_k(1):.2f}",
                     f"{novice_suite.pass_at_k(K):.2f}",
                     f"{complex_suite.pass_at_k(1):.2f}",
                     f"{complex_suite.pass_at_k(K):.2f}"])
    print_table(
        f"E4: model evolution, pass@1/pass@{K} (Section IV)",
        ["model", "params", "novice p@1", f"novice p@{K}",
         "complex p@1", f"complex p@{K}"], rows)

    dave_novice = stats["dave-gpt2"][0].pass_at_k(K)
    dave_complex = stats["dave-gpt2"][1].pass_at_k(K)
    verigen_complex = stats["verigen-codegen-16b"][1].pass_at_k(K)
    gpt35_complex = stats["chatgpt-3.5"][1].pass_at_k(K)
    gpt4_complex = stats["gpt-4"][1].pass_at_k(K)

    # DAVE: "very successful at ... simple problems, but significantly
    # struggled with more complex designs".
    assert dave_novice >= 0.5
    assert dave_complex < dave_novice
    # VeriGen "outperformed ChatGPT-3.5 and performed similarly well to
    # GPT-4 at a fraction of the model size".
    assert verigen_complex >= gpt35_complex
    assert abs(verigen_complex - gpt4_complex) <= 0.35
    assert get_model("verigen-codegen-16b").params_b \
        < get_model("gpt-4").params_b / 10


def test_e4_open_ended_needs_conversational(benchmark):
    problems = [p for p in all_problems() if p.open_ended]

    def eval_open():
        return {model: evaluate_model(model, problems, k=K, seed=SEED)
                for model in ("dave-gpt2", "gpt-4")}

    suites = benchmark.pedantic(eval_open, rounds=1, iterations=1)
    rows = [[m, f"{s.pass_at_k(K):.2f}"] for m, s in suites.items()]
    print_table("E4: open-ended specs (Chip-Chat regime)",
                ["model", f"pass@{K}"], rows)
    assert suites["gpt-4"].pass_at_k(K) >= suites["dave-gpt2"].pass_at_k(K)
