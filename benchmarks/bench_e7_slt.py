"""E7 — Section V / Fig. 5: LLM-based SLT generation vs genetic programming.

Regenerates the paper's headline numbers:

* LLM loop, 24 h of rig time → ~2021 snippets, best ≈ 5.042 W;
* GP, 39 h → best ≈ 5.682 W (Δ ≈ 0.640 W, ~12.7%);
* the LLM plateaus well before its budget ends, GP keeps improving —
  the stated reason the GP run was allowed to go longer.

The full budget needs REPRO_FULL_EVAL=1; the default runs a proportionally
scaled version with identical mechanics (same rig, same loops).
"""

from _util import full_eval, print_table

from repro.slt import run_gp_slt, run_llm_slt

LLM_HOURS = 24.0 if full_eval() else 1.2
GP_HOURS = 39.0 if full_eval() else 1.95
SEED = 7


def test_e7_llm_vs_gp(benchmark):
    def llm_run():
        return run_llm_slt(model="codellama-34b-instruct-ft",
                           hours=LLM_HOURS, seed=SEED)

    llm = benchmark.pedantic(llm_run, rounds=1, iterations=1)
    gp = run_gp_slt(hours=GP_HOURS, seed=SEED)

    print_table(
        "E7: SLT power maximization (Section V; paper: LLM 5.042 W in 24 h "
        "/ 2021 snippets, GP 5.682 W in 39 h)",
        ["method", "hours", "snippets", "best power (W)"],
        [["LLM loop (SCoT + temp adapt)", f"{llm.elapsed_hours:.1f}",
          llm.snippets_generated, f"{llm.best_power_w:.3f}"],
         ["genetic programming", f"{gp.elapsed_hours:.1f}",
          gp.snippets_generated, f"{gp.best_power_w:.3f}"],
         ["difference", "", "", f"{gp.best_power_w - llm.best_power_w:.3f}"]])

    # Shape: GP with the longer budget beats the LLM loop.
    assert gp.best_power_w > llm.best_power_w
    # Both land in the BOOM-on-FPGA power band.
    assert 4.0 < llm.best_power_w < 7.0
    assert 4.0 < gp.best_power_w < 7.5
    # Snippet throughput tracks the rig-time model (~2021 per 24 h).
    expected = LLM_HOURS * 3600 / 42.75
    assert abs(llm.snippets_generated - expected) / expected < 0.15


def test_e7_llm_plateau_vs_gp_progress(benchmark):
    def runs():
        llm = run_llm_slt(model="codellama-34b-instruct-ft",
                          hours=LLM_HOURS, seed=SEED + 1)
        gp = run_gp_slt(hours=LLM_HOURS, seed=SEED + 1)
        return llm, gp

    llm, gp = benchmark.pedantic(runs, rounds=1, iterations=1)

    def best_at_fraction(result, fraction):
        events = result.events
        cutoff = max(1, int(len(events) * fraction))
        return events[cutoff - 1].best_w

    rows = []
    for frac in (0.25, 0.5, 0.75, 1.0):
        rows.append([f"{frac:.0%}",
                     f"{best_at_fraction(llm, frac):.3f}",
                     f"{best_at_fraction(gp, frac):.3f}"])
    print_table("E7: best-so-far vs budget fraction (plateau analysis)",
                ["budget used", "LLM best (W)", "GP best (W)"], rows)

    # Paper: "for the LLM-based approach, significant changes rarely, if at
    # all, happen" late in the run — ≥95% of its final quality is reached by
    # half budget.
    llm_half = best_at_fraction(llm, 0.5)
    assert llm_half >= llm.best_power_w * 0.95
