"""E11 — Section VI future directions, implemented and measured.

The paper closes with proposals; this benchmark treats three of them as
testable systems:

* **High-level guided RTL debugging** — cross-level comparison against an
  LLM-written untimed C model localizes RTL bugs better than bare FAIL
  lines.
* **Privacy & security** — a rare-trigger hardware trojan slips past
  directed testbenches but not formal equivalence checking.
* **Intelligent kernel extraction** — profile-driven kernel detection with
  transfer-cost-aware accelerator planning.
"""

from _util import full_eval, print_table

from repro.bench import get_problem
from repro.flows import detection_sweep, guided_debug, guided_debug_sweep
from repro.hls import extract_kernels
from repro.llm import SimulatedLLM

SEEDS = tuple(range(8 if full_eval() else 4))


def test_e11_guided_debugging(benchmark):
    problems = [get_problem(p) for p in ("c2_gray", "c2_absdiff", "c3_alu",
                                         "c2_adder8")]

    def one():
        return guided_debug(problems[0], SimulatedLLM("gpt-4", seed=0),
                            seed=0)

    benchmark(one)

    wins = {True: 0, False: 0}
    iters = {True: 0, False: 0}
    # A mid-tier model at high temperature: the regime where debugging help
    # matters (a top model rarely needs more than the first attempt).
    # Each (seed, problem) cell is independent, so the sweep honours
    # REPRO_JOBS (results are identical to the serial loop).
    total = len(SEEDS) * len(problems)
    for use_x in (True, False):
        sweep = guided_debug_sweep(problems, model="codellama-34b-instruct",
                                   seeds=SEEDS, use_crosscheck=use_x,
                                   temperature=1.3)
        assert len(sweep.results) == total
        wins[use_x] = sum(r.success for r in sweep.results)
        iters[use_x] = sum(r.iterations for r in sweep.results)
    print_table(
        "E11a: high-level guided RTL debugging (Section VI)",
        ["feedback", "debug success", "mean iterations"],
        [["cross-level (C model)", f"{wins[True] / total:.0%}",
          f"{iters[True] / total:.1f}"],
         ["plain testbench FAIL lines", f"{wins[False] / total:.0%}",
          f"{iters[False] / total:.1f}"]])
    assert wins[True] >= wins[False]


def test_e11_trojan_detection(benchmark):
    problems = [get_problem(p) for p in ("c2_adder8", "c2_absdiff", "c3_alu",
                                         "c1_parity")]

    def sweep():
        return detection_sweep(problems, seeds=SEEDS, cosim_vectors=64)

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E11b: hardware-trojan detection (Section VI privacy/security)",
        ["detector", "catch rate"],
        [["directed sign-off testbench", f"{rates['testbench']:.0%}"],
         ["random co-simulation (64 vec)", f"{rates['random_cosim']:.0%}"],
         ["formal equivalence (CEC)", f"{rates['exhaustive_cec']:.0%}"]])
    assert rates["exhaustive_cec"] == 1.0
    assert rates["testbench"] < 1.0   # rare triggers evade directed tests


def test_e11_kernel_extraction(benchmark):
    workload = """
int hot_mac(int a[8], int b[8]) {
    int acc = 0;
    for (int i = 0; i < 8; i++) { acc += a[i] * b[i]; }
    return acc;
}
int tiny(int a[32]) { return a[0] + 1; }
int main() {
    int a[8]; int b[8]; int big[32];
    for (int i = 0; i < 8; i++) { a[i] = i; b[i] = i * 3; }
    for (int i = 0; i < 32; i++) { big[i] = i; }
    int total = 0;
    for (int r = 0; r < 25; r++) { total += hot_mac(a, b); }
    for (int r = 0; r < 3; r++) { total += tiny(big); }
    return total;
}
"""

    report = benchmark(lambda: extract_kernels(workload, min_share=0.01))
    from repro.hls import plan_accelerator
    plans = {p.function: p for p in report.plans}
    # 'tiny' may fall below the hot-kernel share threshold; plan it
    # explicitly to show the transfer-cost decision.
    if "tiny" not in plans:
        plans["tiny"] = plan_accelerator(workload, "tiny")
    rows = []
    for plan in plans.values():
        rows.append([plan.function, f"{plan.cpu_cycles_per_call:.0f}",
                     f"{plan.offload_cycles_per_call:.0f}",
                     f"{plan.speedup_per_call:.1f}x",
                     "offload" if plan.worthwhile else "keep on CPU"])
    print_table("E11c: kernel extraction + transfer-aware planning",
                ["kernel", "CPU cy/call", "offload cy/call", "speedup",
                 "decision"], rows)
    assert plans["hot_mac"].worthwhile
    assert not plans["tiny"].worthwhile  # transfer cost dominates
