"""E6 — Fig. 4: AutoChip tree search, feedback vs candidate sampling.

Regenerates the paper's AutoChip finding: across four commercial-model
profiles, at a matched generation budget, only the most capable model
(GPT-4o) benefits significantly more from feedback iterations (depth) than
from sampling more candidates (breadth) — weaker models cannot exploit EDA
tool error messages.
"""

from _util import full_eval, print_table

from repro.bench import problems_by
from repro.flows import compare_budgets, run_autochip
from repro.llm import AUTOCHIP_EVAL_MODELS

BUDGET = 5
SEEDS = tuple(range(6 if full_eval() else 3))
# High-temperature candidate sampling on the hardest problems: the regime
# where breadth-vs-depth separates the models (every sample carries faults,
# so winning requires either many lottery tickets or real feedback use).
TEMPERATURE = 1.3


def _problem_set():
    return problems_by(complexity=4) + problems_by(complexity=5)


def test_e6_autochip_tree_search(benchmark):
    problems = _problem_set()

    def run_once():
        return run_autochip(problems[0], model="gpt-4o", k=3, depth=2, seed=0)

    result = benchmark(run_once)
    assert result.generations <= 6

    rows = []
    gains = {}
    for model in AUTOCHIP_EVAL_MODELS:
        comparison = compare_budgets(model, problems, budget=BUDGET,
                                     seeds=SEEDS, temperature=TEMPERATURE)
        gains[model] = comparison.feedback_gain
        rows.append([model, f"{comparison.breadth_success:.2f}",
                     f"{comparison.depth_success:.2f}",
                     f"{comparison.feedback_gain:+.2f}"])
    print_table(
        f"E6: AutoChip breadth (k={BUDGET}, d=1) vs depth (k=1, d={BUDGET})",
        ["model", "breadth", "depth (feedback)", "feedback gain"], rows)

    # Paper shape: the top model extracts the largest gain from feedback.
    top_gain = gains["gpt-4o"]
    others = [gains[m] for m in AUTOCHIP_EVAL_MODELS if m != "gpt-4o"]
    assert top_gain >= max(others) - 1e-9
    assert top_gain >= 0.0


def test_e6_depth_sweep_gpt4o(benchmark):
    problems = _problem_set()[:3]

    def sweep():
        out = {}
        for depth in (1, 2, 4):
            wins = 0
            for seed in SEEDS:
                for problem in problems:
                    r = run_autochip(problem, model="gpt-4o", k=2,
                                     depth=depth, seed=seed,
                                     temperature=TEMPERATURE)
                    wins += r.success
            out[depth] = wins / (len(SEEDS) * len(problems))
        return out

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E6: success vs tree depth (gpt-4o, k=2)",
                ["depth d", "success rate"],
                [[d, f"{r:.2f}"] for d, r in rates.items()])
    assert rates[4] >= rates[1]
