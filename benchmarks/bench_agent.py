"""Planner-agent task suite benchmark -> BENCH_agent.json.

Scores the multi-step task suite (``repro.tasks``) pass@k per model —
each task is a natural-language goal the planner must decompose into
registry tool calls — and records the tool sequences actually planned,
flagging which solved tasks required sequences the fixed stage pipeline
cannot express (the acceptance scenario is ``alu_ppa_tune``'s
PPA-report → targeted-fix → re-report loop).  The RAG grounding layer is
benchmarked alongside: doc retrieval accuracy and model answer
faithfulness over the labeled docqa question set.

Run standalone (``python benchmarks/bench_agent.py``) or via pytest
(``pytest benchmarks/bench_agent.py -s``).  ``REPRO_FULL_EVAL=1`` raises
k and widens the model grid.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _util import full_eval, print_table  # noqa: E402

from repro.llm import answer_faithfulness, retrieval_accuracy  # noqa: E402
from repro.tasks import TASKS, run_task_suite  # noqa: E402

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_agent.json")

_MODELS_QUICK = ("gpt-4o", "gpt-4", "chatgpt-3.5")
_MODELS_FULL = _MODELS_QUICK + ("codellama-34b-instruct", "rtlcoder-7b")


def bench_task_suite(models, k: int) -> dict:
    """pass@k per (model, task) through the SweepScheduler grid."""
    suite = {}
    for model in models:
        result = run_task_suite(model, k=k, jobs="auto")
        suite[model] = {
            "k": result.k,
            "solved": result.solved,
            "tasks": {
                score.task_id: {
                    "attempts": score.attempts,
                    "passes": score.passes,
                    "pass_at_k": score.pass_at_k,
                    "pass_rate": round(score.pass_rate, 6),
                    "pipeline_expressible": score.pipeline_expressible,
                    "tool_sequences": score.tool_sequences,
                }
                for score in result.scores
            },
        }
    return suite


def bench_grounding(models) -> dict:
    """RAG quality: retrieval accuracy plus per-model answer faithfulness."""
    return {
        "retrieval_top1": round(retrieval_accuracy(top_k=1), 6),
        "retrieval_top3": round(retrieval_accuracy(top_k=3), 6),
        "faithfulness": {m: round(answer_faithfulness(m, seed=0), 6)
                         for m in models},
    }


def main() -> dict:
    models = _MODELS_FULL if full_eval() else _MODELS_QUICK
    k = 5 if full_eval() else 3
    data = {
        "k": k,
        "models": list(models),
        "task_count": len(TASKS),
        "suite": bench_task_suite(models, k),
        "docqa": bench_grounding(models),
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print_table(
        f"E-agent: task suite pass@{k} (planner on)",
        ["task", "pipeline"] + [f"{m}" for m in models],
        [[task.task_id,
          "fixed-ok" if task.pipeline_expressible else "planner-only"]
         + [f"{data['suite'][m]['tasks'][task.task_id]['passes']}/{k}"
            for m in models]
         for task in TASKS])
    print_table(
        "E-agent: RAG grounding quality",
        ["metric", "value"],
        [["retrieval_top1", data["docqa"]["retrieval_top1"]],
         ["retrieval_top3", data["docqa"]["retrieval_top3"]]]
        + [[f"faithfulness[{m}]", data["docqa"]["faithfulness"][m]]
           for m in models])
    return data


def test_agent_task_suite(benchmark=None):
    data = main()
    # Acceptance: >= 6 scenarios scored pass@k, and the strongest model
    # solves the pipeline-inexpressible PPA tuning loop.
    assert data["task_count"] >= 6
    best = data["suite"]["gpt-4o"]
    assert best["tasks"]["alu_ppa_tune"]["pass_at_k"]
    tuned = best["tasks"]["alu_ppa_tune"]["tool_sequences"]
    assert any("tune_synthesis" in seq for seq in tuned)
    # The pipeline-inexpressible flag is recorded for the report.
    assert not best["tasks"]["alu_ppa_tune"]["pipeline_expressible"]
    # Retrieval must stay well above chance (18 docs -> ~0.06).
    assert data["docqa"]["retrieval_top1"] >= 0.6
    assert data["docqa"]["retrieval_top3"] >= 0.8


if __name__ == "__main__":
    main()
