"""E9 — Fig. 6: the unified multi-modal EDA agent.

Regenerates: end-to-end success of the spec→QoR pipeline with cross-stage
feedback enabled vs disabled (the agent's defining feature per Section VI),
plus the multi-modal state accumulated per design.
"""

from _util import full_eval, print_table

from repro.bench import get_problem
from repro.core import run_agent_sweep

PROBLEMS = ["c2_gray", "c2_counter", "c3_alu", "c3_edge", "c4_seqdet",
            "c4_sat_counter", "c5_accumulator_cpu"]
SEEDS = tuple(range(3 if full_eval() else 2))
# A mid-tier profile on hard problems: the regime where closing the loop
# matters (a top model saturates the suite with or without feedback).
MODEL = "chatgpt-3.5"


def test_e9_feedback_ablation(benchmark):
    problems = [get_problem(p) for p in PROBLEMS]

    def run_with_feedback():
        return run_agent_sweep(problems, model=MODEL, enable_feedback=True,
                               seeds=SEEDS)

    with_feedback = benchmark.pedantic(run_with_feedback, rounds=1,
                                       iterations=1)
    without = run_agent_sweep(problems, model=MODEL, enable_feedback=False,
                              seeds=SEEDS)

    rows = [["cross-stage feedback ON", f"{with_feedback.end_to_end_rate:.0%}"],
            ["cross-stage feedback OFF", f"{without.end_to_end_rate:.0%}"]]
    print_table("E9: unified agent (Fig. 6) — closed-loop ablation",
                ["configuration", "end-to-end success"], rows)

    stage_rows = []
    rates_on = with_feedback.stage_success_rates()
    rates_off = without.stage_success_rates()
    for stage in rates_on:
        stage_rows.append([stage, f"{rates_on[stage]:.0%}",
                           f"{rates_off.get(stage, 0.0):.0%}"])
    print_table("E9: per-stage success", ["stage", "feedback ON",
                                          "feedback OFF"], stage_rows)

    assert with_feedback.end_to_end_rate >= without.end_to_end_rate


def test_e9_multimodal_state(benchmark):
    problems = [get_problem(p) for p in PROBLEMS[:3]]

    def sweep():
        return run_agent_sweep(problems, model="gpt-4o", seeds=(0,))

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for report in result.reports:
        modalities = report.state.modalities_present()
        qor = report.state.ppa.summary() if report.state.ppa else "-"
        rows.append([report.problem_id, ", ".join(modalities), qor[:60]])
    print_table("E9: multi-modal design state", ["design", "modalities",
                                                 "QoR"], rows)
    successful = [r for r in result.reports if r.success]
    for report in successful:
        assert {"spec", "rtl", "netlist", "qor"} \
            <= set(report.state.modalities_present())
