"""E5 — Section IV [10]: the structured feedback-driven design flow.

Regenerates: fraction of runs needing no human feedback (paper: about half
for GPT-4 on a simple benchmark set) and the generated-testbench coverage
deficiency (designs passing the model's own testbench but failing sign-off).
"""

from _util import full_eval, print_table

from repro.bench import problems_by
from repro.flows import run_structured_sweep

MODELS = ["chatgpt-3.5", "gpt-4"]
SEEDS = tuple(range(6 if full_eval() else 3))


def test_e5_structured_flow(benchmark):
    problems = problems_by(complexity=2) + problems_by(complexity=1)

    def run_gpt4():
        return run_structured_sweep("gpt-4", problems[:4], seeds=(0,))

    benchmark.pedantic(run_gpt4, rounds=1, iterations=1)

    rows = []
    sweeps = {}
    for model in MODELS:
        sweep = run_structured_sweep(model, problems, seeds=SEEDS)
        sweeps[model] = sweep
        rows.append([model, f"{sweep.success_rate:.0%}",
                     f"{sweep.no_human_rate:.0%}",
                     f"{sweep.coverage_gap_rate:.0%}"])
    print_table("E5: structured feedback flow ([10])",
                ["model", "sign-off success", "no human needed",
                 "coverage gap"], rows)

    gpt4 = sweeps["gpt-4"]
    gpt35 = sweeps["chatgpt-3.5"]
    # Paper: ~half of GPT-4 runs needed no human feedback at all.
    assert 0.25 <= gpt4.no_human_rate <= 0.85
    assert gpt4.no_human_rate >= gpt35.no_human_rate
    # Paper: generated testbenches lack acceptable coverage — the gap shows
    # up somewhere in the sweep.
    total_gap = gpt4.coverage_gap_rate + gpt35.coverage_gap_rate
    assert total_gap >= 0.0
