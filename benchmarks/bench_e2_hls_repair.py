"""E2 — Fig. 2: automated C/C++ program repair for HLS.

Regenerates: repair success across the incompatible-workload suite with and
without RAG, plus the PPA-optimization stage's latency improvements.
Expected shape: RAG > no-RAG on repair success; stage-4 pragma tuning never
hurts latency.
"""

from _util import full_eval, print_table

from repro.bench.workloads import REPAIR_WORKLOADS
from repro.hls import HlsRepairEngine
from repro.llm import SimulatedLLM

MODEL = "gpt-4"
SEEDS = tuple(range(6 if full_eval() else 3))


def _run_suite(use_rag: bool, optimize_ppa: bool = False):
    results = []
    for seed in SEEDS:
        for workload in REPAIR_WORKLOADS:
            engine = HlsRepairEngine(SimulatedLLM(MODEL, seed=seed),
                                     use_rag=use_rag, seed=seed,
                                     optimize_ppa=optimize_ppa)
            results.append((workload,
                            engine.repair(workload.source, workload.top)))
    return results


def _success_rate(results):
    return sum(r.success for _, r in results) / len(results)


def test_e2_repair_with_rag(benchmark):
    workload = REPAIR_WORKLOADS[0]

    def run_one():
        engine = HlsRepairEngine(SimulatedLLM(MODEL, seed=0), use_rag=True,
                                 seed=0, optimize_ppa=True)
        return engine.repair(workload.source, workload.top)

    result = benchmark(run_one)
    assert result.rounds >= 1

    with_rag = _run_suite(use_rag=True)
    without_rag = _run_suite(use_rag=False)
    rate_rag = _success_rate(with_rag)
    rate_plain = _success_rate(without_rag)

    rows = []
    for workload in REPAIR_WORKLOADS:
        rag_ok = sum(r.success for w, r in with_rag
                     if w.workload_id == workload.workload_id)
        plain_ok = sum(r.success for w, r in without_rag
                       if w.workload_id == workload.workload_id)
        rows.append([workload.workload_id, f"{rag_ok}/{len(SEEDS)}",
                     f"{plain_ok}/{len(SEEDS)}"])
    rows.append(["TOTAL", f"{rate_rag:.0%}", f"{rate_plain:.0%}"])
    print_table("E2: HLS repair success (Fig. 2 stage 2 ablation)",
                ["workload", "with RAG", "without RAG"], rows)

    # Paper shape: retrieved correction templates guide repair better.
    assert rate_rag > rate_plain


def test_e2_ppa_optimization(benchmark):
    def run_ppa():
        results = []
        for seed in SEEDS[:2]:
            for workload in REPAIR_WORKLOADS:
                engine = HlsRepairEngine(SimulatedLLM(MODEL, seed=seed),
                                         use_rag=True, seed=seed,
                                         optimize_ppa=True)
                results.append(engine.repair(workload.source, workload.top))
        return results

    results = benchmark.pedantic(run_ppa, rounds=1, iterations=1)
    rows = []
    improvements = []
    for result in results:
        if result.schedule_before is None:
            continue
        improvements.append(result.latency_improvement)
        rows.append([f"{result.schedule_before.latency_cycles}",
                     f"{result.schedule_after.latency_cycles}",
                     f"{result.latency_improvement:+.0%}"])
    print_table("E2: PPA optimization (Fig. 2 stage 4)",
                ["latency before", "latency after", "improvement"], rows)
    assert improvements, "no successful repairs reached stage 4"
    assert all(i >= 0.0 for i in improvements)
    assert max(improvements) > 0.0
