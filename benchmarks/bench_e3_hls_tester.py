"""E3 — Fig. 3: efficient testing of behavioural discrepancies (HLSTester).

Regenerates: per-kernel discrepancy counts, the redundancy filter's skipped
simulations, and the LLM-guided vs blind-mutation comparison.
Expected shape: the filter skips a meaningful fraction of hardware
simulations without losing discrepancy-detection power; guided input
generation matches or beats blind mutation.
"""

from _util import full_eval, print_table

from repro.bench.workloads import TESTER_WORKLOADS
from repro.hls import HlsTester
from repro.llm import SimulatedLLM

BUDGET = 200 if full_eval() else 80


def _campaign(workload, seed=0, **kw):
    tester = HlsTester(workload.source, workload.top, workload.width_overrides,
                       pipeline_hazard=workload.pipeline_hazard,
                       llm=SimulatedLLM("gpt-4", seed=seed), seed=seed, **kw)
    return tester.run(budget=BUDGET)


def test_e3_discrepancy_campaign(benchmark):
    target = TESTER_WORKLOADS[0]
    report = benchmark(lambda: _campaign(target))
    assert report.candidates_generated == BUDGET

    rows = []
    for workload in TESTER_WORKLOADS:
        r = _campaign(workload, seed=3)
        rows.append([workload.workload_id, len(r.discrepancies),
                     r.sims_run, r.sims_skipped, f"{r.skip_rate:.0%}",
                     "yes" if workload.has_discrepancy else "no"])
    print_table("E3: HLSTester campaign (Fig. 3)",
                ["kernel", "discrepancies", "sims run", "sims skipped",
                 "skip rate", "expected?"], rows)

    for workload in TESTER_WORKLOADS:
        r = _campaign(workload, seed=3)
        assert bool(r.discrepancies) == workload.has_discrepancy


def test_e3_redundancy_filter_value(benchmark):
    workload = TESTER_WORKLOADS[0]

    def both():
        filtered = _campaign(workload, seed=5, use_redundancy_filter=True)
        unfiltered = _campaign(workload, seed=5, use_redundancy_filter=False)
        return filtered, unfiltered

    filtered, unfiltered = benchmark.pedantic(both, rounds=1, iterations=1)
    print_table(
        "E3: redundancy filtering (Fig. 3 stage 5)",
        ["mode", "sims run", "skipped", "discrepancies"],
        [["filtered", filtered.sims_run, filtered.sims_skipped,
          len(filtered.discrepancies)],
         ["unfiltered", unfiltered.sims_run, unfiltered.sims_skipped,
          len(unfiltered.discrepancies)]])
    assert filtered.sims_run < unfiltered.sims_run
    assert bool(filtered.discrepancies) == bool(unfiltered.discrepancies)


def test_e3_llm_guidance(benchmark):
    workload = next(w for w in TESTER_WORKLOADS
                    if w.workload_id == "checksum16")

    def both():
        guided = _campaign(workload, seed=6, use_llm_guidance=True)
        blind = _campaign(workload, seed=6, use_llm_guidance=False)
        return guided, blind

    guided, blind = benchmark.pedantic(both, rounds=1, iterations=1)
    print_table(
        "E3: test-input generation (Fig. 3 stage 4)",
        ["mode", "discrepancies", "coverage"],
        [["LLM-guided + mutation", len(guided.discrepancies),
          guided.coverage],
         ["blind mutation", len(blind.discrepancies), blind.coverage]])
    assert len(guided.discrepancies) >= len(blind.discrepancies)
