"""Critic calibration + per-flow lift benchmark -> BENCH_critic.json.

Three measurements back the critic's acceptance criteria:

* **rule calibration** — the deterministic validators against the labeled
  adversarial corpus (``tests/corpus/critic/``) and the golden problem
  references: false-accept rate on the corpus and false-reject rate on
  the references must both be exactly zero;
* **judge calibration** — the stage-two LLM judge alone over the same
  corpus and references across a seed grid.  The judge is deliberately
  noisy (it models reviewer uncertainty), so non-zero rates here are the
  measured operating point, not a failure;
* **per-flow lift** — each flow's headline quality metric with
  ``REPRO_CRITIC=0`` vs ``=1`` on a weak-model sweep, recording the
  pass@k lift (or cost) the critic buys per flow.

Run standalone (``python benchmarks/bench_critic.py``) or via pytest
(``pytest benchmarks/bench_critic.py -s``).  ``REPRO_FULL_EVAL=1``
raises the sweep size.
"""

from __future__ import annotations

import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _util import full_eval, print_table  # noqa: E402

from repro import obs  # noqa: E402
from repro.bench.problems import all_problems, get_problem  # noqa: E402
from repro.critic import (SimulatedJudge, validate_pragmas,  # noqa: E402
                          validate_rtl)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_critic.json")
_CORPUS_DIR = os.path.join(_REPO_ROOT, "tests", "corpus", "critic")
_META = re.compile(r"taxonomy=([a-z-]+)\s+rule=(\S+)")

_MODEL = "chatgpt-3.5"


def _corpus():
    entries = []
    for name in sorted(os.listdir(_CORPUS_DIR)):
        path = os.path.join(_CORPUS_DIR, name)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        meta = _META.search(text)
        entries.append((name, meta.group(1), text))
    return entries


# -- rule calibration ---------------------------------------------------------

def bench_rule_calibration() -> dict:
    """Stage-one validators: FA on the corpus, FR on the references."""
    corpus = _corpus()
    false_accepts = []
    for name, taxonomy, text in corpus:
        verdict = (validate_pragmas(text) if name.endswith(".c")
                   else validate_rtl(text))
        if verdict.ok or taxonomy not in verdict.labels():
            false_accepts.append(name)
    references = all_problems()
    false_rejects = [p.problem_id for p in references
                     if not validate_rtl(p.reference).ok]
    return {
        "corpus_cases": len(corpus),
        "references": len(references),
        "false_accepts": false_accepts,
        "false_rejects": false_rejects,
        "false_accept_rate": round(len(false_accepts) / len(corpus), 6),
        "false_reject_rate": round(len(false_rejects) / len(references), 6),
    }


# -- judge calibration --------------------------------------------------------

# Textual smells the judge keys on, spliced into reference sources to
# make judge-targeted bad candidates (the rule corpus is structural, so
# it measures the *combined* critic; the judge's own operating point
# needs candidates carrying the signals it was built to notice).
_SMELL_SPLICES = (
    ("corrupt_literal", "  // checker log: expected 4'h3_wrong\n"),
    ("x_literal", "  // reset leaves the bus at 8'bx for one cycle\n"),
    ("rare_trigger", "  // bypass path opens when (key == 8'hA5)\n"),
    ("dead_branch", "  // folded mux arm: (1'b0) ? patch : base\n"),
)


def bench_judge_calibration() -> dict:
    """Stage-two judge across seeds: the measured FA/FR operating point."""
    seeds = range(16) if full_eval() else range(8)
    references = all_problems()
    bad = [(f"{smell}:{p.problem_id}", p.reference + splice)
           for smell, splice in _SMELL_SPLICES for p in references[:4]]
    rule_corpus = [(name, text) for name, _tax, text in _corpus()
                   if not name.endswith(".c")]
    accepts = rejects = combined_accepts = 0
    for seed in seeds:
        judge = SimulatedJudge(seed)
        accepts += sum(judge.judge(text).ok for _name, text in bad)
        rejects += sum(not judge.judge(p.reference).ok for p in references)
        # Combined critic (rules first, judge on rule-clean only) over
        # the labeled corpus: the acceptance gate is zero false-accepts.
        for _name, text in rule_corpus:
            verdict = validate_rtl(text)
            if verdict.ok:
                verdict = judge.judge(text)
            combined_accepts += verdict.ok
    n_seeds = len(list(seeds))
    return {
        "seeds": n_seeds,
        "bad_cases": len(bad),
        "false_accept_rate": round(accepts / (n_seeds * len(bad)), 6),
        "false_reject_rate": round(rejects / (n_seeds * len(references)), 6),
        "combined_corpus_false_accept_rate": round(
            combined_accepts / (n_seeds * len(rule_corpus)), 6),
    }


# -- per-flow lift ------------------------------------------------------------

def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _flow_runners(problems, seeds):
    """flow -> zero-arg callable returning the headline metric in [0,1]."""

    def autochip():
        from repro.flows.autochip import run_autochip
        return _mean(float(run_autochip(p, _MODEL, k=3, depth=2,
                                        seed=s).success)
                     for s in seeds for p in problems)

    def vrank():
        from repro.flows.vrank import vrank as run
        return _mean(float(run(p, _MODEL, n_candidates=4,
                               seed=s).selected_passed)
                     for s in seeds for p in problems)

    def structured():
        from repro.flows.structured import run_structured_sweep
        sweep = run_structured_sweep("gpt-4", problems, seeds=tuple(seeds))
        return _mean(float(r.success) for r in sweep.results)

    def chipchat():
        from repro.flows.chipchat import run_chipchat_tapeout
        return _mean(float(r.success)
                     for s in seeds
                     for r in run_chipchat_tapeout(problems, _MODEL,
                                                   seed=s).results)

    def crosscheck():
        from repro.flows.crosscheck import guided_debug_sweep
        sweep = guided_debug_sweep(problems, _MODEL, seeds=tuple(seeds))
        return _mean(float(r.success) for r in sweep.results)

    def hierarchical():
        from repro.flows.hierarchical import hierarchical_sweep
        sweep = hierarchical_sweep(problems, "cl-verilog-34b",
                                   seeds=tuple(seeds))
        return _mean(float(r.success) for r in sweep.results)

    def assertgen():
        from repro.flows.assertgen import assertion_sweep
        sweep = assertion_sweep(problems, "gpt-4", seeds=tuple(seeds))
        return _mean(r.mutant_kill_rate for r in sweep.results)

    def autobench():
        # A bench that falsely rejects the golden design is unusable, so
        # its kill rate counts for nothing; the critic's screen trades a
        # little kill coverage for eliminating false rejects.
        from repro.flows.autobench import testbench_quality
        reports = [testbench_quality(p, _MODEL, seed=s)
                   for s in seeds for p in problems]
        return _mean(0.0 if r.false_reject else r.mutant_kill_rate
                     for r in reports)

    def security():
        from repro.flows.security import detection_sweep
        sweep = detection_sweep(problems, seeds=tuple(seeds), jobs=1)
        return _mean(sweep.values())

    return {"autochip": autochip, "vrank": vrank, "structured": structured,
            "chipchat": chipchat, "crosscheck": crosscheck,
            "hierarchical": hierarchical, "assertgen": assertgen,
            "autobench": autobench, "security": security}


def bench_flow_lift() -> dict:
    """Each flow's headline metric, REPRO_CRITIC=0 vs =1."""
    problems = ([get_problem("c2_gray"), get_problem("c2_absdiff"),
                 get_problem("c3_alu")] if full_eval()
                else [get_problem("c2_gray"), get_problem("c3_alu")])
    seeds = (0, 1, 2) if full_eval() else (0, 1)
    runners = _flow_runners(problems, seeds)

    saved = os.environ.get("REPRO_CRITIC")
    results: dict[str, dict] = {}
    try:
        for flow, run in runners.items():
            os.environ["REPRO_CRITIC"] = "0"
            obs.reset_metrics()
            off = run()
            os.environ["REPRO_CRITIC"] = "1"
            obs.reset_metrics()
            on = run()
            reviewed = obs.get_metrics().counter("critic.candidates").value
            rejected = obs.get_metrics().counter("critic.rejected").value
            results[flow] = {"off": round(off, 6), "on": round(on, 6),
                             "lift": round(on - off, 6),
                             "reviewed": reviewed, "rejected": rejected}
    finally:
        if saved is None:
            os.environ.pop("REPRO_CRITIC", None)
        else:
            os.environ["REPRO_CRITIC"] = saved
        obs.reset_metrics()
    return results


def main() -> dict:
    data = {
        "model": _MODEL,
        "rules": bench_rule_calibration(),
        "judge": bench_judge_calibration(),
        "flows": bench_flow_lift(),
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")

    rules, judge = data["rules"], data["judge"]
    print_table(
        "E-critic: calibration (rules must be exactly 0 / 0)",
        ["stage", "false_accept_rate", "false_reject_rate"],
        [["rules", rules["false_accept_rate"], rules["false_reject_rate"]],
         ["judge", judge["false_accept_rate"],
          judge["false_reject_rate"]],
         ["rules+judge (corpus)",
          judge["combined_corpus_false_accept_rate"], "-"]])
    print_table(
        "E-critic: per-flow lift (critic off -> on)",
        ["flow", "off", "on", "lift", "reviewed", "rejected"],
        [[flow, cell["off"], cell["on"], cell["lift"],
          cell["reviewed"], cell["rejected"]]
         for flow, cell in sorted(data["flows"].items())])
    return data


def test_critic_calibration(benchmark=None):
    data = main()
    # The acceptance gate: rule validators never accept a labeled-bad
    # candidate and never reject a golden reference.
    assert data["rules"]["false_accept_rate"] == 0.0
    assert data["rules"]["false_reject_rate"] == 0.0
    # With rules in front, the combined critic accepts nothing labeled bad.
    assert data["judge"]["combined_corpus_false_accept_rate"] == 0.0
    # The judge is noisy by design but must stay a minority report.
    assert data["judge"]["false_accept_rate"] < 1.0
    assert data["judge"]["false_reject_rate"] < 0.5
    # The critic must never *cost* pass@k on the engine flows it filters.
    for flow in ("autochip", "vrank"):
        assert data["flows"][flow]["lift"] >= 0.0


if __name__ == "__main__":
    main()
