"""Perf trajectory benchmark: compile cache + parallel evaluation engine.

Measures the hot path every flow bottoms out in — ``run_testbench`` — in
four regimes (cold vs cached compile, serial vs parallel ``evaluate_model``)
and writes ``BENCH_perf.json`` at the repo root so future PRs have a
throughput baseline to regress against.

Run standalone (``python benchmarks/bench_perf.py``) or via pytest
(``pytest benchmarks/bench_perf.py -s``).  ``REPRO_FULL_EVAL=1`` raises the
iteration budgets.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _util import full_eval, print_table  # noqa: E402

from repro import obs  # noqa: E402
from repro.bench import all_problems, evaluate_model  # noqa: E402
from repro.hdl import CompileCache, compile_design, run_testbench  # noqa: E402
from repro.obs import report as obs_report  # noqa: E402

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_perf.json")
_TELEMETRY_PATH = os.path.join(_REPO_ROOT, "BENCH_telemetry.json")


def _rate(count: int, elapsed: float) -> float:
    return count / elapsed if elapsed > 0 else float("inf")


def bench_compile(iters: int) -> dict:
    """compiles/sec: cold front-end vs content-addressed cache hit."""
    problem = all_problems()[3]
    units = (problem.reference, problem.testbench)
    t0 = time.perf_counter()
    for _ in range(iters):
        compile_design(units, problem.tb_name, cache=CompileCache())
    cold = time.perf_counter() - t0
    warm_cache = CompileCache()
    compile_design(units, problem.tb_name, cache=warm_cache)  # prime
    t0 = time.perf_counter()
    for _ in range(iters):
        compile_design(units, problem.tb_name, cache=warm_cache)
    cached = time.perf_counter() - t0
    return {"iters": iters,
            "cold_per_sec": round(_rate(iters, cold), 1),
            "cached_per_sec": round(_rate(iters, cached), 1),
            "speedup": round(cold / cached, 2) if cached else float("inf")}


def bench_run_testbench(iters: int) -> dict:
    """runs/sec on a repeated identical candidate/testbench pair."""
    problem = all_problems()[3]
    t0 = time.perf_counter()
    for _ in range(iters):
        run_testbench(problem.reference, problem.tb_name,
                      tb_source=problem.testbench, cache=CompileCache())
    cold = time.perf_counter() - t0
    warm_cache = CompileCache()
    run_testbench(problem.reference, problem.tb_name,
                  tb_source=problem.testbench, cache=warm_cache)  # prime
    t0 = time.perf_counter()
    for _ in range(iters):
        run_testbench(problem.reference, problem.tb_name,
                      tb_source=problem.testbench, cache=warm_cache)
    cached = time.perf_counter() - t0
    return {"iters": iters,
            "cold_per_sec": round(_rate(iters, cold), 1),
            "cached_per_sec": round(_rate(iters, cached), 1),
            "speedup": round(cold / cached, 2) if cached else float("inf")}


# Sim-heavy design for the engine comparison: a 32-bit xorshift LFSR plus
# accumulator clocked for thousands of edges, so simulation (not the
# front-end) dominates.  The clock pulses once while reset is high so the
# datapath comes out of X and both engines run fully defined values.
_SIM_HEAVY_SRC = """
module alu_step(input clk, input rst, output reg [31:0] acc,
                output reg [31:0] lfsr);
  reg [31:0] t;
  always @(posedge clk) begin
    if (rst) begin
      acc <= 32'h0;
      lfsr <= 32'hace1;
    end else begin
      t = lfsr ^ (lfsr << 13);
      t = t ^ (t >> 17);
      t = t ^ (t << 5);
      lfsr <= t;
      acc <= acc + (t & 32'hffff) - (acc >> 3) + ((t >> 16) * 32'd3);
    end
  end
endmodule
module tb();
  reg clk;
  reg rst;
  wire [31:0] acc;
  wire [31:0] lfsr;
  alu_step u0(.clk(clk), .rst(rst), .acc(acc), .lfsr(lfsr));
  initial begin
    clk = 0;
    rst = 1;
    #1 clk = 1;
    #1 clk = 0;
    rst = 0;
    repeat (4000) begin
      #1 clk = ~clk;
    end
    $display("acc=%h lfsr=%h", acc, lfsr);
    if (acc != 32'h0) $display("PASS: datapath settled at %h", acc);
    else $display("FAIL: acc=%h", acc);
    $finish;
  end
endmodule
"""


def bench_sim_engines(iters: int) -> dict:
    """Cold run_testbench throughput: event engine vs compiled fast path.

    Both modes share a primed compile/program cache; each iteration uses a
    fresh seed so the result memo misses and the simulator actually runs
    ("cold" in the sense that matters for throughput — the front-end is
    warm either way once a design has been seen).
    """
    previous = os.environ.get("REPRO_SIM_ENGINE")
    per_mode = {}
    outputs = {}
    try:
        for mode in ("event", "compiled"):
            os.environ["REPRO_SIM_ENGINE"] = mode
            cache = CompileCache()
            run_testbench(_SIM_HEAVY_SRC, "tb", seed=10 ** 6,
                          cache=cache)  # prime parse/design/program caches
            t0 = time.perf_counter()
            for i in range(iters):
                result = run_testbench(_SIM_HEAVY_SRC, "tb", seed=i + 1,
                                       cache=cache)
                outputs.setdefault(i, tuple(result.output))
                if outputs[i] != tuple(result.output):
                    raise AssertionError(
                        f"engine divergence on seed {i + 1}")
            per_mode[mode] = time.perf_counter() - t0
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_ENGINE", None)
        else:
            os.environ["REPRO_SIM_ENGINE"] = previous
    event_s, compiled_s = per_mode["event"], per_mode["compiled"]
    return {"iters": iters,
            "event_per_sec": round(_rate(iters, event_s), 1),
            "compiled_per_sec": round(_rate(iters, compiled_s), 1),
            "speedup": round(event_s / compiled_s, 2)
            if compiled_s else float("inf"),
            "identical_output": True}


def bench_evaluate_model(k: int) -> dict:
    """Serial vs parallel suite evaluation wall-clock (identical stats)."""
    problems = all_problems()[:8]
    jobs = max(1, os.cpu_count() or 1)
    # Fresh caches so both runs pay the same compile costs.
    from repro.hdl import set_default_cache
    set_default_cache(CompileCache())
    t0 = time.perf_counter()
    serial = evaluate_model("gpt-4", problems, k=k, temperature=1.2, seed=7,
                            jobs=1)
    serial_s = time.perf_counter() - t0
    set_default_cache(CompileCache())
    t0 = time.perf_counter()
    parallel = evaluate_model("gpt-4", problems, k=k, temperature=1.2,
                              seed=7, jobs=jobs)
    parallel_s = time.perf_counter() - t0
    set_default_cache(CompileCache())
    identical = all(
        [s.passed for s in sp.samples] == [s.passed for s in pp.samples]
        and [s.score for s in sp.samples] == [s.score for s in pp.samples]
        for sp, pp in zip(serial.problems, parallel.problems))
    return {"k": k, "jobs": jobs,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 2) if parallel_s else 0.0,
            "identical_stats": identical}


def main() -> dict:
    iters = 200 if full_eval() else 40
    # Trace the whole benchmark into memory (regardless of REPRO_TRACE) so
    # future perf PRs can regress against real span timings, not just the
    # aggregate numbers; the snapshot lands in BENCH_telemetry.json.
    sink = obs.InMemorySink()
    previous_tracer = obs.get_tracer()
    obs.install_tracer(obs.Tracer(sink, enabled=True))
    obs.reset_metrics()
    try:
        data = {
            "cpus": os.cpu_count(),
            "compile": bench_compile(iters),
            "run_testbench": bench_run_testbench(iters),
            "sim_engines": bench_sim_engines(16 if full_eval() else 6),
            "evaluate_model": bench_evaluate_model(4 if full_eval() else 2),
        }
        metrics_record = obs.flush_metrics()
    finally:
        obs.install_tracer(previous_tracer)
    with open(_OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    telemetry = {
        "spans": obs_report.aggregate_spans(sink.records),
        "metrics": metrics_record,
    }
    with open(_TELEMETRY_PATH, "w", encoding="utf-8") as fh:
        json.dump(telemetry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    rows = [
        ["compile", data["compile"]["cold_per_sec"],
         data["compile"]["cached_per_sec"], data["compile"]["speedup"]],
        ["run_testbench", data["run_testbench"]["cold_per_sec"],
         data["run_testbench"]["cached_per_sec"],
         data["run_testbench"]["speedup"]],
    ]
    print_table("E-perf: compile cache throughput (per sec)",
                ["path", "cold", "cached", "speedup"], rows)
    se = data["sim_engines"]
    print_table("E-perf: sim engine throughput (cold runs per sec)",
                ["event", "compiled", "speedup", "identical"],
                [[se["event_per_sec"], se["compiled_per_sec"],
                  se["speedup"], se["identical_output"]]])
    ev = data["evaluate_model"]
    print_table("E-perf: evaluate_model wall-clock",
                ["jobs", "serial_s", "parallel_s", "speedup", "identical"],
                [[ev["jobs"], ev["serial_s"], ev["parallel_s"],
                  ev["speedup"], ev["identical_stats"]]])
    return data


def test_perf_trajectory(benchmark=None):
    data = main()
    # Cache-hit path must be at least 2x the cold path (it is ~100x: the
    # result memo makes repeated identical runs nearly free).
    assert data["run_testbench"]["speedup"] >= 2.0
    assert data["compile"]["speedup"] >= 2.0
    # The compiled engine must deliver a real order-of-magnitude win on
    # sim-heavy designs while staying byte-identical to the event engine.
    assert data["sim_engines"]["speedup"] >= 10.0
    assert data["sim_engines"]["identical_output"]
    assert data["evaluate_model"]["identical_stats"]


if __name__ == "__main__":
    main()
