"""E10 — Section II: the supporting LLM-EDA flows the survey covers.

Regenerates measured versions of the survey's one-line claims:

* VRank: self-consistency clustering picks better candidates than taking
  the first sample;
* AutoBench → CorrectBench: functional self-correction improves testbench
  quality;
* AssertLLM + AutoSVA: assertion mining with formal-feedback refinement
  reaches full validity;
* hierarchical prompting helps complex designs (CL-Verilog).
"""

from _util import full_eval, print_table

from repro.bench import get_problem, problems_by
from repro.flows import hierarchical_sweep, assertion_quality, vrank_sweep
from repro.flows import testbench_quality as tb_quality
from repro.llm import SimulatedLLM

SEEDS = tuple(range(6 if full_eval() else 3))


def test_e10_vrank(benchmark):
    problems = problems_by(complexity=2, sequential=False)[:4]

    def sweep():
        return vrank_sweep(problems, model="chatgpt-3.5", n_candidates=6,
                           seeds=SEEDS, temperature=1.0)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E10a: VRank self-consistency ranking",
                ["strategy", "pass rate"],
                [["first sample (baseline)", f"{result.baseline_rate:.2f}"],
                 ["VRank selection", f"{result.selected_rate:.2f}"],
                 ["oracle best-of-6", f"{result.oracle_rate:.2f}"]])
    assert result.selected_rate >= result.baseline_rate
    assert result.oracle_rate >= result.selected_rate


def test_e10_correctbench(benchmark):
    problems = [get_problem(p) for p in ("c2_adder8", "c2_gray", "c2_absdiff")]

    def quality(self_correct):
        rejects = 0
        kills = 0.0
        count = 0
        for seed in SEEDS:
            for problem in problems:
                report = tb_quality(
                    problem, SimulatedLLM("chatgpt-3.5", seed=seed),
                    seed=seed, self_correct=self_correct)
                rejects += report.false_reject
                kills += report.mutant_kill_rate
                count += 1
        return rejects, kills / count

    benchmark.pedantic(lambda: quality(False), rounds=1, iterations=1)
    plain_rejects, plain_kill = quality(False)
    sc_rejects, sc_kill = quality(True)
    print_table("E10b: AutoBench vs CorrectBench (self-correction)",
                ["variant", "false rejects", "mutant kill rate"],
                [["AutoBench", plain_rejects, f"{plain_kill:.0%}"],
                 ["CorrectBench (+self-correct)", sc_rejects,
                  f"{sc_kill:.0%}"]])
    assert sc_rejects <= plain_rejects
    assert sc_kill >= plain_kill - 0.1


def test_e10_assertllm(benchmark):
    problems = [get_problem(p) for p in ("c3_alu", "c2_counter",
                                         "c2_comparator")]

    def run_assertions():
        reports = []
        for seed in SEEDS:
            for problem in problems:
                reports.append(assertion_quality(
                    problem, SimulatedLLM("gpt-4", seed=seed), seed=seed))
        return reports

    reports = benchmark.pedantic(run_assertions, rounds=1, iterations=1)
    validity = sum(r.validity for r in reports) / len(reports)
    kill = sum(r.mutant_kill_rate for r in reports) / len(reports)
    refined_ratio = sum(r.refined / max(1, r.generated)
                        for r in reports) / len(reports)
    print_table("E10c: AssertLLM + AutoSVA refinement",
                ["metric", "value"],
                [["raw assertion validity", f"{validity:.0%}"],
                 ["assertions surviving refinement", f"{refined_ratio:.0%}"],
                 ["mutant kill rate (refined set)", f"{kill:.0%}"]])
    assert validity > 0.5
    assert kill > 0.3


def test_e10_hierarchical(benchmark):
    problems = [get_problem(p) for p in ("c4_seqdet", "c4_sat_counter",
                                         "c5_accumulator_cpu",
                                         "c5_crypto_round")]

    def sweep():
        return hierarchical_sweep(problems, model="cl-verilog-34b",
                                  seeds=SEEDS)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E10d: hierarchical prompting on complex designs",
                ["strategy", "pass rate"],
                [["direct single-shot", f"{result.rate(False):.2f}"],
                 ["hierarchical decomposition", f"{result.rate(True):.2f}"]])
    # Pass rates are near the ceiling (benign faults pass testbenches), so
    # allow sampling noise; the defect-count shape test lives in tests/.
    assert result.rate(True) >= result.rate(False) - 0.15
