"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's figures/claims and prints the
corresponding table (run pytest with ``-s`` to see them).  Budgets default
to scaled-down versions so ``pytest benchmarks/ --benchmark-only`` finishes
quickly; set ``REPRO_FULL_EVAL=1`` to reproduce the full-budget numbers
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os


def full_eval() -> bool:
    return os.environ.get("REPRO_FULL_EVAL", "") == "1"


def scale(full_value: float, quick_value: float) -> float:
    return full_value if full_eval() else quick_value


_RESULTS_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "results_latest.txt")


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a result table and mirror it to benchmarks/results_latest.txt
    (pytest captures stdout unless run with -s; the mirror file keeps the
    regenerated tables inspectable either way)."""
    from repro.core.report import format_table
    text = f"\n=== {title} ===\n{format_table(headers, rows)}\n"
    print(text, end="")
    with open(_RESULTS_PATH, "a", encoding="utf-8") as fh:
        fh.write(text)
