"""E1 — Fig. 1: the chip design flow with LLM assists at every stage.

Regenerates: an end-to-end spec→RTL→verify→synthesize→QoR walk for a set of
designs, reporting per-stage success — the "typical chip design flow and
potential LLM applications" figure as a measured table.
"""

from _util import print_table

from repro.bench import get_problem
from repro.core import AgentConfig, EdaAgent, run_agent_sweep

PROBLEMS = ["c1_mux2", "c2_gray", "c2_counter", "c3_alu"]


def test_e1_full_flow(benchmark):
    def run_once():
        agent = EdaAgent(AgentConfig(model="gpt-4o"), seed=0)
        return agent.run(get_problem("c2_gray"))

    report = benchmark(run_once)
    assert report.state.history

    sweep = run_agent_sweep([get_problem(p) for p in PROBLEMS],
                            model="gpt-4o", seeds=(0,))
    rates = sweep.stage_success_rates()
    print_table(
        "E1: LLM-assisted chip design flow (Fig. 1)",
        ["stage", "success rate"],
        [[stage, f"{rate:.0%}"] for stage, rate in rates.items()])
    print(f"end-to-end: {sweep.end_to_end_rate:.0%} over "
          f"{len(sweep.reports)} designs")
    assert rates["specification"] == 1.0
    assert sweep.end_to_end_rate > 0.0
