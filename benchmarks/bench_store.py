"""Artifact-store benchmark: cross-process warm starts.

Every earlier perf PR measured caches that die with the process; this one
measures the persistent tier.  Two regimes, both across real ``fork``/exec
process boundaries (subprocesses share nothing but ``REPRO_STORE_DIR``):

* **warm_start** — a process compiles and simulates a grid of
  (problem, seed) testbench cells against an empty store, then a second
  process repeats the identical workload and serves every result from
  disk.  The acceptance floor is a **5x** speedup.
* **fast_lane** — a registered flow (vrank) runs twice against a shared
  store directory; the second run must be faster and must report nonzero
  disk hits.  This is the same shape the CI warm-start job asserts.

Writes ``BENCH_store.json`` at the repo root.  Run standalone
(``python benchmarks/bench_store.py``) or via pytest
(``pytest benchmarks/bench_store.py -s``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _util import full_eval, print_table  # noqa: E402

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC_DIR = os.path.join(_REPO_ROOT, "src")
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_store.json")

# Runs inside a subprocess: time a grid of distinct run_testbench cells and
# report the store's view of the run.  Timing starts after imports, so the
# measurement is the workload, not interpreter startup.
_WARM_START_CHILD = """
import json, sys, time
from repro.bench.problems import all_problems
from repro.hdl import run_testbench
from repro.store import get_default_store
n_problems, n_seeds = int(sys.argv[1]), int(sys.argv[2])
problems = all_problems()[:n_problems]
t0 = time.perf_counter()
for problem in problems:
    for seed in range(n_seeds):
        run_testbench(problem.reference, problem.tb_name,
                      tb_source=problem.testbench, seed=seed)
elapsed = time.perf_counter() - t0
stats = get_default_store().stats()
print(json.dumps({
    "elapsed_s": elapsed,
    "cells": len(problems) * n_seeds,
    "hits": sum(s.hits for s in stats.values()),
    "misses": sum(s.misses for s in stats.values()),
    "corrupt": sum(s.corrupt for s in stats.values()),
}))
"""

_FAST_LANE_CHILD = """
import json, time
from repro.bench.problems import all_problems
from repro.flows import run_flow
from repro.store import get_default_store
problems = all_problems()[:4]
t0 = time.perf_counter()
run_flow("vrank", problems, "chatgpt-3.5", seed=0)
elapsed = time.perf_counter() - t0
stats = get_default_store().stats()
print(json.dumps({
    "elapsed_s": elapsed,
    "hits": sum(s.hits for s in stats.values()),
}))
"""


def _run_child(script: str, store_dir: str, *args: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_STORE"] = "1"
    env["REPRO_STORE_DIR"] = store_dir
    proc = subprocess.run([sys.executable, "-c", script, *args],
                          env=env, capture_output=True, text=True,
                          check=True)
    return json.loads(proc.stdout)


def bench_warm_start() -> dict:
    """Cold vs warm ``run_testbench`` across process boundaries."""
    n_problems = 10
    n_seeds = 5 if full_eval() else 3
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        args = (str(n_problems), str(n_seeds))
        cold = _run_child(_WARM_START_CHILD, store_dir, *args)
        warm = _run_child(_WARM_START_CHILD, store_dir, *args)
    speedup = cold["elapsed_s"] / warm["elapsed_s"] \
        if warm["elapsed_s"] else float("inf")
    return {"cells": cold["cells"],
            "cold_s": round(cold["elapsed_s"], 4),
            "warm_s": round(warm["elapsed_s"], 4),
            "cold_hits": cold["hits"],
            "warm_hits": warm["hits"],
            "corrupt": cold["corrupt"] + warm["corrupt"],
            "speedup": round(speedup, 2)}


def bench_fast_lane() -> dict:
    """One registered flow, run twice against a shared store directory."""
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        run1 = _run_child(_FAST_LANE_CHILD, store_dir)
        run2 = _run_child(_FAST_LANE_CHILD, store_dir)
    speedup = run1["elapsed_s"] / run2["elapsed_s"] \
        if run2["elapsed_s"] else float("inf")
    return {"flow": "vrank",
            "run1_s": round(run1["elapsed_s"], 4),
            "run2_s": round(run2["elapsed_s"], 4),
            "run2_hits": run2["hits"],
            "speedup": round(speedup, 2)}


def main() -> dict:
    data = {"cpus": os.cpu_count(),
            "warm_start": bench_warm_start(),
            "fast_lane": bench_fast_lane()}
    with open(_OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    ws, fl = data["warm_start"], data["fast_lane"]
    print_table(
        "E-store: cross-process warm start (run_testbench grid)",
        ["cells", "cold s", "warm s", "warm hits", "speedup"],
        [[ws["cells"], ws["cold_s"], ws["warm_s"], ws["warm_hits"],
          ws["speedup"]]])
    print_table(
        "E-store: flow fast lane, two runs sharing one store",
        ["flow", "run1 s", "run2 s", "run2 hits", "speedup"],
        [[fl["flow"], fl["run1_s"], fl["run2_s"], fl["run2_hits"],
          fl["speedup"]]])
    return data


def test_store_warm_start(benchmark=None):
    data = main()
    ws = data["warm_start"]
    # The cold run never hits (the store starts empty) and the warm run
    # serves every cell from disk without a single corrupt blob.
    assert ws["cold_hits"] == 0
    assert ws["warm_hits"] >= ws["cells"]
    assert ws["corrupt"] == 0
    # Acceptance floor: warm start is at least 5x faster across processes.
    assert ws["speedup"] >= 5.0, ws
    # The flow lane warm run reuses artifacts and gets faster.
    fl = data["fast_lane"]
    assert fl["run2_hits"] > 0
    assert fl["run2_s"] < fl["run1_s"], fl


if __name__ == "__main__":
    main()
