"""E8 — Section V ablations: the SLT loop's design choices.

Regenerates the component claims around Fig. 5:

* SCoT prompting "increases the quality of the output" (fewer non-compiling
  snippets);
* temperature adaptation steers exploitation/exploration;
* Levenshtein diversity forcing keeps the pool from collapsing;
* the externally finetuned Code Llama "performs significantly better" than
  the off-the-shelf model.
"""

from _util import full_eval, print_table

from repro.riscv import FpgaPowerMeter
from repro.slt import (SltConfig, SltOptimizer, StopCondition)
from repro.llm import SimulatedLLM

HOURS = 4.0 if full_eval() else 1.2
SEEDS = tuple(range(4 if full_eval() else 3))


def _run(model="codellama-34b-instruct-ft", seed=0, **config_kw):
    meter = FpgaPowerMeter(seed=seed)
    optimizer = SltOptimizer(SimulatedLLM(model, seed=seed), meter,
                             SltConfig(**config_kw), seed=seed)
    return optimizer.run(StopCondition(max_hours=HOURS))


def _mean_best(model="codellama-34b-instruct-ft", **config_kw):
    results = [_run(model=model, seed=s, **config_kw) for s in SEEDS]
    return (sum(r.best_power_w for r in results) / len(results), results)


def test_e8_scot_ablation(benchmark):
    benchmark.pedantic(lambda: _run(seed=0, use_scot=True),
                       rounds=1, iterations=1)
    # Fixed temperature isolates SCoT's effect: with adaptation on, the two
    # arms walk different temperature trajectories and the comparison
    # confounds prompting with annealing state.
    with_scot, scot_results = _mean_best(use_scot=True,
                                         adapt_temperature=False,
                                         fixed_temperature=0.9)
    without, plain_results = _mean_best(use_scot=False,
                                        adapt_temperature=False,
                                        fixed_temperature=0.9)
    scot_fail = sum(r.compile_failures for r in scot_results)
    plain_fail = sum(r.compile_failures for r in plain_results)
    print_table("E8a: SCoT prompting ablation",
                ["variant", "mean best (W)", "compile failures"],
                [["SCoT", f"{with_scot:.3f}", scot_fail],
                 ["direct prompt", f"{without:.3f}", plain_fail]])
    assert scot_fail < plain_fail


def test_e8_temperature_adaptation(benchmark):
    benchmark.pedantic(lambda: _run(seed=1, adapt_temperature=True),
                       rounds=1, iterations=1)
    adaptive, _ = _mean_best(adapt_temperature=True)
    fixed, _ = _mean_best(adapt_temperature=False, fixed_temperature=0.7)
    print_table("E8b: temperature adaptation ablation",
                ["variant", "mean best (W)"],
                [["adaptive (simulated annealing)", f"{adaptive:.3f}"],
                 ["fixed T=0.7", f"{fixed:.3f}"]])
    # Adaptation should not lose to a fixed schedule by a wide margin.
    assert adaptive >= fixed - 0.15


def test_e8_diversity_forcing(benchmark):
    benchmark.pedantic(lambda: _run(seed=2, enforce_diversity=True),
                       rounds=1, iterations=1)
    _, diverse_results = _mean_best(enforce_diversity=True)
    _, collapsed_results = _mean_best(enforce_diversity=False)
    diverse = sum(r.pool_final_diversity for r in diverse_results) / len(SEEDS)
    collapsed = sum(r.pool_final_diversity
                    for r in collapsed_results) / len(SEEDS)
    best_div = sum(r.best_power_w for r in diverse_results) / len(SEEDS)
    best_col = sum(r.best_power_w for r in collapsed_results) / len(SEEDS)
    print_table("E8c: Levenshtein diversity forcing",
                ["variant", "pool diversity", "mean best (W)"],
                [["forced diversity", f"{diverse:.1f}", f"{best_div:.3f}"],
                 ["no forcing", f"{collapsed:.1f}", f"{best_col:.3f}"]])
    assert diverse >= collapsed * 0.9


def test_e8_finetuned_vs_base_model(benchmark):
    benchmark.pedantic(
        lambda: _run(model="codellama-34b-instruct-ft", seed=3),
        rounds=1, iterations=1)
    # Fixed temperature for the same reason as the SCoT ablation.
    ft, ft_results = _mean_best(model="codellama-34b-instruct-ft",
                                adapt_temperature=False,
                                fixed_temperature=0.9)
    base, base_results = _mean_best(model="codellama-34b-instruct",
                                    adapt_temperature=False,
                                    fixed_temperature=0.9)
    ft_fail = sum(r.compile_failures for r in ft_results)
    base_fail = sum(r.compile_failures for r in base_results)
    print_table("E8d: finetuned vs off-the-shelf Code Llama (Section V)",
                ["model", "mean best (W)", "compile failures"],
                [["codellama-34b-instruct-ft", f"{ft:.3f}", ft_fail],
                 ["codellama-34b-instruct", f"{base:.3f}", base_fail]])
    # "Compared to the off-the-shelf model, it performs significantly better."
    assert ft_fail <= base_fail
    assert ft >= base - 0.05
