"""Run-engine benchmark: concurrent generation feeding broker micro-batches.

The engine's :class:`~repro.engine.generate.GenerationBatch` submits a
round's ``k`` candidates before gathering, so a broker lane's linger window
closes with more than one request in it.  This benchmark runs the same
AutoChip sweep (``k`` >= 4) under ``REPRO_SERVICE=1`` two ways —
``REPRO_GEN_CONCURRENCY=1`` (the pre-engine sequential-generate baseline,
one lane round-trip per candidate) and the concurrent default — and
records wall-clock plus the per-lane batch-size histogram in
``BENCH_engine.json`` at the repo root.

The two sweeps must agree candidate-for-candidate: concurrency is an
execution detail (see DESIGN.md section 8), so the only deltas allowed are
wall-clock and batch shape.

Run standalone (``python benchmarks/bench_engine.py``) or via pytest
(``pytest benchmarks/bench_engine.py -s``).  ``REPRO_FULL_EVAL=1`` raises
the sweep size.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _util import full_eval, print_table  # noqa: E402

from repro import obs  # noqa: E402
from repro.bench import all_problems  # noqa: E402
from repro.flows.autochip import run_autochip  # noqa: E402
from repro.hdl import CompileCache, set_default_cache  # noqa: E402
from repro.service import reset_default_broker  # noqa: E402

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_engine.json")

_MODEL = "chatgpt-3.5"


def _sweep(problems, seeds, k: int, depth: int) -> list:
    results = []
    for seed in seeds:
        for problem in problems:
            results.append(run_autochip(problem, _MODEL, k=k, depth=depth,
                                        temperature=0.8, seed=seed))
    return results


def _stats(results) -> list:
    return [(r.problem_id, r.success, round(r.best_score, 6),
             r.rounds_used, r.generations) for r in results]


def _run_mode(concurrency: int, problems, seeds, k, depth) -> dict:
    os.environ["REPRO_GEN_CONCURRENCY"] = str(concurrency)
    reset_default_broker()
    obs.reset_metrics()
    set_default_cache(CompileCache())
    t0 = time.perf_counter()
    results = _sweep(problems, seeds, k, depth)
    elapsed = time.perf_counter() - t0
    hist = obs.get_metrics().histogram(f"service.batch_size.{_MODEL}")
    reset_default_broker()
    return {"concurrency": concurrency,
            "wall_s": round(elapsed, 3),
            "batches": hist.count,
            "mean_batch_size": round(hist.mean, 3),
            "max_batch_size": int(hist.max) if hist.count else 0,
            "stats": _stats(results)}


def bench_generation_concurrency() -> dict:
    """Sequential vs concurrent candidate generation, brokered both ways."""
    problems = all_problems()[:4] if full_eval() else all_problems()[:2]
    seeds = (0, 1, 2) if full_eval() else (0, 1)
    k = 8 if full_eval() else 6
    depth = 2

    saved = {name: os.environ.get(name)
             for name in ("REPRO_SERVICE", "REPRO_GEN_CONCURRENCY")}
    os.environ["REPRO_SERVICE"] = "1"
    try:
        sequential = _run_mode(1, problems, seeds, k, depth)
        concurrent = _run_mode(8, problems, seeds, k, depth)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        reset_default_broker()
        set_default_cache(CompileCache())

    identical = sequential.pop("stats") == concurrent.pop("stats")
    speedup = (sequential["wall_s"] / concurrent["wall_s"]
               if concurrent["wall_s"] else 0.0)
    return {"model": _MODEL, "k": k, "depth": depth,
            "cells": len(problems) * len(seeds),
            "sequential": sequential,
            "concurrent": concurrent,
            "speedup": round(speedup, 2),
            "identical_stats": identical}


def main() -> dict:
    data = {"cpus": os.cpu_count(),
            "generation_concurrency": bench_generation_concurrency()}
    with open(_OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    gc = data["generation_concurrency"]
    print_table(
        "E-engine: autochip sweep, sequential vs concurrent generation",
        ["mode", "wall_s", "batches", "mean_batch", "max_batch"],
        [["sequential", gc["sequential"]["wall_s"],
          gc["sequential"]["batches"],
          gc["sequential"]["mean_batch_size"],
          gc["sequential"]["max_batch_size"]],
         ["concurrent", gc["concurrent"]["wall_s"],
          gc["concurrent"]["batches"],
          gc["concurrent"]["mean_batch_size"],
          gc["concurrent"]["max_batch_size"]]])
    print_table("E-engine: summary",
                ["k", "depth", "cells", "speedup", "identical"],
                [[gc["k"], gc["depth"], gc["cells"], gc["speedup"],
                  gc["identical_stats"]]])
    return data


def test_engine_concurrency(benchmark=None):
    gc = main()["generation_concurrency"]
    # Concurrency must not change a single statistic...
    assert gc["identical_stats"]
    # ...while the lane actually coalesces (sequential submission pins the
    # histogram at 1.0 by construction)...
    assert gc["sequential"]["mean_batch_size"] <= 1.0
    assert gc["concurrent"]["mean_batch_size"] > 1.0
    # ...and fewer lane round-trips means less linger: wall-clock improves.
    assert gc["speedup"] >= 1.0


if __name__ == "__main__":
    main()
