"""``repro.config`` — one typed reader for every ``REPRO_*`` environment knob.

Before this module each subsystem parsed its own environment variables
(``repro.exec`` read ``REPRO_JOBS``, ``repro.hdl.compile`` read the cache
knobs, ``repro.obs`` read the trace switches), each with slightly different
falsy conventions and error handling.  :class:`Settings` centralizes the
parsing with three rules:

* accessors read ``os.environ`` **live**, so tests and operators can flip a
  knob mid-process (matching the pre-existing behaviour of every knob);
* unparseable non-empty values degrade to the documented default and emit a
  **one-time** ``RuntimeWarning`` naming the bad value and its source (the
  behaviour ``REPRO_JOBS`` pioneered, now uniform across all knobs);
* boolean knobs share one falsy set (``"", 0, false, no, off`` — case
  insensitive) so ``REPRO_TRACE=off`` and ``REPRO_SERVICE=off`` mean what
  they say.
"""

from __future__ import annotations

import os
import warnings

ENV_JOBS = "REPRO_JOBS"
ENV_HDL_CACHE = "REPRO_HDL_CACHE"
ENV_COMPILE_CACHE = "REPRO_COMPILE_CACHE"
ENV_RESULT_CACHE = "REPRO_RESULT_CACHE"
ENV_TRACE = "REPRO_TRACE"
ENV_TRACE_FILE = "REPRO_TRACE_FILE"
ENV_SERVICE = "REPRO_SERVICE"
ENV_SERVICE_BATCH = "REPRO_SERVICE_BATCH"
ENV_SERVICE_QUEUE = "REPRO_SERVICE_QUEUE"
ENV_SERVICE_RETRIES = "REPRO_SERVICE_RETRIES"
ENV_SERVICE_BREAKER_THRESHOLD = "REPRO_SERVICE_BREAKER_THRESHOLD"
ENV_SERVICE_BREAKER_RESET_S = "REPRO_SERVICE_BREAKER_RESET_S"
ENV_SERVICE_TIMEOUT_S = "REPRO_SERVICE_TIMEOUT_S"
ENV_SERVICE_SHARDS = "REPRO_SERVICE_SHARDS"
ENV_SERVICE_WORKERS = "REPRO_SERVICE_WORKERS"
ENV_SERVICE_TENANT_SHARE = "REPRO_SERVICE_TENANT_SHARE"
ENV_FULL_EVAL = "REPRO_FULL_EVAL"
ENV_CRITIC = "REPRO_CRITIC"
ENV_CRITIC_JUDGE = "REPRO_CRITIC_JUDGE"
ENV_AGENT_PLANNER = "REPRO_AGENT_PLANNER"
ENV_AGENT_MAX_STEPS = "REPRO_AGENT_MAX_STEPS"
ENV_GEN_CONCURRENCY = "REPRO_GEN_CONCURRENCY"
ENV_SIM_ENGINE = "REPRO_SIM_ENGINE"
ENV_STORE = "REPRO_STORE"
ENV_STORE_DIR = "REPRO_STORE_DIR"

DEFAULT_STORE_DIR = ".repro-store"

_SIM_ENGINES = ("auto", "event", "compiled")

_FALSY = ("", "0", "false", "no", "off")

# One warning per (source, bad value) pair for the process lifetime, shared
# by every accessor (and aliased by repro.exec.parallel for compatibility).
_warned_values: set[tuple[str, str]] = set()


def _warn_once(source: str, value: str, message: str) -> None:
    key = (source, value)
    if key in _warned_values:
        return
    _warned_values.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=4)


class Settings:
    """Live, typed view of the ``REPRO_*`` environment knobs."""

    # -- generic accessors ---------------------------------------------------

    @staticmethod
    def env_bool(name: str, default: bool) -> bool:
        raw = os.environ.get(name)
        if raw is None:
            return default
        return raw.strip().lower() not in _FALSY

    @staticmethod
    def env_int(name: str, default: int) -> int:
        raw = os.environ.get(name, "").strip()
        if not raw:
            return default
        try:
            return int(raw)
        except ValueError:
            _warn_once(
                f"{name} environment variable", raw,
                f"{name} environment variable value {raw!r} is not an "
                f"integer; falling back to the default ({default})")
            return default

    @staticmethod
    def env_float(name: str, default: float) -> float:
        raw = os.environ.get(name, "").strip()
        if not raw:
            return default
        try:
            return float(raw)
        except ValueError:
            _warn_once(
                f"{name} environment variable", raw,
                f"{name} environment variable value {raw!r} is not a "
                f"number; falling back to the default ({default})")
            return default

    @staticmethod
    def env_str(name: str, default: str = "") -> str:
        return os.environ.get(name, default).strip()

    # -- worker pools --------------------------------------------------------

    def resolve_jobs(self, jobs: int | str | None = None) -> int:
        """Worker count: explicit argument > ``REPRO_JOBS`` > serial (1).

        ``"auto"`` or any negative value means one worker per CPU.  An
        unparseable value degrades to serial but warns once, naming the bad
        value and where it came from.
        """
        source = "jobs argument"
        if jobs is None:
            env = self.env_str(ENV_JOBS)
            if not env:
                return 1
            jobs = env
            source = f"{ENV_JOBS} environment variable"
        if isinstance(jobs, str):
            if jobs.lower() == "auto":
                jobs = -1
            else:
                try:
                    jobs = int(jobs)
                except ValueError:
                    _warn_once(
                        source, jobs,
                        f"{source} value {jobs!r} is not an integer or "
                        f"'auto'; falling back to serial evaluation (jobs=1)")
                    return 1
        if jobs < 0:
            return max(1, os.cpu_count() or 1)
        return max(1, jobs)

    # -- compile cache -------------------------------------------------------

    @property
    def hdl_cache_enabled(self) -> bool:
        return self.env_bool(ENV_HDL_CACHE, True)

    @property
    def compile_cache_capacity(self) -> int:
        return self.env_int(ENV_COMPILE_CACHE, 256)

    @property
    def result_cache_capacity(self) -> int:
        return self.env_int(ENV_RESULT_CACHE, 1024)

    def cache_region_capacity(self, region: str) -> int:
        """Memory capacity of one named cache region.

        The legacy knobs configure their regions of the unified
        :class:`repro.store.CacheBackend` surface — ``REPRO_COMPILE_CACHE``
        sizes ``parse``/``design``/``program``, ``REPRO_RESULT_CACHE``
        sizes ``result`` — so existing tuning keeps working unchanged.
        Unnamed regions (campaign journals, future artifact kinds) get the
        compile-cache default.
        """
        if region == "result":
            return self.result_cache_capacity
        return self.compile_cache_capacity

    # -- artifact store ------------------------------------------------------

    @property
    def store_enabled(self) -> bool:
        """``REPRO_STORE=1`` persists cache artifacts and campaign
        checkpoints to disk (``REPRO_STORE_DIR``), shared across
        processes; off (the default) keeps every cache memory-only."""
        return self.env_bool(ENV_STORE, False)

    @property
    def store_dir(self) -> str:
        return self.env_str(ENV_STORE_DIR) or DEFAULT_STORE_DIR

    # -- observability -------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        return self.env_bool(ENV_TRACE, False)

    @property
    def trace_file(self) -> str:
        return self.env_str(ENV_TRACE_FILE)

    # -- critic --------------------------------------------------------------

    @property
    def critic_enabled(self) -> bool:
        """``REPRO_CRITIC=1`` turns on the two-stage candidate critic."""
        return self.env_bool(ENV_CRITIC, False)

    @property
    def critic_judge_enabled(self) -> bool:
        """``REPRO_CRITIC_JUDGE=1`` adds the seeded LLM-judge stage."""
        return self.env_bool(ENV_CRITIC_JUDGE, False)

    # -- planner agent -------------------------------------------------------

    @property
    def agent_planner_enabled(self) -> bool:
        """``REPRO_AGENT_PLANNER=1`` routes :class:`~repro.core.EdaAgent`
        through the plan/act/observe :class:`~repro.core.PlannerAgent`
        instead of the fixed stage pipeline; off (the default) keeps the
        golden-fixture code path byte-identical."""
        return self.env_bool(ENV_AGENT_PLANNER, False)

    @property
    def agent_max_steps(self) -> int:
        """Plan/act/observe rounds before the planner gives up."""
        return max(1, self.env_int(ENV_AGENT_MAX_STEPS, 12))

    # -- model-serving broker ------------------------------------------------

    @property
    def service_enabled(self) -> bool:
        """``REPRO_SERVICE=1`` routes every resolved client via the broker."""
        return self.env_bool(ENV_SERVICE, False)

    @property
    def service_batch_size(self) -> int:
        return max(1, self.env_int(ENV_SERVICE_BATCH, 8))

    @property
    def service_queue_capacity(self) -> int:
        return max(1, self.env_int(ENV_SERVICE_QUEUE, 256))

    @property
    def service_max_retries(self) -> int:
        return max(0, self.env_int(ENV_SERVICE_RETRIES, 3))

    @property
    def service_breaker_threshold(self) -> int:
        """Consecutive hard failures that open a lane's circuit breaker."""
        return max(1, self.env_int(ENV_SERVICE_BREAKER_THRESHOLD, 5))

    @property
    def service_breaker_reset_s(self) -> float:
        """Cool-down before an open breaker admits its half-open probe."""
        return max(0.0, self.env_float(ENV_SERVICE_BREAKER_RESET_S, 0.25))

    @property
    def service_timeout_s(self) -> float | None:
        """Default per-request queue deadline; ``0`` or negative disables
        deadlines entirely (requests wait as long as it takes)."""
        value = self.env_float(ENV_SERVICE_TIMEOUT_S, 60.0)
        return None if value <= 0 else value

    @property
    def service_shards(self) -> int:
        """Broker shard count; >1 makes :func:`get_default_broker` return a
        consistent-hash :class:`~repro.service.router.ShardedRouter`."""
        return max(1, self.env_int(ENV_SERVICE_SHARDS, 1))

    @property
    def service_workers(self) -> int | None:
        """Bounded backend-call slots per broker shard (models one serving
        process's worker pool); ``0`` (default) means one slot per lane."""
        value = self.env_int(ENV_SERVICE_WORKERS, 0)
        return None if value <= 0 else value

    @property
    def service_tenant_share(self) -> float:
        """Max fraction of total queue capacity one tenant may hold in
        flight through the router; ``1.0`` disables tenant admission."""
        value = self.env_float(ENV_SERVICE_TENANT_SHARE, 1.0)
        return min(1.0, max(0.01, value))

    # -- run engine ----------------------------------------------------------

    @property
    def gen_concurrency(self) -> int:
        """In-flight candidate generations per :class:`GenerationBatch`.

        Values > 1 let broker-backed clients submit a round's candidates
        concurrently (so service lanes coalesce micro-batches); ``1``
        forces the sequential path.  Either way results are byte-identical
        — generation is keyed by ``(task, temperature, sample_index)``.
        """
        return max(1, self.env_int(ENV_GEN_CONCURRENCY, 8))

    # -- simulation engine ---------------------------------------------------

    @property
    def sim_engine(self) -> str:
        """Which simulation engine ``run_testbench`` uses.

        ``auto`` (default) picks the compiled fast path when the design is
        eligible and falls back to the event-driven simulator otherwise;
        ``event`` forces the event engine; ``compiled`` insists on the
        compiled path (still falling back for ineligible designs, so
        results never change — only speed).  Unrecognized values degrade
        to ``auto`` with a one-time warning.
        """
        raw = self.env_str(ENV_SIM_ENGINE).lower()
        if not raw:
            return "auto"
        if raw in _SIM_ENGINES:
            return raw
        _warn_once(
            f"{ENV_SIM_ENGINE} environment variable", raw,
            f"{ENV_SIM_ENGINE} environment variable value {raw!r} is not "
            f"one of {_SIM_ENGINES}; falling back to 'auto'")
        return "auto"

    # -- benchmarks ----------------------------------------------------------

    @property
    def full_eval(self) -> bool:
        return self.env_bool(ENV_FULL_EVAL, False)

    def snapshot(self) -> dict[str, object]:
        """Debug view of every knob (one line in ``repro.flows`` CLI)."""
        return {
            "jobs": self.resolve_jobs(),
            "hdl_cache": self.hdl_cache_enabled,
            "compile_cache_capacity": self.compile_cache_capacity,
            "result_cache_capacity": self.result_cache_capacity,
            "trace": self.trace_enabled,
            "trace_file": self.trace_file,
            "service": self.service_enabled,
            "service_batch_size": self.service_batch_size,
            "service_queue_capacity": self.service_queue_capacity,
            "service_max_retries": self.service_max_retries,
            "service_breaker_threshold": self.service_breaker_threshold,
            "service_breaker_reset_s": self.service_breaker_reset_s,
            "service_timeout_s": self.service_timeout_s,
            "service_shards": self.service_shards,
            "service_workers": self.service_workers,
            "service_tenant_share": self.service_tenant_share,
            "gen_concurrency": self.gen_concurrency,
            "sim_engine": self.sim_engine,
            "store": self.store_enabled,
            "store_dir": self.store_dir,
            "full_eval": self.full_eval,
            "critic": self.critic_enabled,
            "critic_judge": self.critic_judge_enabled,
            "agent_planner": self.agent_planner_enabled,
            "agent_max_steps": self.agent_max_steps,
        }


_settings = Settings()


def get_settings() -> Settings:
    """The process-wide settings reader."""
    return _settings


def reset_warned_values() -> None:
    """Forget which bad values already warned (tests only)."""
    _warned_values.clear()
