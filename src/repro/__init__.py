"""LLM4EDA — reproduction of "Large Language Models for Electronic Design
Automation" (SOCC 2025 special session).

Subpackages
-----------
``repro.llm``
    Simulated large-language-model substrate with per-model capability
    profiles, prompting strategies (CoT/SCoT/hierarchical) and RAG retrieval.
``repro.hdl``
    Mini-Verilog toolchain: parser, elaborator, event-driven simulator,
    testbench harness, linter.
``repro.synth``
    Logic synthesis to AND-inverter graphs with optimization, tech mapping
    and PPA estimation.
``repro.hls``
    Mini-C frontend, HLS compatibility checking, C-to-RTL synthesis, the
    LLM program-repair loop (Fig. 2) and HLSTester (Fig. 3).
``repro.riscv``
    RV32IM assembler, mini-C compiler, out-of-order superscalar core timing
    model and activity-based power model (the BOOM/FPGA substitute).
``repro.slt``
    System-level test program generation: the LLM optimization loop of
    Fig. 5 plus the genetic-programming baseline.
``repro.flows``
    LLM design frameworks from the survey: Chip-Chat, the structured
    feedback flow, AutoChip tree search (Fig. 4), hierarchical prompting,
    AutoBench/CorrectBench, AssertLLM, VRank.
``repro.core``
    The unified multi-modal EDA agent of Fig. 6.
``repro.bench``
    VerilogEval-style problem suites, workload generators and pass@k
    harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
