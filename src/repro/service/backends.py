"""Deterministic fault-injecting backend wrapper for chaos testing.

A real serving deployment sees rate limits, flaky workers and hard backend
outages.  :class:`FlakyBackend` reproduces those failure modes *repeatably*
around any :class:`~repro.service.client.LLMClient`: every fault decision
derives from a seeded hash of the request identity **and the attempt
number**, so

* the same chaos run replays byte-identically across processes, and
* a transiently-failing request can succeed on retry (the attempt number
  moves the draw), which is what exercises the broker's backoff path.

The wrapper is transparent on the success path — it delegates to the inner
client, so fault-free runs produce the inner client's exact outputs.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..llm.model import _stable_seed
from .broker import BackendError, TransientBackendError


class FlakyBackend:
    """Wraps a client with seeded transient/latency/hard fault injection.

    ``transient_rate`` — probability a call raises
    :class:`TransientBackendError` (retryable);
    ``hard_rate`` — probability a call raises :class:`BackendError`
    (not retried; counts against the circuit breaker);
    ``latency_rate``/``latency_s`` — probability and size of an injected
    latency spike (via ``sleeper``, injectable for fast tests);
    ``fail_first`` — deterministically fail the first N calls with hard
    errors (drives the breaker open on schedule in tests).
    """

    def __init__(self, inner, *, transient_rate: float = 0.0,
                 hard_rate: float = 0.0, latency_rate: float = 0.0,
                 latency_s: float = 0.002, fail_first: int = 0,
                 seed: int = 0,
                 sleeper: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.transient_rate = transient_rate
        self.hard_rate = hard_rate
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.fail_first = fail_first
        self.seed = seed
        self.sleeper = sleeper
        self.calls = 0
        self.faults_injected = 0
        self._attempts: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- client surface (delegated) -------------------------------------------

    @property
    def profile(self):
        return self.inner.profile

    @property
    def usage(self):
        return self.inner.usage

    def chat(self, system: str = ""):
        return self.inner.chat(system)

    def derive(self, seed: int) -> "FlakyBackend":
        return FlakyBackend(self.inner.derive(seed),
                            transient_rate=self.transient_rate,
                            hard_rate=self.hard_rate,
                            latency_rate=self.latency_rate,
                            latency_s=self.latency_s,
                            fail_first=self.fail_first, seed=self.seed,
                            sleeper=self.sleeper)

    def generate(self, task, prompt=None, temperature: float = 0.7,
                 sample_index: int = 0):
        self._maybe_fault("generate", task.task_id, sample_index,
                          round(temperature, 3))
        return self.inner.generate(task, prompt, temperature, sample_index)

    def refine(self, task, previous, feedback: str, temperature: float = 0.7,
               sample_index: int = 0):
        self._maybe_fault("refine", task.task_id, sample_index,
                          previous.style_seed, feedback)
        return self.inner.refine(task, previous, feedback, temperature,
                                 sample_index)

    def apply_human_fix(self, task, previous):
        self._maybe_fault("human_fix", task.task_id, previous.style_seed)
        return self.inner.apply_human_fix(task, previous)

    # -- fault machinery ------------------------------------------------------

    def _maybe_fault(self, *identity: object) -> None:
        key = _stable_seed(self.seed, *identity)
        with self._lock:
            self.calls += 1
            call_no = self.calls
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
        if call_no <= self.fail_first:
            with self._lock:
                self.faults_injected += 1
            raise BackendError(
                f"injected hard failure (call {call_no}/{self.fail_first})")
        import random
        rng = random.Random(_stable_seed(key, "fault", attempt))
        roll = rng.random()
        if roll < self.hard_rate:
            with self._lock:
                self.faults_injected += 1
            raise BackendError("injected hard backend failure")
        if roll < self.hard_rate + self.transient_rate:
            with self._lock:
                self.faults_injected += 1
            raise TransientBackendError(
                f"injected transient fault (attempt {attempt})")
        if rng.random() < self.latency_rate:
            self.sleeper(self.latency_s)
