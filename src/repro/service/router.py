"""Consistent-hash sharded serving: N broker shards behind one router.

A single :class:`~repro.service.broker.ModelBroker` models one serving
process; :class:`ShardedRouter` is the deployment story on top of it — the
piece ROADMAP item 2 ("scale the broker out of a single process") asks
for.  The router owns N broker shards and routes every request by a
**consistent hash of the model profile name**:

* the hash ring is built from :func:`repro.llm.model._stable_seed`, so the
  key→shard mapping is a pure function of ``(shard count, alive shards)``
  — identical across processes, machines and ``PYTHONHASHSEED`` values;
* a model's requests always land on exactly one shard, so per-lane
  micro-batching, breaker state and retry accounting behave exactly as in
  the single-broker deployment — which is why N-shard results are
  byte-identical to 1-shard and to the direct path (see DESIGN.md §10);
* **draining** a shard removes only that shard's points from the ring:
  its keys rebalance to their ring successors while every other model
  stays put (the classic consistent-hashing property), the draining shard
  stops admitting, finishes its queue, and can later be **restarted**
  fresh.

On top of the shards the router layers **per-tenant admission control**:
a tenant may hold at most ``tenant_share`` of the deployment's total
queue capacity in flight; beyond that its submissions fail fast with
:class:`TenantShedError` (a :class:`LoadShedError`) *before* touching any
lane, so one abusive tenant cannot starve the others of queue slots.

Instrumentation: per-shard in-flight gauges and request counters
(``service.shard.N.*``) join the per-lane metrics the broker already
emits; ``repro.obs.report`` renders them as the service section.
"""

from __future__ import annotations

import bisect
import threading
import time
from concurrent.futures import Future
from typing import Callable

from ..config import get_settings
from ..obs import get_metrics
from .broker import (BrokerConfig, LoadShedError, ModelBroker, ServiceError,
                     _stable_seed)

_RING_SPAN = 2 ** 64


class TenantShedError(LoadShedError):
    """The tenant exceeded its admission share; the request was shed."""


class ShardedRouter:
    """Fronts N :class:`ModelBroker` shards with a consistent-hash ring.

    Exposes the same ``submit``/``call``/``shutdown``/``breaker``/
    ``lane_names`` surface as a single broker, so
    :class:`~repro.service.client.ServiceClient` (and
    :func:`~repro.service.broker.get_default_broker`) can use either
    interchangeably.
    """

    def __init__(self, shards: int | None = None,
                 config: BrokerConfig | None = None, *,
                 tenant_share: float | None = None,
                 replicas: int = 32,
                 clock: Callable[[], float] = time.monotonic,
                 sleeper: Callable[[float], None] = time.sleep):
        settings = get_settings()
        self.config = config or BrokerConfig.from_settings()
        self.num_shards = max(1, shards if shards is not None
                              else settings.service_shards)
        self.tenant_share = (tenant_share if tenant_share is not None
                             else settings.service_tenant_share)
        self.replicas = max(1, replicas)
        self._clock = clock
        self._sleeper = sleeper
        self.stopped = False
        self._lock = threading.Lock()
        self._shards: list[ModelBroker] = [
            ModelBroker(self.config, clock=clock, sleeper=sleeper)
            for _ in range(self.num_shards)]
        self._draining = [False] * self.num_shards
        self._inflight_by_tenant: dict[str, int] = {}
        self._ring: list[tuple[int, int]] = []
        self._rebuild_ring()

    # -- ring ----------------------------------------------------------------

    def _rebuild_ring(self) -> None:
        """Recompute the ring from alive (non-draining) shards.  Points are
        pure functions of (shard index, replica), so removing a shard
        leaves every other shard's points — and therefore every unaffected
        key's mapping — exactly where they were."""
        points = []
        for idx in range(self.num_shards):
            if self._draining[idx]:
                continue
            for replica in range(self.replicas):
                points.append(
                    (_stable_seed("shard-ring", idx, replica) % _RING_SPAN,
                     idx))
        points.sort()
        self._ring = points

    def shard_for(self, name: str) -> int:
        """The shard index serving model profile ``name`` right now."""
        with self._lock:
            return self._shard_for_locked(name)

    def _shard_for_locked(self, name: str) -> int:
        if not self._ring:
            raise ServiceError("no alive shards (all draining or stopped)")
        point = _stable_seed("shard-key", name) % _RING_SPAN
        i = bisect.bisect_left(self._ring, (point, -1))
        if i == len(self._ring):           # wrap past the last point
            i = 0
        return self._ring[i][1]

    # -- submission ----------------------------------------------------------

    def submit(self, backend, kind: str, args: tuple = (),
               kwargs: dict | None = None, key: int = 0,
               timeout: float | None = None,
               tenant: str | None = None) -> Future:
        """Route one backend call to its shard; returns the lane future.

        Tenant admission runs first (fail fast, no lane touched), then the
        ring picks the shard.  A shard that shuts down between the ring
        lookup and the lane enqueue (a drain racing this submit) is treated
        as draining: the ring is rebuilt and the submit retried, so callers
        never see a transient ``ServiceError`` for a survivable race.
        """
        if self.stopped:
            raise ServiceError("router is shut down")
        metrics = get_metrics()
        admitted_tenant = self._admit(tenant)
        try:
            for _ in range(self.num_shards + 1):
                with self._lock:
                    idx = self._shard_for_locked(backend.profile.name)
                    shard = self._shards[idx]
                try:
                    future = shard.submit(backend, kind, args, kwargs,
                                          key=key, timeout=timeout)
                except ServiceError as exc:
                    if isinstance(exc, LoadShedError) or not shard.stopped:
                        raise
                    # Shard stopped under us (drain race): rebalance, retry.
                    with self._lock:
                        if not self.stopped and not self._draining[idx]:
                            self._draining[idx] = True
                            self._rebuild_ring()
                    continue
                metrics.counter(f"service.shard.{idx}.requests").add()
                gauge = metrics.gauge(f"service.shard.{idx}.inflight")
                gauge.add(1.0)
                future.add_done_callback(lambda _f, g=gauge: g.add(-1.0))
                if admitted_tenant is not None:
                    future.add_done_callback(
                        lambda _f, t=admitted_tenant: self._release(t))
                    admitted_tenant = None
                return future
            raise ServiceError("no alive shards (all draining or stopped)")
        finally:
            if admitted_tenant is not None:     # submit failed: refund
                self._release(admitted_tenant)

    def call(self, backend, kind: str, args: tuple = (),
             kwargs: dict | None = None, key: int = 0,
             timeout: float | None = None, tenant: str | None = None):
        """Submit and block for the result (mirrors ``ModelBroker.call``)."""
        future = self.submit(backend, kind, args, kwargs, key=key,
                             timeout=timeout, tenant=tenant)
        if timeout is None:
            timeout = self.config.request_timeout_s
        wait = None if timeout is None else timeout * 2 + 1.0
        return future.result(timeout=wait)

    # -- tenant admission ----------------------------------------------------

    def _tenant_capacity(self) -> int:
        alive = self.num_shards - sum(self._draining)
        total = self.config.queue_capacity * max(1, alive)
        return max(1, int(self.tenant_share * total))

    def _admit(self, tenant: str | None) -> str | None:
        if tenant is None or self.tenant_share >= 1.0:
            return None
        with self._lock:
            held = self._inflight_by_tenant.get(tenant, 0)
            if held >= self._tenant_capacity():
                get_metrics().counter("service.tenant_shed").add()
                raise TenantShedError(
                    f"tenant '{tenant}' holds {held} in-flight requests "
                    f"(share cap {self._tenant_capacity()}); request shed")
            self._inflight_by_tenant[tenant] = held + 1
        return tenant

    def _release(self, tenant: str) -> None:
        with self._lock:
            held = self._inflight_by_tenant.get(tenant, 0)
            if held <= 1:
                self._inflight_by_tenant.pop(tenant, None)
            else:
                self._inflight_by_tenant[tenant] = held - 1

    # -- drain / restart -----------------------------------------------------

    def drain(self, index: int, join_s: float = 10.0) -> None:
        """Gracefully retire shard ``index``: stop admitting, rebalance its
        keys to the remaining shards, finish its queue, shut it down."""
        with self._lock:
            if not 0 <= index < self.num_shards:
                raise IndexError(f"no shard {index}")
            if self._draining[index]:
                return
            self._draining[index] = True
            self._rebuild_ring()
            shard = self._shards[index]
        # New submissions already rebalanced away; shutdown drains the
        # queue (workers exit once empty) and fails anything left behind.
        shard.shutdown(join_s=join_s)

    def restart(self, index: int) -> None:
        """Bring a drained shard back with a fresh broker; its ring points
        reappear and its keys return."""
        with self._lock:
            if not 0 <= index < self.num_shards:
                raise IndexError(f"no shard {index}")
            if not self._draining[index]:
                return
            self._shards[index] = ModelBroker(self.config, clock=self._clock,
                                              sleeper=self._sleeper)
            self._draining[index] = False
            self._rebuild_ring()

    def draining(self) -> list[int]:
        with self._lock:
            return [i for i, d in enumerate(self._draining) if d]

    # -- broker-surface parity -----------------------------------------------

    def breaker(self, name: str):
        return self._shards[self.shard_for(name)].breaker(name)

    def lane_names(self) -> list[str]:
        names: set[str] = set()
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            names.update(shard.lane_names())
        return sorted(names)

    def shards(self) -> "list[ModelBroker]":
        with self._lock:
            return list(self._shards)

    def shutdown(self, join_s: float = 2.0) -> None:
        self.stopped = True
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            shard.shutdown(join_s=join_s)

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
