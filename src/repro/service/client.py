"""The unified client seam: ``LLMClient`` protocol + broker-backed client.

Every flow used to construct and hold a bare :class:`SimulatedLLM`; this
module defines the interface flows actually depend on and one resolver
that decides — in exactly one place — whether a run talks to the model
directly or through the :class:`~repro.service.broker.ModelBroker`:

* :class:`LLMClient` — the structural protocol (``generate`` / ``refine``
  / ``apply_human_fix`` / ``chat`` / ``derive`` plus ``profile`` and
  ``usage``).  :class:`SimulatedLLM` satisfies it directly.
* :class:`ServiceClient` — satisfies the same protocol by submitting every
  model call to a broker lane and blocking on the future.  Because a
  backend call is a pure function of its arguments, broker-mediated runs
  are byte-identical to direct runs.
* :func:`resolve_client` — the one switch: strings become seeded
  ``SimulatedLLM``s, and ``REPRO_SERVICE=1`` (or ``service=True``) wraps
  the backend in a ``ServiceClient``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..config import get_settings
from ..llm.chat import ChatSession
from ..llm.model import Generation, GenerationTask, SimulatedLLM, UsageStats
from ..llm.profiles import ModelProfile
from ..llm.prompts import Prompt
from .broker import ModelBroker, get_default_broker


@runtime_checkable
class LLMClient(Protocol):
    """What flows need from a model client (structural, not nominal)."""

    @property
    def profile(self) -> ModelProfile: ...

    @property
    def usage(self) -> UsageStats: ...

    def generate(self, task: GenerationTask, prompt: Prompt | None = None,
                 temperature: float = 0.7,
                 sample_index: int = 0) -> Generation: ...

    def refine(self, task: GenerationTask, previous: Generation,
               feedback: str, temperature: float = 0.7,
               sample_index: int = 0) -> Generation: ...

    def apply_human_fix(self, task: GenerationTask,
                        previous: Generation) -> Generation: ...

    def generate_many(self, task: GenerationTask,
                      prompt: Prompt | None = None,
                      temperature: float = 0.7, *,
                      sample_indices=(0,)) -> list[Generation]: ...

    def refine_many(self, task: GenerationTask, previous: Generation,
                    feedback: str, temperature: float = 0.7, *,
                    sample_indices=(0,)) -> list[Generation]: ...

    def chat(self, system: str = "") -> ChatSession: ...

    def derive(self, seed: int) -> "LLMClient": ...


class ServiceClient:
    """An :class:`LLMClient` that routes every call through the broker.

    The wrapped backend (a :class:`SimulatedLLM` or a chaos wrapper around
    one) still owns the model profile, the seed and the usage ledger; the
    broker owns scheduling, retries and the circuit breaker.  Each request
    carries a stable key derived from its arguments so broker-side jitter
    never depends on arrival order.
    """

    def __init__(self, backend, broker: ModelBroker | None = None,
                 timeout: float | None = None, tenant: str | None = None):
        self.backend = backend
        self.broker = broker if broker is not None else get_default_broker()
        self.timeout = timeout
        # Admission identity for ShardedRouter fairness; a plain broker
        # accepts and ignores it.
        self.tenant = tenant

    # -- passthrough identity -------------------------------------------------

    @property
    def profile(self) -> ModelProfile:
        return self.backend.profile

    @property
    def usage(self) -> UsageStats:
        return self.backend.usage

    @property
    def seed(self) -> int:
        return self.backend.seed

    def derive(self, seed: int) -> "ServiceClient":
        return ServiceClient(self.backend.derive(seed), self.broker,
                             self.timeout, self.tenant)

    def chat(self, system: str = "") -> ChatSession:
        # The session calls back into *this* client, so conversational
        # turns also ride the broker.
        return ChatSession(self, system=system)

    # -- brokered model calls -------------------------------------------------

    def _key(self, *parts: object) -> int:
        from ..llm.model import _stable_seed
        return _stable_seed(self.backend.seed, self.profile.name, *parts)

    def submit_generate(self, task: GenerationTask,
                        prompt: Prompt | None = None,
                        temperature: float = 0.7, sample_index: int = 0):
        """Enqueue a generation on its lane without blocking.

        Returns the lane future.  This is the seam
        :class:`~repro.engine.GenerationBatch` uses to put a whole round of
        candidates in flight at once, which is what lets the lane's linger
        window close over a real micro-batch instead of a single request.
        """
        key = self._key("generate", task.task_id, round(temperature, 3),
                        sample_index)
        return self.broker.submit(self.backend, "generate",
                                  (task, prompt, temperature, sample_index),
                                  key=key, timeout=self.timeout,
                                  tenant=self.tenant)

    def submit_refine(self, task: GenerationTask, previous: Generation,
                      feedback: str, temperature: float = 0.7,
                      sample_index: int = 0):
        key = self._key("refine", task.task_id, previous.style_seed,
                        sample_index, feedback)
        return self.broker.submit(
            self.backend, "refine",
            (task, previous, feedback, temperature, sample_index),
            key=key, timeout=self.timeout, tenant=self.tenant)

    def submit_human_fix(self, task: GenerationTask, previous: Generation):
        key = self._key("human_fix", task.task_id, previous.style_seed)
        return self.broker.submit(self.backend, "apply_human_fix",
                                  (task, previous), key=key,
                                  timeout=self.timeout, tenant=self.tenant)

    def _wait(self, future) -> Generation:
        # The lane enforces the queue deadline; the margin here only guards
        # against a wedged worker (mirrors ModelBroker.call).
        wait = None if self.timeout is None else self.timeout * 2 + 1.0
        return future.result(timeout=wait)

    def generate(self, task: GenerationTask, prompt: Prompt | None = None,
                 temperature: float = 0.7,
                 sample_index: int = 0) -> Generation:
        return self._wait(self.submit_generate(task, prompt, temperature,
                                               sample_index))

    def refine(self, task: GenerationTask, previous: Generation,
               feedback: str, temperature: float = 0.7,
               sample_index: int = 0) -> Generation:
        return self._wait(self.submit_refine(task, previous, feedback,
                                             temperature, sample_index))

    def apply_human_fix(self, task: GenerationTask,
                        previous: Generation) -> Generation:
        return self._wait(self.submit_human_fix(task, previous))

    # -- batched entry points -------------------------------------------------

    def generate_many(self, task: GenerationTask,
                      prompt: Prompt | None = None,
                      temperature: float = 0.7, *,
                      sample_indices=(0,)) -> list[Generation]:
        """``k`` candidates submitted concurrently (windowed by
        ``REPRO_GEN_CONCURRENCY``) so the lane coalesces micro-batches;
        results come back in ``sample_indices`` order."""
        from ..engine.generate import GenerationBatch
        batch = GenerationBatch(self)
        for i in sample_indices:
            batch.generate(task, prompt, temperature, sample_index=i)
        return batch.gather()

    def refine_many(self, task: GenerationTask, previous: Generation,
                    feedback: str, temperature: float = 0.7, *,
                    sample_indices=(0,)) -> list[Generation]:
        from ..engine.generate import GenerationBatch
        batch = GenerationBatch(self)
        for i in sample_indices:
            batch.refine(task, previous, feedback, temperature,
                         sample_index=i)
        return batch.gather()


def resolve_client(model: "str | SimulatedLLM | LLMClient", *,
                   seed: int = 0, service: bool | None = None,
                   broker: ModelBroker | None = None) -> LLMClient:
    """Resolve a flow's ``model`` argument to a ready client.

    * a string becomes ``SimulatedLLM(model, seed=seed)``;
    * an existing client instance is passed through unchanged (its own
      seed wins — pass ``model.derive(seed)`` to reseed);
    * when ``service`` is true — or unset and ``REPRO_SERVICE=1`` — the
      backend is wrapped in a :class:`ServiceClient` on ``broker`` (the
      process-wide default when unset).  A client that is already
      broker-backed is never double-wrapped.
    """
    client = SimulatedLLM(model, seed=seed) if isinstance(model, str) \
        else model
    if service is None:
        service = get_settings().service_enabled
    if service and not isinstance(client, ServiceClient):
        return ServiceClient(client, broker=broker)
    return client
