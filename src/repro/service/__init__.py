"""``repro.service`` — the async batched model-serving broker.

The seam between flows/agents and model backends (ChatEDA-style uniform
service interface): a micro-batching request broker with per-model lanes,
retries with deterministic jittered backoff, per-lane circuit breakers,
deadlines and load shedding — fronted by the :class:`LLMClient` protocol
so every flow runs against a raw model or the broker with one switch
(``REPRO_SERVICE=1``).  See DESIGN.md §6 for the determinism argument.
"""

from .backends import FlakyBackend
from .broker import (BackendError, BrokerConfig, CircuitBreaker,
                     CircuitOpenError, LoadShedError, ModelBroker,
                     RequestTimeout, ServiceError, TransientBackendError,
                     get_default_broker, reset_default_broker)
from .client import LLMClient, ServiceClient, resolve_client
from .router import ShardedRouter, TenantShedError

__all__ = [
    "BackendError", "BrokerConfig", "CircuitBreaker", "CircuitOpenError",
    "FlakyBackend", "LLMClient", "LoadShedError", "ModelBroker",
    "RequestTimeout", "ServiceClient", "ServiceError", "ShardedRouter",
    "TenantShedError", "TransientBackendError", "get_default_broker",
    "reset_default_broker", "resolve_client",
]
