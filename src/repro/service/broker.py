"""In-process model-serving broker: micro-batching, retries, breakers.

The broker is the seam the ROADMAP's "serves heavy traffic" north star
needs between agents/flows and model backends.  Requests are submitted to
**per-model lanes** (keyed by model-profile name, the unit a real serving
deployment shards by); each lane has a bounded queue drained by one worker
that coalesces adjacent requests into micro-batches.  Around every backend
call the broker provides:

* **retry with exponential backoff + jitter** for transient backend errors
  (the jitter derives from the request's stable key, not the wall clock, so
  chaos tests replay exactly);
* a **circuit breaker** per lane — consecutive hard failures open the
  breaker, submissions fail fast while it is open, and after a cool-down a
  single half-open probe decides whether to close it again;
* **deadlines** — a request that waited in the queue past its deadline is
  failed with :class:`RequestTimeout` instead of wasting backend budget;
* **load shedding** — submissions beyond the bounded queue's capacity are
  rejected with :class:`LoadShedError` rather than growing memory without
  bound.

Everything is instrumented through :mod:`repro.obs`: a queue-depth gauge
and batch-size histogram per lane, plus process-wide request/retry/shed/
breaker counters.

Determinism: the broker adds **no randomness to results**.  A backend call
is a pure function of its arguments (see :class:`repro.llm.SimulatedLLM`,
whose per-request RNG derives from the request's stable seed), batching
only changes *when* a call runs, and usage accounting is commutative — so
broker-mediated statistics are byte-identical to direct calls.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from ..config import get_settings
from ..obs import get_metrics, get_tracer


class ServiceError(Exception):
    """Base class for broker-side request failures."""


class LoadShedError(ServiceError):
    """The lane's bounded queue is full; the request was shed."""


class CircuitOpenError(ServiceError):
    """The lane's circuit breaker is open; the request was rejected."""


class RequestTimeout(ServiceError):
    """The request missed its deadline before (or while) executing."""


class BackendError(Exception):
    """A hard backend failure; not retried, counts against the breaker."""


class TransientBackendError(BackendError):
    """A retryable backend failure (rate limit, flaky worker, ...)."""


def _stable_seed(*parts: object) -> int:
    from ..llm.model import _stable_seed as seed_fn
    return seed_fn(*parts)


class CircuitBreaker:
    """Classic closed → open → half-open breaker with an injectable clock."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, threshold: int = 5, reset_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic):
        self.threshold = max(1, threshold)
        self.reset_s = reset_s
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.reset_s):
            self._state = self.HALF_OPEN

    def allow(self) -> bool:
        """Whether a new request may proceed; a half-open breaker admits
        exactly one probe (it re-opens or closes on the probe's outcome)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                # Admit the probe and re-arm: a failure re-opens, a success
                # closes.  Concurrent submitters see OPEN until the outcome.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> bool:
        """Record a hard failure; returns True when this call *tripped* the
        breaker (a CLOSED→OPEN transition — re-opening after a failed
        half-open probe is the same outage, not a new trip)."""
        with self._lock:
            self._failures += 1
            was_open = self._state == self.OPEN
            if self._failures >= self.threshold or self._state != self.CLOSED:
                self._state = self.OPEN
                self._opened_at = self._clock()
            return self._state == self.OPEN and not was_open


@dataclass
class BrokerConfig:
    """Tuning knobs; defaults come from ``REPRO_SERVICE_*`` where set."""

    max_batch: int = 8
    batch_window_s: float = 0.002
    queue_capacity: int = 256
    max_retries: int = 3
    backoff_base_s: float = 0.001
    backoff_cap_s: float = 0.05
    breaker_threshold: int = 5
    breaker_reset_s: float = 0.25
    request_timeout_s: float | None = 60.0
    # Bounded executor slots shared by every lane of one broker (models a
    # single serving process's worker pool).  None = one slot per lane, the
    # historical unbounded behaviour.  Scheduling only — results identical.
    max_concurrent: int | None = None

    @classmethod
    def from_settings(cls) -> "BrokerConfig":
        s = get_settings()
        return cls(max_batch=s.service_batch_size,
                   queue_capacity=s.service_queue_capacity,
                   max_retries=s.service_max_retries,
                   breaker_threshold=s.service_breaker_threshold,
                   breaker_reset_s=s.service_breaker_reset_s,
                   request_timeout_s=s.service_timeout_s,
                   max_concurrent=s.service_workers)


@dataclass
class _Request:
    kind: str                       # 'generate' | 'refine' | 'human_fix'
    backend: object                 # the client's own backend instance
    args: tuple
    kwargs: dict
    key: int                        # stable per-request seed (jitter source)
    deadline: float | None
    future: Future = field(default_factory=Future)


class _Lane:
    """One model profile's bounded queue + worker thread + breaker."""

    def __init__(self, name: str, broker: "ModelBroker"):
        self.name = name
        self.broker = broker
        self.queue: deque[_Request] = deque()
        self.cond = threading.Condition()
        cfg = broker.config
        self.breaker = CircuitBreaker(cfg.breaker_threshold,
                                      cfg.breaker_reset_s,
                                      clock=broker.clock)
        self.worker = threading.Thread(target=self._run, daemon=True,
                                       name=f"repro-service-{name}")
        self.worker.start()

    # -- submission ----------------------------------------------------------

    def submit(self, request: _Request) -> Future:
        metrics = get_metrics()
        with self.cond:
            # Stop-flag check and enqueue are atomic under the lane
            # condition: the worker's exit check (`stopped and not queue`)
            # runs under the same condition, so a request admitted here is
            # guaranteed to be drained before the worker exits.
            if self.broker.stopped:
                raise ServiceError("broker is shut down")
            if len(self.queue) >= self.broker.config.queue_capacity:
                metrics.counter("service.shed").add()
                raise LoadShedError(
                    f"lane '{self.name}' queue full "
                    f"({self.broker.config.queue_capacity}); request shed")
            # Only after capacity is confirmed may the breaker spend its
            # half-open probe: a shed submission must never consume (and
            # re-arm) the probe, or a saturated lane could hold its breaker
            # open indefinitely with no backend call ever made.
            if not self.breaker.allow():
                metrics.counter("service.breaker_rejected").add()
                raise CircuitOpenError(
                    f"circuit breaker open for backend '{self.name}'")
            self.queue.append(request)
            metrics.gauge(f"service.queue_depth.{self.name}").set(
                len(self.queue))
            self.cond.notify()
        metrics.counter("service.requests").add()
        return request.future

    def fail_pending(self, exc: Exception) -> int:
        """Fail every still-queued request with ``exc`` (shutdown path).

        Only requests still in the queue are touched — a request already
        popped by the worker either completes normally or is failed by the
        worker itself, so there is no set_result/set_exception race.
        """
        failed = 0
        with self.cond:
            while self.queue:
                request = self.queue.popleft()
                if not request.future.done():
                    request.future.set_exception(exc)
                    failed += 1
            self.cond.notify_all()
        if failed:
            get_metrics().counter("service.failed_on_shutdown").add(failed)
        return failed

    # -- worker --------------------------------------------------------------

    def _run(self) -> None:
        cfg = self.broker.config
        metrics = get_metrics()
        while True:
            with self.cond:
                while not self.queue and not self.broker.stopped:
                    self.cond.wait(0.1)
                if self.broker.stopped and not self.queue:
                    return
                batch = [self.queue.popleft()]
                # Micro-batch: linger briefly for co-arriving requests.  The
                # linger is wall-time pacing, so it uses the real monotonic
                # clock even when a test injects a fake one for deadlines.
                linger_until = time.monotonic() + cfg.batch_window_s
                while len(batch) < cfg.max_batch:
                    if self.queue:
                        batch.append(self.queue.popleft())
                        continue
                    remaining = linger_until - time.monotonic()
                    if remaining <= 0 or self.broker.stopped:
                        break
                    self.cond.wait(remaining)
                metrics.gauge(f"service.queue_depth.{self.name}").set(
                    len(self.queue))
            metrics.histogram(f"service.batch_size.{self.name}").observe(
                len(batch))
            tracer = get_tracer()
            with tracer.span("service.batch", lane=self.name,
                             size=len(batch)):
                for request in batch:
                    self._execute(request)

    def _execute(self, request: _Request) -> None:
        cfg = self.broker.config
        metrics = get_metrics()
        if request.future.cancelled():
            return
        for attempt in range(cfg.max_retries + 1):
            # The deadline is re-checked before *every* attempt, not just at
            # dequeue: a request must not burn the remaining retry/backoff
            # schedule long past the point its caller stopped waiting.
            if (request.deadline is not None
                    and self.broker.clock() > request.deadline):
                metrics.counter("service.timeouts").add()
                where = "in queue" if attempt == 0 else \
                    f"after {attempt} attempt(s)"
                request.future.set_exception(RequestTimeout(
                    f"request to '{self.name}' missed its deadline {where}"))
                return
            try:
                method = getattr(request.backend, request.kind)
                result = self.broker._invoke(method, request)
            except TransientBackendError as exc:
                metrics.counter("service.retries").add()
                if attempt >= cfg.max_retries:
                    self._record_failure()
                    metrics.counter("service.failures").add()
                    request.future.set_exception(exc)
                    return
                self.broker.sleeper(self._backoff(request.key, attempt))
            except Exception as exc:
                self._record_failure()
                metrics.counter("service.failures").add()
                request.future.set_exception(exc)
                return
            else:
                self.breaker.record_success()
                request.future.set_result(result)
                return

    def _record_failure(self) -> None:
        if self.breaker.record_failure():
            get_metrics().counter("service.breaker_trips").add()

    def _backoff(self, key: int, attempt: int) -> float:
        """Exponential backoff with deterministic jitter.

        The jitter RNG seeds from the request key and attempt number, never
        the clock, so a replayed chaos run sleeps the exact same schedule.
        """
        import random
        cfg = self.broker.config
        base = min(cfg.backoff_cap_s, cfg.backoff_base_s * (2 ** attempt))
        jitter = random.Random(_stable_seed(key, "backoff", attempt)).random()
        return base * (0.5 + jitter)


class ModelBroker:
    """Routes requests to per-model lanes; see the module docstring."""

    def __init__(self, config: BrokerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleeper: Callable[[float], None] = time.sleep):
        self.config = config or BrokerConfig.from_settings()
        self.clock = clock
        self.sleeper = sleeper
        self.stopped = False
        self._lanes: dict[str, _Lane] = {}
        self._lock = threading.Lock()
        self._slots = (threading.BoundedSemaphore(self.config.max_concurrent)
                       if self.config.max_concurrent else None)

    # -- public --------------------------------------------------------------

    def submit(self, backend, kind: str, args: tuple = (),
               kwargs: dict | None = None, key: int = 0,
               timeout: float | None = None,
               tenant: str | None = None) -> Future:
        """Enqueue one backend call; returns a future for its result.

        ``tenant`` is accepted for interface parity with
        :class:`~repro.service.router.ShardedRouter` (which enforces
        per-tenant admission); a bare broker does not differentiate tenants.
        """
        if self.stopped:
            raise ServiceError("broker is shut down")
        lane = self._lane(backend.profile.name)
        if timeout is None:
            timeout = self.config.request_timeout_s
        deadline = None if timeout is None else self.clock() + timeout
        request = _Request(kind=kind, backend=backend, args=args,
                           kwargs=kwargs or {}, key=key, deadline=deadline)
        return lane.submit(request)

    def call(self, backend, kind: str, args: tuple = (),
             kwargs: dict | None = None, key: int = 0,
             timeout: float | None = None):
        """Submit and block for the result (what :class:`ServiceClient`
        uses); re-raises broker and backend errors unchanged."""
        future = self.submit(backend, kind, args, kwargs, key=key,
                             timeout=timeout)
        # The lane enforces the queue deadline; the extra margin here only
        # guards against a wedged worker.
        wait = None if timeout is None else timeout * 2 + 1.0
        return future.result(timeout=wait)

    def breaker(self, name: str) -> CircuitBreaker:
        return self._lane(name).breaker

    def lane_names(self) -> list[str]:
        with self._lock:
            return sorted(self._lanes)

    def shutdown(self, join_s: float = 2.0) -> None:
        """Stop accepting work, wake every worker, and drain.

        Workers exit once their queue is empty, so queued requests normally
        complete.  If a worker fails to finish within ``join_s`` (a wedged
        backend), any request still *queued* is failed with
        :class:`ServiceError` — no future is ever left forever pending.
        A request already in flight is left to its worker, which either
        completes it or fails it itself.
        """
        self.stopped = True
        with self._lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            with lane.cond:
                lane.cond.notify_all()
        for lane in lanes:
            lane.worker.join(timeout=join_s)
        for lane in lanes:
            lane.fail_pending(ServiceError(
                f"broker shut down with lane '{lane.name}' not drained"))

    def __enter__(self) -> "ModelBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- internals -----------------------------------------------------------

    def _lane(self, name: str) -> _Lane:
        with self._lock:
            lane = self._lanes.get(name)
            if lane is None:
                lane = self._lanes[name] = _Lane(name, self)
            return lane

    def _invoke(self, method, request: _Request):
        """Run one backend call, holding a worker slot when the broker's
        executor is bounded (``max_concurrent``).  Slots are held only for
        the call itself, never across backoff sleeps."""
        if self._slots is None:
            return method(*request.args, **request.kwargs)
        with self._slots:
            return method(*request.args, **request.kwargs)


# -- process-wide default broker ----------------------------------------------

_default_broker = None
_broker_lock = threading.Lock()


def get_default_broker():
    """The process-wide broker, created lazily from settings on first use.

    Returns a single :class:`ModelBroker` by default; with
    ``REPRO_SERVICE_SHARDS`` > 1 it returns a
    :class:`~repro.service.router.ShardedRouter` fronting that many broker
    shards (same submit/call surface, byte-identical results).
    """
    global _default_broker
    if _default_broker is None or _default_broker.stopped:
        with _broker_lock:
            if _default_broker is None or _default_broker.stopped:
                shards = get_settings().service_shards
                if shards > 1:
                    from .router import ShardedRouter
                    _default_broker = ShardedRouter(shards=shards)
                else:
                    _default_broker = ModelBroker()
    return _default_broker


def reset_default_broker() -> None:
    """Shut down and drop the process-wide broker (tests, reconfiguration)."""
    global _default_broker
    with _broker_lock:
        if _default_broker is not None:
            _default_broker.shutdown()
        _default_broker = None
