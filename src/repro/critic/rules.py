"""Stage-one critic: deterministic rule validators.

Each rule reuses existing toolchain machinery (`repro.hdl` parse/lint,
declared-width tables) and maps every hit onto one taxonomy label from
:mod:`repro.critic.verdict`:

========== =====================================================
label      rule
========== =====================================================
syntax     candidate does not parse
lint       blocking lint diagnostic (undeclared / multiple drivers)
width      declared-width mismatch (assignment or ternary arms)
xprop      net read in logic but never driven (permanent ``x``)
vacuity    comparison with structurally identical operands, or a
           malformed assertion/expectation literal
dead-reset register only ever written under reset
trojan     rare-trigger corruption mux on an existing signal
pragma     HLS pragma outside the synthesizable subset
========== =====================================================

All rules are pure functions of the candidate text — no simulation, no
randomness — which is what makes the stage-one verdict replayable and
byte-identical across direct/service/parallel modes.
"""

from __future__ import annotations

import re

from ..hdl import ast as A
from ..hdl import parse
from ..hdl.errors import HdlError
from ..hdl.lint import (_decl_widths, _expr_width, lint_module,
                        module_reads_writes)
from ..hls.pragmas import parse_pragma
from .verdict import (ACCEPT, TAX_DEAD_RESET, TAX_LINT, TAX_PRAGMA,
                      TAX_SYNTAX, TAX_TROJAN, TAX_VACUITY, TAX_WIDTH,
                      TAX_XPROP, CriticFailure, Verdict)

# Lint codes severe enough to reject a candidate outright.  The softer
# style codes (latch inference, unused nets, ...) stay advisory: they are
# threaded into refine feedback by the flows, not used for rejection.
_BLOCKING_LINT = {"LINT-UNDECL": TAX_LINT, "LINT-MULTIDRIVE": TAX_LINT,
                  "LINT-WIDTH": TAX_WIDTH}

_RESET_NAMES = ("rst", "reset", "rst_n", "rstn", "nrst", "arst", "arst_n")

# HLS pragma kinds the synthesizable subset accepts (see repro.hls).
LEGAL_PRAGMA_KINDS = frozenset(
    {"pipeline", "unroll", "array_partition", "inline", "dataflow",
     "interface", "loop_tripcount"})

# Well-formed expectation literal: what ``str(Logic)`` produces
# (``4'h3`` / ``2'b1x``) or a bare binary/decimal value.
_LITERAL_RE = re.compile(r"^(\d+'[bhd][0-9a-fA-FxXzZ_]+|\d+|[01xXzZ]+)$")


def _walk_stmts(stmt):
    """Yield every statement under ``stmt`` (inclusive)."""
    if stmt is None:
        return
    yield stmt
    if isinstance(stmt, A.Block):
        for s in stmt.stmts:
            yield from _walk_stmts(s)
    elif isinstance(stmt, A.If):
        yield from _walk_stmts(stmt.then)
        yield from _walk_stmts(stmt.other)
    elif isinstance(stmt, A.Case):
        for item in stmt.items:
            yield from _walk_stmts(item.body)
    elif isinstance(stmt, A.For):
        yield from _walk_stmts(stmt.body)
    elif isinstance(stmt, (A.While, A.Repeat)):
        yield from _walk_stmts(stmt.body)
    elif isinstance(stmt, A.Delay):
        yield from _walk_stmts(stmt.then)


def _stmt_exprs(stmt):
    """Top-level expressions appearing directly in one statement."""
    if isinstance(stmt, A.Assign):
        yield stmt.expr
        for part in (stmt.target.index, stmt.target.msb, stmt.target.lsb):
            if part is not None:
                yield part
    elif isinstance(stmt, A.If):
        yield stmt.cond
    elif isinstance(stmt, A.Case):
        yield stmt.subject
        for item in stmt.items:
            for label in item.labels or ():
                yield label
    elif isinstance(stmt, A.For):
        yield stmt.cond
    elif isinstance(stmt, A.While):
        yield stmt.cond
    elif isinstance(stmt, A.Repeat):
        yield stmt.count
    elif isinstance(stmt, A.SysTask):
        yield from stmt.args


def _walk_exprs(expr):
    """Yield every sub-expression of ``expr`` (inclusive)."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, A.Unary):
        yield from _walk_exprs(expr.operand)
    elif isinstance(expr, A.Binary):
        yield from _walk_exprs(expr.left)
        yield from _walk_exprs(expr.right)
    elif isinstance(expr, A.Ternary):
        yield from _walk_exprs(expr.cond)
        yield from _walk_exprs(expr.if_true)
        yield from _walk_exprs(expr.if_false)
    elif isinstance(expr, A.Concat):
        for part in expr.parts:
            yield from _walk_exprs(part)
    elif isinstance(expr, A.Replicate):
        yield from _walk_exprs(expr.count)
        yield from _walk_exprs(expr.inner)
    elif isinstance(expr, A.Index):
        yield from _walk_exprs(expr.index)
    elif isinstance(expr, A.Slice):
        yield from _walk_exprs(expr.msb)
        yield from _walk_exprs(expr.lsb)
    elif isinstance(expr, (A.SystemCall, A.FunctionCall)):
        for arg in expr.args:
            yield from _walk_exprs(arg)


def _module_exprs(module: A.Module):
    """Every expression anywhere in ``module``, synthesizable items only.

    Initial blocks are testbench scaffolding — their comparisons are
    *meant* to check fixed expectations, so they are excluded from the
    structural rules to avoid false rejects on self-checking benches.
    """
    for ca in module.assigns:
        yield from _walk_exprs(ca.expr)
        for part in (ca.target.index, ca.target.msb, ca.target.lsb):
            yield from _walk_exprs(part)
    for alw in module.always_blocks:
        for stmt in _walk_stmts(alw.body):
            for expr in _stmt_exprs(stmt):
                yield from _walk_exprs(expr)


def _same_expr(a, b) -> bool:
    """Structural equality ignoring source locations."""
    if type(a) is not type(b):
        return False
    if isinstance(a, A.Identifier):
        return a.name == b.name
    if isinstance(a, A.Number):
        return (a.width, a.value, a.xmask) == (b.width, b.value, b.xmask)
    if isinstance(a, A.Unary):
        return a.op == b.op and _same_expr(a.operand, b.operand)
    if isinstance(a, A.Binary):
        return (a.op == b.op and _same_expr(a.left, b.left)
                and _same_expr(a.right, b.right))
    if isinstance(a, A.Index):
        return a.target == b.target and _same_expr(a.index, b.index)
    if isinstance(a, A.Slice):
        return (a.target == b.target and _same_expr(a.msb, b.msb)
                and _same_expr(a.lsb, b.lsb))
    return False


def _is_reset_cond(cond) -> bool:
    from ..hdl.elaborate import _expr_reads
    reads: set[str] = set()
    _expr_reads(cond, reads)
    return any(name.lower() in _RESET_NAMES for name in reads)


# -- individual rules ---------------------------------------------------------


def _rule_lint(module: A.Module) -> list[CriticFailure]:
    out = []
    for warning in lint_module(module):
        taxonomy = _BLOCKING_LINT.get(warning.code)
        if taxonomy is not None:
            out.append(CriticFailure(taxonomy, warning.code, warning.message))
    return out


def _rule_ternary_width(module: A.Module) -> list[CriticFailure]:
    widths = _decl_widths(module)
    out = []
    for expr in _module_exprs(module):
        if not isinstance(expr, A.Ternary):
            continue
        w_true = _expr_width(expr.if_true, widths)
        w_false = _expr_width(expr.if_false, widths)
        if w_true is not None and w_false is not None and w_true != w_false:
            out.append(CriticFailure(
                TAX_WIDTH, "ternary-width",
                f"ternary arms are {w_true} and {w_false} bits wide"))
    return out


def _rule_xprop(module: A.Module) -> list[CriticFailure]:
    reads, writes = module_reads_writes(module)
    # Instance connections may drive a slice of a local net
    # (``inst i(.s(subbed[3:0]))``); count those names as driven too.
    for inst in module.instances:
        for _, expr in inst.connections:
            if isinstance(expr, (A.Slice, A.Index)):
                writes.add(expr.target)
    inputs = {p.name for p in module.ports if p.direction in ("input", "inout")}
    out = []
    for net in module.nets:
        if net.kind == "integer" or net.init is not None:
            continue
        if net.name in reads and net.name not in writes \
                and net.name not in inputs:
            out.append(CriticFailure(
                TAX_XPROP, "undriven-read",
                f"net '{net.name}' is read but never driven: "
                f"evaluates to x forever"))
    return out


def _rule_vacuity(module: A.Module) -> list[CriticFailure]:
    out = []
    for expr in _module_exprs(module):
        if isinstance(expr, A.Binary) \
                and expr.op in ("==", "!=", "<", "<=", ">", ">=") \
                and not isinstance(expr.left, A.Number) \
                and _same_expr(expr.left, expr.right):
            out.append(CriticFailure(
                TAX_VACUITY, "self-compare",
                f"comparison '{expr.op}' has structurally identical "
                f"operands: condition is constant"))
    return out


def _rule_dead_reset(module: A.Module) -> list[CriticFailure]:
    out = []
    for alw in module.always_blocks:
        if not alw.edges or all(kind == "any" for kind, _ in alw.edges):
            continue  # combinational: no registers here
        from ..hdl.elaborate import stmt_writes
        reset_writes: set[str] = set()
        live_writes: set[str] = set()

        def visit(stmt, under_reset: bool) -> None:
            if stmt is None:
                return
            if isinstance(stmt, A.If) and _is_reset_cond(stmt.cond):
                branch: set[str] = set()
                stmt_writes(stmt.then, branch)
                reset_writes.update(branch)
                visit(stmt.other, under_reset)
                return
            sink = reset_writes if under_reset else live_writes
            if isinstance(stmt, A.Assign):
                sink.add(stmt.target.name)
            elif isinstance(stmt, A.Block):
                for s in stmt.stmts:
                    visit(s, under_reset)
            elif isinstance(stmt, A.If):
                visit(stmt.then, under_reset)
                visit(stmt.other, under_reset)
            elif isinstance(stmt, A.Case):
                for item in stmt.items:
                    visit(item.body, under_reset)
            elif isinstance(stmt, (A.For, A.While, A.Repeat)):
                visit(stmt.body, under_reset)

        visit(alw.body, False)
        for name in sorted(reset_writes - live_writes):
            out.append(CriticFailure(
                TAX_DEAD_RESET, "dead-reset",
                f"register '{name}' is only ever written under reset"))
    return out


def _trojan_payload(base, other) -> bool:
    """Does ``other`` compute a corruption of the same signal as ``base``?"""
    if not isinstance(base, A.Identifier):
        return False
    if isinstance(other, A.Binary) and other.op in ("^", "~^"):
        operands = (other.left, other.right)
        return any(isinstance(o, A.Identifier) and o.name == base.name
                   for o in operands)
    if isinstance(other, A.Unary) and other.op == "~":
        return (isinstance(other.operand, A.Identifier)
                and other.operand.name == base.name)
    return False


def _rule_trojan(module: A.Module) -> list[CriticFailure]:
    widths = _decl_widths(module)
    out = []
    for expr in _module_exprs(module):
        if not isinstance(expr, A.Ternary):
            continue
        cond = expr.cond
        if not (isinstance(cond, A.Binary) and cond.op in ("==", "!=")):
            continue
        sides = (cond.left, cond.right)
        trigger = next((s for s in sides if isinstance(s, A.Identifier)), None)
        const = next((s for s in sides if isinstance(s, A.Number)), None)
        if trigger is None or const is None:
            continue
        width = widths.get(trigger.name) or (const.width if const.sized else 0)
        if width < 4:
            continue  # not a rare trigger: ordinary decode logic
        arms = ((expr.if_false, expr.if_true) if cond.op == "==" else
                (expr.if_true, expr.if_false))
        base, payload = arms
        if _trojan_payload(base, payload):
            out.append(CriticFailure(
                TAX_TROJAN, "rare-trigger-mux",
                f"signal '{base.name}' is corrupted when "
                f"'{trigger.name}' matches a {width}-bit constant"))
    return out


_RTL_RULES = (_rule_lint, _rule_ternary_width, _rule_xprop, _rule_vacuity,
              _rule_dead_reset, _rule_trojan)


# -- public entry points ------------------------------------------------------


def validate_rtl(source_text: str, module_name: str | None = None) -> Verdict:
    """Run every stage-one rule over one RTL candidate."""
    try:
        source = parse(source_text)
    except HdlError as exc:
        return Verdict(ok=False, failures=(
            CriticFailure(TAX_SYNTAX, "parse", str(exc)),))
    failures: list[CriticFailure] = []
    for name, module in source.modules.items():
        if module_name is not None and name != module_name:
            continue
        for rule in _RTL_RULES:
            failures.extend(rule(module))
    if failures:
        return Verdict(ok=False, failures=tuple(failures))
    return ACCEPT


def validate_pragmas(source_text: str) -> Verdict:
    """Check every ``#pragma HLS`` directive against the legal subset."""
    failures: list[CriticFailure] = []
    for line in source_text.splitlines():
        pragma = parse_pragma(line)
        if pragma is None:
            continue
        if pragma.kind.lower() not in LEGAL_PRAGMA_KINDS:
            failures.append(CriticFailure(
                TAX_PRAGMA, "illegal-pragma",
                f"'#pragma HLS {pragma.kind}' is outside the "
                f"synthesizable subset"))
    if failures:
        return Verdict(ok=False, failures=tuple(failures))
    return ACCEPT


def validate_expectation(value: str) -> CriticFailure | None:
    """Well-formedness of one expected-value literal (no ground truth).

    Assertion miners and testbench generators stringify simulated values;
    corruption shows up as literals no simulator could have printed
    (``4'h3_wrong``).  This checks only the *shape* of the literal — it
    never consults the reference design, so it cannot leak ground truth.
    """
    if _LITERAL_RE.match(value.strip()):
        return None
    return CriticFailure(
        TAX_VACUITY, "malformed-expectation",
        f"expected value '{value}' is not a well-formed logic literal")


def validate_assertion(stimulus: dict, expected: str) -> Verdict:
    """Sanity-check one mined assertion: non-vacuous, well-formed."""
    failures: list[CriticFailure] = []
    if not stimulus:
        failures.append(CriticFailure(
            TAX_VACUITY, "vacuous-assertion",
            "assertion constrains no input: trivially true"))
    failure = validate_expectation(expected)
    if failure is not None:
        failures.append(failure)
    if failures:
        return Verdict(ok=False, failures=tuple(failures))
    return ACCEPT
