"""``repro.critic`` — two-stage candidate validation for the run engine.

The paper's survey half stresses that LLM-generated RTL/HLS artifacts
are plausible-but-wrong often enough that every production flow needs a
verification backstop between generation and tool execution.  This
package is that backstop:

* **stage one** — deterministic rule validators
  (:mod:`repro.critic.rules`) built on the in-repo parser/linter, with a
  closed failure taxonomy;
* **stage two** — an optional seeded LLM judge
  (:mod:`repro.critic.judge`) that rides the broker seam under
  ``REPRO_SERVICE=1``.

Everything is gated behind ``REPRO_CRITIC`` (and ``REPRO_CRITIC_JUDGE``
for stage two), both **off by default**: with the knobs unset,
:func:`resolve_critic` returns ``None`` and every flow takes exactly its
pre-critic code path — the engine golden fixtures replay byte-identical.
"""

from __future__ import annotations

from ..obs import get_metrics, get_tracer
from .judge import JudgeClient, SimulatedJudge, resolve_judge
from .rules import (validate_assertion, validate_expectation,
                    validate_pragmas, validate_rtl)
from .verdict import (ACCEPT, ALL_TAXONOMIES, CriticFailure, Verdict,
                      verdicts_feedback)

__all__ = [
    "ACCEPT", "ALL_TAXONOMIES", "Critic", "CriticFailure", "JudgeClient",
    "SimulatedJudge", "Verdict", "resolve_critic", "resolve_judge",
    "validate_assertion", "validate_expectation", "validate_pragmas",
    "validate_rtl", "verdicts_feedback",
]


class Critic:
    """Front-end combining the rule validators and the optional judge.

    One instance is resolved per flow run (:func:`resolve_critic`); its
    verdicts are pure functions of the candidate text and the resolved
    seed, so review order and parallelism cannot change any verdict.
    """

    def __init__(self, flow: str = "", seed: int = 0,
                 judge: JudgeClient | None = None):
        self.flow = flow
        self.seed = seed
        self.judge = judge

    # -- single-candidate review ---------------------------------------------

    def review_source(self, text: str,
                      module_name: str | None = None) -> Verdict:
        """Rules first; the judge only sees rule-clean candidates."""
        verdict = validate_rtl(text, module_name)
        if verdict.ok and self.judge is not None:
            get_metrics().counter("critic.judge_calls").add()
            verdict = verdict.merged_with(self.judge.judge(text))
        return verdict

    # -- batch review (what the engine hook uses) ----------------------------

    def review(self, texts: list[str],
               module_name: str | None = None) -> list[Verdict]:
        tracer = get_tracer()
        with tracer.span("critic.review", flow=self.flow, n=len(texts)):
            verdicts = [self.review_source(t, module_name) for t in texts]
        metrics = get_metrics()
        metrics.counter("critic.candidates").add(len(verdicts))
        rejected = [v for v in verdicts if not v.ok]
        if rejected:
            metrics.counter("critic.rejected").add(len(rejected))
            for verdict in rejected:
                for label in verdict.labels():
                    metrics.counter(f"critic.flag.{label}").add()
        return verdicts

    def engine_hook(self, text_of=None, module_name: str | None = None):
        """Adapter for :class:`~repro.engine.kernel.RefinementEngine`.

        ``text_of`` extracts candidate text (defaults to ``.text``, the
        shape every simulated-model generation uses).
        """
        if text_of is None:
            text_of = lambda c: c.text  # noqa: E731

        def hook(state, candidates):
            return self.review([text_of(c) for c in candidates], module_name)

        return hook

    # -- artifact screens (assertgen / autobench) ----------------------------

    def screen_assertions(self, assertions):
        """Split mined assertions into (kept, rejected-with-verdicts)."""
        kept, rejected = [], []
        for assertion in assertions:
            verdict = validate_assertion(assertion.stimulus,
                                         assertion.expected)
            if verdict.ok:
                kept.append(assertion)
            else:
                rejected.append((assertion, verdict))
        metrics = get_metrics()
        metrics.counter("critic.candidates").add(len(assertions))
        if rejected:
            metrics.counter("critic.rejected").add(len(rejected))
            for _, verdict in rejected:
                for label in verdict.labels():
                    metrics.counter(f"critic.flag.{label}").add()
        return kept, rejected

    def screen_testbench(self, tb):
        """Drop testbench check rows whose expected values are malformed.

        Returns ``(tb, dropped)``; the testbench is modified in place
        (vectors and expectation rows stay aligned).  Only literal
        *shape* is checked — the reference is never consulted.
        """
        keep = [i for i, row in enumerate(tb.expectations)
                if not any(validate_expectation(v) for v in row.values())]
        dropped = len(tb.expectations) - len(keep)
        if dropped:
            tb.vectors = [tb.vectors[i] for i in keep]
            tb.expectations = [tb.expectations[i] for i in keep]
            metrics = get_metrics()
            metrics.counter("critic.rejected").add(dropped)
            metrics.counter("critic.flag.vacuity").add(dropped)
        get_metrics().counter("critic.candidates").add(dropped + len(keep))
        return tb, dropped


def resolve_critic(flow: str = "", seed: int = 0) -> Critic | None:
    """A :class:`Critic` when ``REPRO_CRITIC=1``, else ``None``.

    The ``None`` return is the byte-identity guarantee: callers wire the
    critic only when one is resolved, so the default configuration runs
    the exact pre-critic code path.
    """
    from ..config import get_settings
    settings = get_settings()
    if not settings.critic_enabled:
        return None
    judge = resolve_judge(seed) if settings.critic_judge_enabled else None
    return Critic(flow=flow, seed=seed, judge=judge)
