"""Stage-two critic: a seeded, simulated LLM judge.

The judge models what a production deployment would get from asking a
second LLM "is this candidate plausible RTL for the task?".  Like every
model in this repo it is *simulated but honest*: the verdict is a pure
function of ``(candidate text, seed)`` — a salted hash drives both the
feature noise and the borderline calls — so it exhibits realistic
false-accept/false-reject behaviour (measured in ``BENCH_critic.json``)
while staying byte-identical across replays.

Determinism under batching: the judge backend exposes a ``judge(text)``
method, so under ``REPRO_SERVICE=1`` verdicts ride the broker's
per-model lanes exactly like ``generate``/``refine`` calls.  Because
``judge`` reads nothing but its argument and the constructor seed, lane
scheduling order cannot change any verdict — the service path returns
the same bytes as the direct path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.model import _stable_seed
from .verdict import ACCEPT, TAX_JUDGE, CriticFailure, Verdict

# Textual smells a reviewer model would key on.  Each carries a weight;
# the total plus seeded noise is compared against the suspicion
# threshold.  The list is ordered; iteration order is part of the
# deterministic contract.
_SMELLS = (
    ("x_literal", "'bx", 0.25),
    ("corrupt_literal", "_wrong", 0.60),
    ("rare_trigger", "== 8'h", 0.20),
    ("dead_branch", "1'b0) ?", 0.20),
)

_THRESHOLD = 0.5
_NOISE = 0.35


@dataclass(frozen=True)
class _JudgeProfile:
    """Minimal profile so the broker can key a lane for the judge."""

    name: str = "critic-judge"


class SimulatedJudge:
    """Deterministic judge backend; rides broker lanes via kind='judge'."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.profile = _JudgeProfile()

    def judge(self, text: str) -> Verdict:
        """Score one candidate; pure function of (text, self.seed)."""
        score = 0.0
        smells = []
        for name, needle, weight in _SMELLS:
            if needle in text:
                score += weight
                smells.append(name)
        # Salted noise models reviewer uncertainty: near-threshold
        # candidates flip with the seed, which is exactly the
        # false-accept/false-reject behaviour the bench measures.
        noise_seed = _stable_seed(self.seed, "judge", text)
        noise = (noise_seed % 10_000) / 10_000.0 * _NOISE
        score += noise
        if score < _THRESHOLD:
            return ACCEPT
        detail = (f"suspicion {score:.2f} >= {_THRESHOLD}"
                  + (f" ({', '.join(smells)})" if smells else ""))
        return Verdict(ok=False, stage="judge", failures=(
            CriticFailure(TAX_JUDGE, "llm-judge", detail),))


class JudgeClient:
    """Routes judge calls directly or through the broker seam.

    Mirrors :class:`~repro.service.client.ServiceClient`: when a broker
    is supplied the call is submitted to the judge backend's lane with a
    stable key, otherwise it is invoked in-process.  Both paths hit the
    same pure ``SimulatedJudge.judge``, so results are identical.
    """

    def __init__(self, seed: int = 0, broker=None):
        self.backend = SimulatedJudge(seed)
        self.broker = broker

    @property
    def seed(self) -> int:
        return self.backend.seed

    def judge(self, text: str) -> Verdict:
        if self.broker is None:
            return self.backend.judge(text)
        key = _stable_seed(self.backend.seed, "judge", text)
        return self.broker.call(self.backend, "judge", (text,), key=key)


def resolve_judge(seed: int = 0) -> JudgeClient:
    """Judge client honouring ``REPRO_SERVICE`` (broker seam) settings."""
    from ..config import get_settings
    broker = None
    if get_settings().service_enabled:
        from ..service.broker import get_default_broker
        broker = get_default_broker()
    return JudgeClient(seed=seed, broker=broker)
