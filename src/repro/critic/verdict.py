"""Structured critic verdicts with a failure taxonomy.

A :class:`Verdict` is the unit of communication between the critic and
the rest of the run engine: rule validators and the LLM judge both emit
verdicts, the engine records them on the :class:`~repro.engine.record.RunRecord`,
and rejected candidates render their verdict back into the next round's
refine prompt via :meth:`Verdict.feedback`.

The taxonomy is deliberately small and closed — every failure a critic
stage can raise maps to exactly one label, which is what the calibration
suite asserts against (see ``tests/test_critic_corpus.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# -- failure taxonomy ---------------------------------------------------------
#
# One label per failure class; the corpus bridge asserts each labeled
# adversarial candidate is flagged with exactly its expected label.

TAX_SYNTAX = "syntax"          # does not parse / elaborate
TAX_LINT = "lint"              # blocking lint diagnostic (undeclared, multidrive)
TAX_WIDTH = "width"            # width mismatch (ternary arms, assignment)
TAX_XPROP = "xprop"            # net read but never driven -> permanent X
TAX_VACUITY = "vacuity"        # structurally vacuous check / malformed expectation
TAX_DEAD_RESET = "dead-reset"  # register written only under reset
TAX_TROJAN = "trojan"          # rare-trigger corruption mux
TAX_PRAGMA = "pragma"          # illegal HLS pragma for the synthesizable subset
TAX_JUDGE = "judge"            # LLM-judge suspicion (stage two)

ALL_TAXONOMIES = (
    TAX_SYNTAX, TAX_LINT, TAX_WIDTH, TAX_XPROP, TAX_VACUITY,
    TAX_DEAD_RESET, TAX_TROJAN, TAX_PRAGMA, TAX_JUDGE,
)


@dataclass(frozen=True)
class CriticFailure:
    """One rule (or judge) hit: taxonomy label, rule id, human detail."""

    taxonomy: str
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.taxonomy}] {self.rule}: {self.detail}"


@dataclass
class Verdict:
    """Outcome of reviewing one candidate.

    ``stage`` records which critic stages contributed ("rules",
    "judge", or "rules+judge") so calibration numbers can be split by
    stage.  A verdict with no failures is accepting (``ok=True``).
    """

    ok: bool
    stage: str = "rules"
    failures: tuple[CriticFailure, ...] = ()
    detail: str = ""

    def labels(self) -> tuple[str, ...]:
        """Distinct taxonomy labels, in first-hit order."""
        seen: list[str] = []
        for failure in self.failures:
            if failure.taxonomy not in seen:
                seen.append(failure.taxonomy)
        return tuple(seen)

    def feedback(self) -> str:
        """Render this verdict as repair context for a refine prompt."""
        if self.ok:
            return ""
        lines = ["CRITIC: candidate rejected by validation"]
        for failure in self.failures:
            lines.append(f"- {failure}")
        return "\n".join(lines)

    def merged_with(self, other: "Verdict") -> "Verdict":
        """Combine a rules verdict with a judge verdict (order matters)."""
        return Verdict(
            ok=self.ok and other.ok,
            stage=f"{self.stage}+{other.stage}",
            failures=self.failures + other.failures,
            detail=self.detail or other.detail,
        )

    def summary(self) -> dict:
        """Plain-dict form for run-record annotation and reports."""
        return {
            "ok": self.ok,
            "stage": self.stage,
            "labels": list(self.labels()),
        }


ACCEPT = Verdict(ok=True)


def verdicts_feedback(verdicts: list["Verdict"],
                      limit: int = 3) -> str:
    """Repair context covering every rejected verdict in a batch.

    ``limit`` caps how many rejected candidates are rendered so refine
    prompts stay bounded; the count line always reports the true total.
    """
    rejected = [(i, v) for i, v in enumerate(verdicts) if not v.ok]
    if not rejected:
        return ""
    lines = [f"CRITIC: {len(rejected)} of {len(verdicts)} candidates "
             "rejected by validation"]
    for index, verdict in rejected[:limit]:
        for failure in verdict.failures:
            lines.append(f"- candidate {index}: {failure}")
    return "\n".join(lines)
