"""EDA tool-documentation QA with retrieval augmentation (Section II's
"Customized Retrieval Augmented Generation and Benchmarking for EDA Tool
Documentation QA").

The corpus is this repository's own tool surface — lint diagnostics, HLS
error codes, pragma semantics, simulator limits — so the QA flow answers
questions a user of *this* stack would actually ask, and retrieval quality
is measurable against labeled question→document pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import get_metrics
from .model import GenerationTask, _stable_seed
from .rag import Document, Retrieval, VectorIndex

# One entry per documented behaviour; doc_id doubles as the ground-truth
# label for the benchmark queries below.
_CORPUS: tuple[tuple[str, str], ...] = (
    ("lint.undecl",
     "LINT-UNDECL: identifier used but never declared. Declare every wire, "
     "reg or integer before use; check for typos in signal names."),
    ("lint.multidrive",
     "LINT-MULTIDRIVE: signal driven from multiple places. A net may have "
     "one continuous assign or one always block driving it, never both or "
     "several."),
    ("lint.blockseq",
     "LINT-BLOCKSEQ: blocking assignment (=) inside a clocked always block. "
     "Use non-blocking (<=) for state elements to avoid simulation races."),
    ("lint.nbacomb",
     "LINT-NBACOMB: non-blocking assignment (<=) in combinational always "
     "block. Use blocking (=) in always @(*) blocks."),
    ("lint.latch",
     "LINT-LATCH: latch inferred because a combinational block does not "
     "assign its output on every path. Add an else branch or a case "
     "default."),
    ("lint.width",
     "LINT-WIDTH: assignment width mismatch between target and expression. "
     "Verilog silently truncates or zero-extends; make widths explicit."),
    ("hls.001",
     "HLS001: dynamic memory allocation (malloc, calloc, free) is not "
     "synthesizable. Replace heap buffers with statically sized local "
     "arrays mapped to BRAM."),
    ("hls.002",
     "HLS002: recursion is not synthesizable because hardware has no call "
     "stack. Convert tail recursion into loops; restructure other "
     "recursion."),
    ("hls.003",
     "HLS003: loop without a statically bounded trip count. Rewrite while "
     "loops as for loops with a constant bound or an iteration budget so "
     "latency analysis can complete."),
    ("hls.004",
     "HLS004: pointer parameter without a bound. Give array parameters an "
     "explicit size or set an interface depth pragma so ports can be "
     "sized."),
    ("hls.005",
     "HLS005: I/O calls such as printf are not synthesizable; hardware "
     "kernels have no stdout. Delete debug prints before synthesis."),
    ("hls.009",
     "HLS009: division or modulo by a runtime value requires a divider "
     "core. Divide by constant powers of two (shifts), or allocate a "
     "divider with an allocation pragma and accept the latency."),
    ("pragma.pipeline",
     "#pragma HLS pipeline II=n overlaps loop iterations with initiation "
     "interval n. Loop-carried dependencies force the achieved II up to "
     "the dependency distance; check the schedule report."),
    ("pragma.unroll",
     "#pragma HLS unroll factor=n replicates the loop body n times, "
     "multiplying resource use and dividing trip count. Full unroll needs "
     "a constant trip count."),
    ("pragma.partition",
     "#pragma HLS array_partition splits an array across memories to "
     "raise bandwidth for unrolled or pipelined loops."),
    ("sim.maxsteps",
     "Simulation error 'runaway execution': a zero-delay loop or "
     "combinational feedback kept the event queue busy at one timestamp. "
     "Check for always blocks without timing controls and for assign "
     "cycles."),
    ("sim.xprop",
     "X propagation: uninitialized regs start as X; arithmetic on X "
     "produces X and comparisons with X are neither true nor false. Reset "
     "state elements before relying on their values."),
    ("synth.divider",
     "The synthesizer only implements division and modulo by constant "
     "powers of two (as shifts and masks). Other divisors raise a "
     "synthesis error."),
)


@dataclass
class Answer:
    question: str
    text: str
    sources: list[Retrieval] = field(default_factory=list)
    # Model-synthesized answers only: True while the answer stayed faithful
    # to the retrieved passage (no hallucination faults landed).
    grounded: bool = True
    model: str = ""

    @property
    def best_source_id(self) -> str:
        return self.sources[0].document.doc_id if self.sources else ""


class DocQa:
    """Retrieval-augmented QA over the tool documentation corpus.

    Extractive by default: the best passage *is* the answer.  Pass a
    ``model`` (profile name, ``SimulatedLLM`` or any ``LLMClient``) to
    synthesize the answer through the unified client seam instead — the
    retrieved passage becomes the generation's reference text, so the
    call batches on broker lanes under ``REPRO_SERVICE=1`` and its fault
    ledger tells us whether the paraphrase stayed grounded.  Seeding runs
    through ``_stable_seed`` (the question and the cited doc key the
    generation), so answers are deterministic per (model, seed, question).
    """

    def __init__(self, extra_docs: list[Document] | None = None,
                 model=None, *, seed: int = 0):
        self.index = VectorIndex()
        for doc_id, text in _CORPUS:
            self.index.add(Document(doc_id, text))
        for doc in extra_docs or []:
            self.index.add(doc)
        self.llm = None
        if model is not None:
            from ..service import resolve_client
            self.llm = resolve_client(model, seed=seed)

    def ask(self, question: str, top_k: int = 3) -> Answer:
        get_metrics().counter("docqa.queries").add()
        hits = self.index.query(question, top_k=top_k)
        if not hits:
            return Answer(question, "No relevant documentation found.")
        best = hits[0].document
        if self.llm is not None:
            return self._synthesize(question, best, hits)
        # Extractive answer: lead with the best passage, cite the rest.
        text = best.text
        if len(hits) > 1:
            others = ", ".join(h.document.doc_id for h in hits[1:])
            text += f" (see also: {others})"
        return Answer(question, text, hits)

    def _synthesize(self, question: str, best: Document,
                    hits: list[Retrieval]) -> Answer:
        """Answer through the model client, grounded in the best passage.

        The stable task id folds the question and the cited doc, so the
        same question always draws the same generation regardless of ask
        order or service mode.  Questions are open-ended specs: a model
        that misreads one answers from memory instead of the passage —
        the hallucination failure mode RAG is meant to suppress, and what
        ``grounded`` reports (prose dodges the code-idiom fault patterns,
        so misinterpretation is the binding risk here).
        """
        task = GenerationTask(
            task_id=f"docqa:{_stable_seed(question, best.doc_id)}",
            spec=question, reference_source=best.text, complexity=1,
            language="text", open_ended=True)
        generation = self.llm.generate(task, temperature=0.0)
        text = "\n".join(line for line in generation.text.splitlines()
                         if not line.startswith("//")).strip()
        if len(hits) > 1:
            others = ", ".join(h.document.doc_id for h in hits[1:])
            text += f" (see also: {others})"
        text += f" [source: {best.doc_id}]"
        return Answer(question, text, hits,
                      grounded=not generation.misinterpreted
                      and not generation.faults,
                      model=self.llm.profile.name)


# Labeled evaluation set: (question, expected doc_id).
EVAL_QUESTIONS: tuple[tuple[str, str], ...] = (
    ("why does the linter say my signal is driven from two places",
     "lint.multidrive"),
    ("what does latch inferred mean in a combinational block", "lint.latch"),
    ("can I use malloc in a kernel for synthesis", "hls.001"),
    ("my while loop fails HLS with no trip count", "hls.003"),
    ("how do I pipeline a loop with initiation interval 1",
     "pragma.pipeline"),
    ("printf breaks my HLS build", "hls.005"),
    ("recursion error when synthesizing my function", "hls.002"),
    ("simulator reports runaway execution at one time", "sim.maxsteps"),
    ("division by a variable will not synthesize", "hls.009"),
    ("should I use blocking or non-blocking in clocked always",
     "lint.blockseq"),
    ("outputs are x after reset in simulation", "sim.xprop"),
    ("unroll a loop by a factor of four", "pragma.unroll"),
)


def retrieval_accuracy(qa: DocQa | None = None, top_k: int = 1) -> float:
    """Fraction of labeled questions whose expected doc ranks in top_k."""
    qa = qa or DocQa()
    hits = 0
    for question, expected in EVAL_QUESTIONS:
        retrieved = [r.document.doc_id
                     for r in qa.index.query(question, top_k=top_k)]
        if expected in retrieved:
            hits += 1
    return hits / len(EVAL_QUESTIONS)


def answer_faithfulness(model="gpt-4o", *, seed: int = 0) -> float:
    """End-to-end RAG quality: fraction of labeled questions where the
    model-synthesized answer both cites the expected document and stays
    grounded in its passage (no hallucination fault landed)."""
    qa = DocQa(model=model, seed=seed)
    good = 0
    for question, expected in EVAL_QUESTIONS:
        answer = qa.ask(question)
        if answer.grounded and answer.best_source_id == expected:
            good += 1
    return good / len(EVAL_QUESTIONS)
