"""A small deterministic tokenizer used for token accounting and text
similarity.

This is not a learned BPE — it is a code-aware word/punctuation splitter that
gives stable token counts for cost accounting, prompt-budget checks, and the
n-gram similarity measures used by the candidate pool (Levenshtein operates
on tokens, not characters, to match how the SLT paper compares snippets).
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z_0-9]*"      # identifiers/keywords
    r"|0[xX][0-9a-fA-F]+"           # hex literals
    r"|\d+'[bodhBODH][0-9a-fA-FxXzZ_]+"  # verilog sized literals
    r"|\d+"                          # decimal
    r"|<<=|>>=|===|!==|<<<|>>>|<=|>=|==|!=|&&|\|\||<<|>>|\+\+|--|\+=|-=|\*=|/=|%="
    r"|[\[\](){};:,.?~!@#$%^&*\-+=<>/|\\]"
    r"|\"[^\"]*\""
)


def tokenize_text(text: str) -> list[str]:
    """Split source text into tokens (whitespace and comments dropped)."""
    no_line_comments = re.sub(r"//[^\n]*", " ", text)
    cleaned = re.sub(r"/\*.*?\*/", " ", no_line_comments, flags=re.S)
    return _TOKEN_RE.findall(cleaned)


def count_tokens(text: str) -> int:
    return len(tokenize_text(text))


def ngrams(tokens: list[str], n: int) -> set[tuple[str, ...]]:
    if n <= 0:
        raise ValueError("n must be positive")
    return {tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1)}


def jaccard_similarity(a: str, b: str, n: int = 3) -> float:
    """Token n-gram Jaccard similarity — cheap proxy for code similarity."""
    ga = ngrams(tokenize_text(a), n)
    gb = ngrams(tokenize_text(b), n)
    if not ga and not gb:
        return 1.0
    if not ga or not gb:
        return 0.0
    return len(ga & gb) / len(ga | gb)


def token_levenshtein(a: str, b: str, limit: int | None = None) -> int:
    """Levenshtein distance over tokens (banded when ``limit`` is given).

    The SLT loop (Section V) uses Levenshtein distance between candidate
    snippets to force pool diversity; token-level distance is what makes two
    renamings of the same loop 'close'.
    """
    ta = tokenize_text(a)
    tb = tokenize_text(b)
    if limit is not None and abs(len(ta) - len(tb)) > limit:
        return limit + 1
    if not ta:
        return len(tb)
    if not tb:
        return len(ta)
    prev = list(range(len(tb) + 1))
    for i, tok_a in enumerate(ta, start=1):
        cur = [i] + [0] * len(tb)
        row_min = cur[0]
        for j, tok_b in enumerate(tb, start=1):
            cost = 0 if tok_a == tok_b else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
            row_min = min(row_min, cur[j])
        if limit is not None and row_min > limit:
            return limit + 1
        prev = cur
    return prev[-1]


def normalized_levenshtein(a: str, b: str) -> float:
    """Distance scaled to [0, 1] by the longer token sequence."""
    ta, tb = tokenize_text(a), tokenize_text(b)
    longest = max(len(ta), len(tb))
    if longest == 0:
        return 0.0
    return token_levenshtein(a, b) / longest
