"""Retrieval-augmented generation: a TF-IDF vector index.

Used twice in the reproduction: the HLS repair loop retrieves correction
templates (Fig. 2 stage 2), and the structured flows retrieve few-shot
examples.  The index is a plain TF-IDF cosine retriever — no network, no
embedding model, fully deterministic.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Document:
    doc_id: str
    text: str
    payload: object = None   # arbitrary attachment (e.g. a RepairTemplate)


@dataclass(frozen=True)
class Retrieval:
    document: Document
    score: float


_WORD_RE = re.compile(r"[a-z0-9_]+")


def _terms(text: str) -> list[str]:
    return _WORD_RE.findall(text.lower())


@dataclass
class VectorIndex:
    """TF-IDF index with cosine similarity retrieval."""

    documents: list[Document] = field(default_factory=list)
    _df: dict[str, int] = field(default_factory=dict)
    _vectors: list[dict[str, float]] = field(default_factory=list)
    _dirty: bool = False

    def add(self, document: Document) -> None:
        self.documents.append(document)
        self._dirty = True

    def add_all(self, documents: list[Document]) -> None:
        for doc in documents:
            self.add(doc)

    def __len__(self) -> int:
        return len(self.documents)

    def _rebuild(self) -> None:
        self._df = {}
        term_lists: list[dict[str, int]] = []
        for doc in self.documents:
            counts: dict[str, int] = {}
            for term in _terms(doc.text):
                counts[term] = counts.get(term, 0) + 1
            term_lists.append(counts)
            for term in counts:
                self._df[term] = self._df.get(term, 0) + 1
        n = max(1, len(self.documents))
        self._vectors = []
        for counts in term_lists:
            vec: dict[str, float] = {}
            for term, tf in counts.items():
                idf = math.log((1 + n) / (1 + self._df[term])) + 1.0
                vec[term] = (1.0 + math.log(tf)) * idf
            norm = math.sqrt(sum(w * w for w in vec.values())) or 1.0
            self._vectors.append({t: w / norm for t, w in vec.items()})
        self._dirty = False

    def query(self, text: str, top_k: int = 3,
              min_score: float = 0.0) -> list[Retrieval]:
        """Return the ``top_k`` most similar documents to ``text``."""
        if self._dirty or (self.documents and not self._vectors):
            self._rebuild()
        if not self.documents:
            return []
        counts: dict[str, int] = {}
        for term in _terms(text):
            counts[term] = counts.get(term, 0) + 1
        n = max(1, len(self.documents))
        qvec: dict[str, float] = {}
        for term, tf in counts.items():
            idf = math.log((1 + n) / (1 + self._df.get(term, 0))) + 1.0
            qvec[term] = (1.0 + math.log(tf)) * idf
        qnorm = math.sqrt(sum(w * w for w in qvec.values())) or 1.0
        scored: list[Retrieval] = []
        for doc, dvec in zip(self.documents, self._vectors):
            score = sum(w * dvec.get(t, 0.0) for t, w in qvec.items()) / qnorm
            if score > min_score:
                scored.append(Retrieval(doc, score))
        scored.sort(key=lambda r: (-r.score, r.document.doc_id))
        return scored[:top_k]


def build_template_index(templates) -> VectorIndex:
    """Index repair templates by their retrieval text (see repro.hls.transforms).

    The issue codes a template fixes are part of its indexed text — a real
    correction library is keyed by tool error code, and queries lead with
    the code from the compile log.
    """
    index = VectorIndex()
    for template in templates:
        codes = " ".join(template.issue_codes)
        index.add(Document(template.template_id,
                           f"{codes} {template.retrieval_text} "
                           f"{template.description}",
                           payload=template))
    return index
