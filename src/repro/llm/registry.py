"""Registry of simulated model profiles.

Calibration notes (tied to the paper's Section IV narrative):

* ``dave-gpt2`` — the 2020 finetuned GPT-2: solves novice textbook problems,
  collapses on anything complex or open-ended.
* ``verigen-codegen-16b`` — the best VeriGen model: outperforms ChatGPT-3.5
  and approaches GPT-4 on in-distribution Verilog at a fraction of the size.
* ``chatgpt-3.5`` / ``gpt-4`` / ``gpt-4o`` — general conversational models;
  only the top of the family meaningfully exploits EDA tool feedback
  (the AutoChip observation).
* ``codellama-34b-instruct`` and its finetuned sibling — the SLT case study
  model pair ("performs significantly better" after finetuning on 80k QA
  pairs + 1.5B tokens).
* ``cl-verilog-34b`` — hierarchical-prompting era finetuned Code Llama.
* ``rtlcoder-7b`` / ``codev-7b`` — later compact Verilog finetunes.
"""

from __future__ import annotations

from .profiles import ModelProfile

_PROFILES: dict[str, ModelProfile] = {}


def _register(profile: ModelProfile) -> ModelProfile:
    if profile.name in _PROFILES:
        raise ValueError(f"duplicate model '{profile.name}'")
    _PROFILES[profile.name] = profile
    return profile


DAVE = _register(ModelProfile(
    name="dave-gpt2", family="gpt2-ft", params_b=0.35, instruct=False,
    syntax_reliability=0.80, semantic_reliability=0.55,
    feedback_comprehension=0.05, spec_comprehension=0.15,
    instruction_following=0.20, generation_diversity=0.30,
    verilog_strength=0.55, c_strength=0.10, realworld_code_prior=0.10,
    context_items=1, release_year=2020))

VERIGEN = _register(ModelProfile(
    name="verigen-codegen-16b", family="codegen-ft", params_b=16, instruct=False,
    syntax_reliability=0.92, semantic_reliability=0.72,
    feedback_comprehension=0.15, spec_comprehension=0.35,
    instruction_following=0.35, generation_diversity=0.45,
    verilog_strength=0.85, c_strength=0.40, realworld_code_prior=0.30,
    context_items=3, release_year=2023))

CHATGPT35 = _register(ModelProfile(
    name="chatgpt-3.5", family="gpt", params_b=175, instruct=True,
    syntax_reliability=0.88, semantic_reliability=0.62,
    feedback_comprehension=0.30, spec_comprehension=0.70,
    instruction_following=0.75, generation_diversity=0.60,
    verilog_strength=0.55, c_strength=0.75, realworld_code_prior=0.70,
    context_items=5, release_year=2022))

GPT4 = _register(ModelProfile(
    name="gpt-4", family="gpt", params_b=1000, instruct=True,
    syntax_reliability=0.95, semantic_reliability=0.78,
    feedback_comprehension=0.55, spec_comprehension=0.88,
    instruction_following=0.90, generation_diversity=0.55,
    verilog_strength=0.72, c_strength=0.88, realworld_code_prior=0.85,
    context_items=8, release_year=2023))

GPT4O = _register(ModelProfile(
    name="gpt-4o", family="gpt", params_b=1100, instruct=True,
    syntax_reliability=0.96, semantic_reliability=0.80,
    feedback_comprehension=0.75, spec_comprehension=0.90,
    instruction_following=0.92, generation_diversity=0.60,
    verilog_strength=0.75, c_strength=0.90, realworld_code_prior=0.88,
    context_items=10, release_year=2024))

CODELLAMA = _register(ModelProfile(
    name="codellama-34b-instruct", family="llama", params_b=34, instruct=True,
    syntax_reliability=0.90, semantic_reliability=0.68,
    feedback_comprehension=0.35, spec_comprehension=0.72,
    instruction_following=0.78, generation_diversity=0.65,
    verilog_strength=0.50, c_strength=0.80, realworld_code_prior=0.80,
    context_items=6, release_year=2023))

CODELLAMA_FT = _register(ModelProfile(
    name="codellama-34b-instruct-ft", family="llama", params_b=34, instruct=True,
    syntax_reliability=0.94, semantic_reliability=0.76,
    feedback_comprehension=0.45, spec_comprehension=0.78,
    instruction_following=0.85, generation_diversity=0.60,
    verilog_strength=0.60, c_strength=0.90, realworld_code_prior=0.85,
    context_items=8, release_year=2024))

CL_VERILOG = _register(ModelProfile(
    name="cl-verilog-34b", family="llama-ft", params_b=34, instruct=True,
    syntax_reliability=0.95, semantic_reliability=0.78,
    feedback_comprehension=0.40, spec_comprehension=0.75,
    instruction_following=0.82, generation_diversity=0.55,
    verilog_strength=0.88, c_strength=0.70, realworld_code_prior=0.60,
    context_items=6, release_year=2024))

RTLCODER = _register(ModelProfile(
    name="rtlcoder-7b", family="mistral-ft", params_b=7, instruct=True,
    syntax_reliability=0.91, semantic_reliability=0.70,
    feedback_comprehension=0.20, spec_comprehension=0.55,
    instruction_following=0.65, generation_diversity=0.50,
    verilog_strength=0.82, c_strength=0.45, realworld_code_prior=0.35,
    context_items=4, release_year=2024))

CODEV = _register(ModelProfile(
    name="codev-7b", family="deepseek-ft", params_b=7, instruct=True,
    syntax_reliability=0.93, semantic_reliability=0.73,
    feedback_comprehension=0.22, spec_comprehension=0.60,
    instruction_following=0.70, generation_diversity=0.50,
    verilog_strength=0.86, c_strength=0.50, realworld_code_prior=0.40,
    context_items=4, release_year=2025))


def get_model(name: str) -> ModelProfile:
    """Look up a model profile by name; raises KeyError with suggestions."""
    if name not in _PROFILES:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown model '{name}'; known models: {known}")
    return _PROFILES[name]


def list_models() -> list[str]:
    return sorted(_PROFILES)


def models_by_family(family: str) -> list[ModelProfile]:
    return [p for p in _PROFILES.values() if p.family == family]


# The four "state-of-the-art commercial LLMs" of the AutoChip evaluation.
AUTOCHIP_EVAL_MODELS = ("chatgpt-3.5", "gpt-4", "gpt-4o",
                        "codellama-34b-instruct")
