"""Fault taxonomy for simulated LLM code generation.

The simulated model produces code by perturbing a correct solution with
faults drawn from this taxonomy.  The split into *syntax*, *logic* and
*interface* classes matters downstream:

* syntax faults fail compilation → precise tool feedback (easy to fix),
* logic faults fail simulation → vague feedback (hard to fix; this is where
  ``feedback_comprehension`` separates the models, per the AutoChip study),
* interface faults break the testbench binding → medium feedback.

Every fault is a deterministic text transformation; appliers return ``None``
when the pattern does not occur so the injector can fall through.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable

Applier = Callable[[str, random.Random], str | None]


@dataclass(frozen=True)
class FaultSpec:
    fault_id: str
    klass: str          # 'syntax' | 'logic' | 'interface'
    description: str
    apply: Applier


def _swap_once(source: str, pattern: str, replacement: str,
               rng: random.Random) -> str | None:
    matches = list(re.finditer(pattern, source))
    if not matches:
        return None
    m = rng.choice(matches)
    return source[:m.start()] + m.expand(replacement) + source[m.end():]


# -- syntax faults ------------------------------------------------------------


def _drop_semicolon(source: str, rng: random.Random) -> str | None:
    positions = [m.start() for m in re.finditer(r";", source)]
    if len(positions) < 2:
        return None
    pos = rng.choice(positions)
    return source[:pos] + source[pos + 1:]


def _misspell_keyword(source: str, rng: random.Random) -> str | None:
    keywords = ["always", "assign", "endmodule", "begin", "module"]
    present = [k for k in keywords if re.search(rf"\b{k}\b", source)]
    if not present:
        return None
    kw = rng.choice(present)
    bad = {"always": "alway", "assign": "asign", "endmodule": "endmodul",
           "begin": "begn", "module": "modul"}[kw]
    return re.sub(rf"\b{kw}\b", bad, source, count=1)


def _drop_end(source: str, rng: random.Random) -> str | None:
    matches = list(re.finditer(r"\bend\b(?!module|case|function)", source))
    if not matches:
        return None
    m = rng.choice(matches)
    return source[:m.start()] + source[m.end():]


def _unbalanced_paren(source: str, rng: random.Random) -> str | None:
    positions = [m.start() for m in re.finditer(r"\)", source)]
    if len(positions) < 2:
        return None
    pos = rng.choice(positions)
    return source[:pos] + source[pos + 1:]


# -- logic faults -----------------------------------------------------------------


def _swap_plus_minus(source: str, rng: random.Random) -> str | None:
    # Only touch '+'/'-' used as binary arithmetic inside expressions.
    out = _swap_once(source, r"(?<=[\w\]\)]) \+ (?=[\w\(\{])", " - ", rng)
    if out is not None:
        return out
    return _swap_once(source, r"(?<=[\w\]\)]) - (?=[\w\(\{])", " + ", rng)


def _flip_comparison(source: str, rng: random.Random) -> str | None:
    candidates = [(r"<=", ">="), (r">=", "<="), (r"(?<![<>=!])<(?!=)", ">"),
                  (r"(?<![<>=!])>(?!=)", "<")]
    rng.shuffle(candidates)
    for pattern, repl in candidates:
        # Avoid flipping non-blocking assignments (lhs <= rhs;) — approximate
        # by skipping matches that follow an identifier at line start.
        matches = [m for m in re.finditer(pattern, source)
                   if "if" in source[max(0, m.start() - 40):m.start()]
                   or "?" in source[m.end():m.end() + 20]]
        if matches:
            m = rng.choice(matches)
            return source[:m.start()] + repl + source[m.end():]
    return None


def _off_by_one(source: str, rng: random.Random) -> str | None:
    matches = [m for m in re.finditer(r"\b(\d+)\b", source)
               if m.group(1) not in ("0",) and len(m.group(1)) <= 3]
    if not matches:
        return None
    m = rng.choice(matches)
    value = int(m.group(1))
    new = value + rng.choice([-1, 1])
    if new < 0:
        new = value + 1
    return source[:m.start()] + str(new) + source[m.end():]


def _invert_condition(source: str, rng: random.Random) -> str | None:
    matches = list(re.finditer(r"if \((\w+)\)", source))
    if not matches:
        return None
    m = rng.choice(matches)
    return source[:m.start()] + f"if (!{m.group(1)})" + source[m.end():]


def _wrong_reset_value(source: str, rng: random.Random) -> str | None:
    matches = list(re.finditer(r"<= 0\b", source))
    if not matches:
        return None
    m = rng.choice(matches)
    return source[:m.start()] + "<= 1" + source[m.end():]


def _and_to_or(source: str, rng: random.Random) -> str | None:
    out = _swap_once(source, r"&(?!&)", "|", rng)
    if out is not None:
        return out
    return _swap_once(source, r"\^", "&", rng)


def _blocking_in_ff(source: str, rng: random.Random) -> str | None:
    """Replace one non-blocking assign with blocking inside a clocked block."""
    matches = list(re.finditer(r"(\w+) <= ", source))
    if not matches:
        return None
    m = rng.choice(matches)
    return source[:m.start()] + f"{m.group(1)} = " + source[m.end():]


def _shrink_width(source: str, rng: random.Random) -> str | None:
    matches = list(re.finditer(r"\[(\d+):0\]", source))
    if not matches:
        return None
    m = rng.choice(matches)
    msb = int(m.group(1))
    if msb < 2:
        return None
    return source[:m.start()] + f"[{msb - 1}:0]" + source[m.end():]


def _drop_case_default(source: str, rng: random.Random) -> str | None:
    m = re.search(r"\n\s*default\s*:[^\n]*\n", source)
    if m is None:
        return None
    return source[:m.start()] + "\n" + source[m.end():]


# -- interface faults ----------------------------------------------------------------


def _rename_port(source: str, rng: random.Random) -> str | None:
    m = re.search(r"(input|output)\s+(?:reg\s+|wire\s+)?(?:\[[^\]]*\]\s*)?(\w+)",
                  source)
    if m is None:
        return None
    name = m.group(2)
    return re.sub(rf"\b{name}\b", name + "_x", source)


def _swap_port_order(source: str, rng: random.Random) -> str | None:
    m = re.search(r"module\s+\w+\s*\(([^)]*)\)", source, flags=re.S)
    if m is None:
        return None
    parts = [p.strip() for p in m.group(1).split(",") if p.strip()]
    if len(parts) < 2:
        return None
    i = rng.randrange(len(parts) - 1)
    parts[i], parts[i + 1] = parts[i + 1], parts[i]
    return source[:m.start(1)] + ", ".join(parts) + source[m.end(1):]


SYNTAX_FAULTS: tuple[FaultSpec, ...] = (
    FaultSpec("drop_semicolon", "syntax", "missing semicolon", _drop_semicolon),
    FaultSpec("misspell_keyword", "syntax", "misspelled keyword", _misspell_keyword),
    FaultSpec("drop_end", "syntax", "missing 'end'", _drop_end),
    FaultSpec("unbalanced_paren", "syntax", "unbalanced parenthesis",
              _unbalanced_paren),
)

LOGIC_FAULTS: tuple[FaultSpec, ...] = (
    FaultSpec("swap_plus_minus", "logic", "wrong arithmetic operator",
              _swap_plus_minus),
    FaultSpec("flip_comparison", "logic", "flipped comparison", _flip_comparison),
    FaultSpec("off_by_one", "logic", "off-by-one constant", _off_by_one),
    FaultSpec("invert_condition", "logic", "inverted if condition",
              _invert_condition),
    FaultSpec("wrong_reset", "logic", "wrong reset value", _wrong_reset_value),
    FaultSpec("and_to_or", "logic", "wrong bitwise operator", _and_to_or),
    FaultSpec("blocking_in_ff", "logic", "blocking assign in clocked block",
              _blocking_in_ff),
    FaultSpec("shrink_width", "logic", "truncated vector width", _shrink_width),
    FaultSpec("drop_case_default", "logic", "missing case default",
              _drop_case_default),
)

INTERFACE_FAULTS: tuple[FaultSpec, ...] = (
    FaultSpec("rename_port", "interface", "port name mismatch", _rename_port),
    FaultSpec("swap_port_order", "interface", "port order changed",
              _swap_port_order),
)

ALL_FAULTS: tuple[FaultSpec, ...] = SYNTAX_FAULTS + LOGIC_FAULTS + INTERFACE_FAULTS

_BY_ID = {f.fault_id: f for f in ALL_FAULTS}


def fault_by_id(fault_id: str) -> FaultSpec:
    return _BY_ID[fault_id]


def faults_of_class(klass: str) -> tuple[FaultSpec, ...]:
    return tuple(f for f in ALL_FAULTS if f.klass == klass)
