"""Conversational sessions over a simulated model.

Chip-Chat (Section IV) drives hardware design through a dialogue; this module
provides the message-log abstraction those flows use, including token
accounting and a transcript suitable for inspection in examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import Generation, GenerationTask, SimulatedLLM
from .prompts import Prompt, PromptStrategy
from .tokenizer import count_tokens


@dataclass
class Message:
    role: str        # 'system' | 'user' | 'assistant' | 'tool'
    content: str

    @property
    def tokens(self) -> int:
        return count_tokens(self.content)


@dataclass
class ChatSession:
    """A message log bound to one simulated model."""

    llm: SimulatedLLM
    system: str = ""
    messages: list[Message] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.system:
            self.messages.append(Message("system", self.system))

    def add_user(self, content: str) -> None:
        self.messages.append(Message("user", content))

    def add_tool_output(self, content: str) -> None:
        self.messages.append(Message("tool", content))

    @property
    def transcript(self) -> str:
        return "\n".join(f"[{m.role}] {m.content}" for m in self.messages)

    @property
    def total_tokens(self) -> int:
        return sum(m.tokens for m in self.messages)

    def last_feedback(self) -> str:
        for message in reversed(self.messages):
            if message.role == "tool":
                return message.content
        return ""

    def ask_for_design(self, task: GenerationTask,
                       strategy: PromptStrategy = PromptStrategy.CONVERSATIONAL,
                       temperature: float = 0.7,
                       sample_index: int = 0) -> Generation:
        """Request a (new or refined) design inside the conversation."""
        self.add_user(task.spec)
        feedback = self.last_feedback()
        previous = self._last_generation()
        if previous is not None and feedback:
            generation = self.llm.refine(task, previous, feedback,
                                         temperature, sample_index)
        else:
            prompt = Prompt(spec=task.spec, strategy=strategy,
                            feedback=feedback, system=self.system)
            generation = self.llm.generate(task, prompt, temperature,
                                           sample_index)
        self.messages.append(Message("assistant", generation.text))
        self._generations.append(generation)
        return generation

    _generations: list[Generation] = field(default_factory=list)

    def _last_generation(self) -> Generation | None:
        return self._generations[-1] if self._generations else None
