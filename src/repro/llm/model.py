"""The simulated LLM: reference-perturbation code generation.

How the simulation works
------------------------
Each generation task carries a *reference solution* (the benchmark's golden
design).  A model "generates" code by copying the reference, applying
harmless style variation (so distinct samples differ textually, which the
self-consistency flows rely on), and injecting faults sampled from the
taxonomy in :mod:`repro.llm.faults`.  Fault counts depend on the model's
capability profile, the task complexity, the prompting strategy and the
sampling temperature — calibrated so the loop-level phenomena the paper
reports emerge (see DESIGN.md §4).

Refinement against tool feedback removes injected faults with probability
driven by ``feedback_comprehension`` (precise compile errors are easier than
vague simulation failures), reproducing AutoChip's observation that only the
strongest models profit from feedback.

The injected-fault ledger is carried on the :class:`Generation` object for
*experiment introspection only*; no flow logic reads it to make decisions —
flows see only the generated text and real tool output.
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass, field

from .faults import (ALL_FAULTS, INTERFACE_FAULTS, LOGIC_FAULTS,
                     SYNTAX_FAULTS, FaultSpec, fault_by_id)
from .profiles import ModelProfile
from .prompts import Prompt, PromptEffects, PromptStrategy, prompt_effects
from .registry import get_model
from .tokenizer import count_tokens


@dataclass(frozen=True)
class GenerationTask:
    """One code-generation task with a hidden golden solution."""

    task_id: str
    spec: str
    reference_source: str
    complexity: int = 2           # 1 (novice) .. 5 (realistic design)
    language: str = "verilog"
    open_ended: bool = False      # open-ended specs need spec comprehension

    def __post_init__(self) -> None:
        if not 1 <= self.complexity <= 5:
            raise ValueError(f"complexity must be in 1..5, got {self.complexity}")


@dataclass
class Generation:
    """One model output plus bookkeeping."""

    text: str
    faults: tuple[tuple[str, int], ...]   # (fault_id, fault_seed) ledger
    prompt_tokens: int
    completion_tokens: int
    style_seed: int
    misinterpreted: bool = False

    @property
    def fault_ids(self) -> tuple[str, ...]:
        return tuple(fid for fid, _ in self.faults)


@dataclass
class UsageStats:
    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    def record(self, prompt_tokens: int, completion_tokens: int,
               calls: int = 1) -> None:
        self.calls += calls
        self.prompt_tokens += prompt_tokens
        self.completion_tokens += completion_tokens

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


def _stable_seed(*parts: object) -> int:
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SimulatedLLM:
    """A deterministic, capability-profiled stand-in for a hosted LLM."""

    def __init__(self, model: str | ModelProfile, seed: int = 0):
        self.profile = get_model(model) if isinstance(model, str) else model
        self.seed = seed
        self.usage = UsageStats()

    # -- public API -----------------------------------------------------------

    def derive(self, seed: int) -> "SimulatedLLM":
        """A fresh client with the same profile but a new seed (the reseed
        hook the agent's re-open path and sweep loops use; also part of the
        :class:`repro.service.LLMClient` protocol)."""
        return SimulatedLLM(self.profile, seed=seed)

    def chat(self, system: str = ""):
        """Open a conversational session bound to this client."""
        from .chat import ChatSession
        return ChatSession(self, system=system)

    def generate(self, task: GenerationTask, prompt: Prompt | None = None,
                 temperature: float = 0.7, sample_index: int = 0) -> Generation:
        """Produce one candidate solution for ``task``."""
        prompt = prompt or Prompt(spec=task.spec)
        effects = prompt_effects(self.profile, prompt, task.complexity)
        rng = random.Random(_stable_seed(
            self.seed, self.profile.name, task.task_id, prompt.strategy.value,
            round(temperature, 3), sample_index, len(prompt.feedback)))

        complexity = max(1, min(5, task.complexity
                                + effects.effective_complexity_delta))
        misinterpreted = False
        if task.open_ended and rng.random() > self.profile.spec_comprehension:
            misinterpreted = True

        fault_plan = self._plan_faults(task, complexity, temperature, effects,
                                       misinterpreted, rng)
        style_seed = rng.getrandbits(32)
        text, fault_plan = self._materialize(task.reference_source, fault_plan,
                                             style_seed)

        prompt_tokens = count_tokens(prompt.render())
        completion_tokens = count_tokens(text)
        self.usage.record(prompt_tokens, completion_tokens,
                          calls=1 + effects.extra_calls)
        return Generation(text, tuple(fault_plan), prompt_tokens,
                          completion_tokens, style_seed, misinterpreted)

    def refine(self, task: GenerationTask, previous: Generation,
               feedback: str, temperature: float = 0.7,
               sample_index: int = 0) -> Generation:
        """Repair a previous candidate given tool feedback."""
        # The feedback text goes through the SHA-256 _stable_seed like every
        # other seed component: builtin str hashing is randomized per process
        # (PYTHONHASHSEED), so seeding from hash(feedback) made "deterministic"
        # repair loops differ across interpreter invocations.
        rng = random.Random(_stable_seed(
            self.seed, self.profile.name, task.task_id, "refine",
            previous.style_seed, round(temperature, 3), sample_index,
            feedback))

        compile_error = "COMPILE" in feedback.upper() \
            or "syntax" in feedback.lower()
        remaining: list[tuple[str, int]] = []
        for fault_id, fault_seed in previous.faults:
            spec = fault_by_id(fault_id)
            fixed = rng.random() < self._fix_probability(spec, compile_error,
                                                         feedback)
            if not fixed:
                remaining.append((fault_id, fault_seed))

        # Misinterpretation can be cured only by informative feedback and a
        # model that reads it.
        misinterpreted = previous.misinterpreted
        if misinterpreted and not compile_error and feedback:
            if rng.random() < self.profile.feedback_comprehension * 0.6:
                misinterpreted = False
                remaining = [f for f in remaining
                             if fault_by_id(f[0]).klass != "logic"] \
                    + [f for f in remaining
                       if fault_by_id(f[0]).klass == "logic"][:1]

        # Regression risk: a model that does not understand the tool
        # feedback thrashes — it rewrites working logic while "fixing" the
        # reported problem.  This is the mechanism behind the AutoChip
        # observation that only the strongest models profit from feedback.
        regression_p = min(0.5, (1.0 - self.profile.semantic_reliability)
                           * (1.0 - self.profile.feedback_comprehension)
                           * 0.8 * (0.5 + temperature / 2))
        if rng.random() < regression_p:
            new_fault = rng.choice(LOGIC_FAULTS)
            remaining.append((new_fault.fault_id, rng.getrandbits(32)))

        text, remaining = self._materialize(task.reference_source, remaining,
                                            previous.style_seed)
        prompt_tokens = count_tokens(task.spec) + count_tokens(feedback) \
            + previous.completion_tokens
        completion_tokens = count_tokens(text)
        self.usage.record(prompt_tokens, completion_tokens)
        return Generation(text, tuple(remaining), prompt_tokens,
                          completion_tokens, previous.style_seed,
                          misinterpreted)

    def generate_many(self, task: GenerationTask,
                      prompt: Prompt | None = None,
                      temperature: float = 0.7, *,
                      sample_indices=(0,)) -> "list[Generation]":
        """``k`` candidates, one per sample index — the deterministic
        sequential form of the :class:`repro.service.LLMClient` protocol's
        batched entry point.  Each candidate is keyed by the same
        ``(task, temperature, sample_index)`` tuple as a lone
        :meth:`generate` call, so batched and one-at-a-time sampling are
        byte-identical."""
        return [self.generate(task, prompt, temperature, sample_index=i)
                for i in sample_indices]

    def refine_many(self, task: GenerationTask, previous: Generation,
                    feedback: str, temperature: float = 0.7, *,
                    sample_indices=(0,)) -> "list[Generation]":
        """``k`` refinements of one candidate; sequential counterpart of
        :meth:`generate_many`."""
        return [self.refine(task, previous, feedback, temperature,
                            sample_index=i)
                for i in sample_indices]

    def apply_human_fix(self, task: GenerationTask,
                        previous: Generation) -> Generation:
        """Simulate precise human feedback: an experienced engineer points at
        one concrete defect and the model fixes exactly that (Chip-Chat's
        human-in-the-loop escalation).  Removes the first remaining fault;
        cures misinterpretation first when present."""
        remaining = list(previous.faults)
        misinterpreted = previous.misinterpreted
        if misinterpreted:
            misinterpreted = False
            logic = [f for f in remaining
                     if fault_by_id(f[0]).klass == "logic"]
            for fault in logic[1:]:
                remaining.remove(fault)
        elif remaining:
            remaining.pop(0)
        text, remaining = self._materialize(task.reference_source, remaining,
                                            previous.style_seed)
        prompt_tokens = previous.completion_tokens + 64
        completion_tokens = count_tokens(text)
        self.usage.record(prompt_tokens, completion_tokens)
        return Generation(text, tuple(remaining), prompt_tokens,
                          completion_tokens, previous.style_seed,
                          misinterpreted)

    # -- fault planning -----------------------------------------------------------

    def _plan_faults(self, task: GenerationTask, complexity: int,
                     temperature: float, effects: PromptEffects,
                     misinterpreted: bool,
                     rng: random.Random) -> list[tuple[str, int]]:
        profile = self.profile
        domain = profile.verilog_strength if task.language == "verilog" \
            else profile.c_strength
        complexity_factor = 1.0 + 0.65 * (complexity - 1)
        temp_factor = 1.0 + profile.generation_diversity \
            * effects.diversity_factor * max(0.0, temperature - 0.4)

        syntax_rate = ((1.0 - profile.syntax_reliability)
                       * complexity_factor * temp_factor
                       * effects.syntax_factor * (1.4 - 0.5 * domain))
        logic_rate = ((1.0 - profile.semantic_reliability)
                      * complexity_factor * temp_factor
                      * effects.semantic_factor * (1.6 - 0.8 * domain))
        interface_rate = 0.4 * syntax_rate

        if misinterpreted:
            logic_rate = min(3.0, logic_rate + 1.5)

        plan: list[tuple[str, int]] = []
        plan.extend(self._draw(SYNTAX_FAULTS, syntax_rate, 2, rng))
        plan.extend(self._draw(LOGIC_FAULTS, logic_rate, 3, rng))
        plan.extend(self._draw(INTERFACE_FAULTS, interface_rate, 1, rng))
        return plan

    @staticmethod
    def _draw(pool: tuple[FaultSpec, ...], rate: float, max_count: int,
              rng: random.Random) -> list[tuple[str, int]]:
        out: list[tuple[str, int]] = []
        remaining = rate
        for _ in range(max_count):
            p = min(0.95, remaining)
            if p <= 0 or rng.random() >= p:
                break
            spec = rng.choice(pool)
            out.append((spec.fault_id, rng.getrandbits(32)))
            remaining -= 1.0
        return out

    def _fix_probability(self, spec: FaultSpec, compile_error: bool,
                         feedback: str) -> float:
        fc = self.profile.feedback_comprehension
        if spec.klass == "syntax":
            # Compile errors point at the line; even weak models often fix them.
            return 0.45 + 0.5 * fc if compile_error else 0.25 + 0.4 * fc
        if spec.klass == "interface":
            return 0.35 + 0.5 * fc
        # Logic faults: feedback is vague pass/fail text.  Exploiting it
        # requires both locating the defect and deriving the fix, so the
        # success probability is superlinear in comprehension — the reason
        # "only the most capable models leverage EDA tool feedback".
        # Exception: cross-level divergence reports (Section VI's high-level
        # guided debugging) localize the defect to concrete inputs and
        # expected values, which removes the localization burden.
        if "cross-check" in feedback:
            return min(0.95, 0.35 + 0.6 * fc)
        informative = "FAIL" in feedback or "expected" in feedback.lower()
        return fc * fc * (0.95 if informative else 0.6)

    # -- text materialization -------------------------------------------------------

    def _materialize(self, reference: str, faults: list[tuple[str, int]],
                     style_seed: int) -> tuple[str, list[tuple[str, int]]]:
        """Apply faults to a styled copy of the reference.

        Faults whose pattern does not occur in the text are dropped from the
        ledger so the ledger always reflects actual damage.
        """
        text = self._style_variation(reference, style_seed)
        applied: list[tuple[str, int]] = []
        for fault_id, fault_seed in faults:
            spec = fault_by_id(fault_id)
            mutated = spec.apply(text, random.Random(fault_seed))
            if mutated is not None and mutated != text:
                text = mutated
                applied.append((fault_id, fault_seed))
        return text, applied

    def _style_variation(self, source: str, style_seed: int) -> str:
        """Behaviour-preserving textual variation between samples."""
        rng = random.Random(style_seed)
        text = source
        # Rename internal (non-port) wires/regs.
        ports: set[str] = set()
        for m in re.finditer(r"(?:input|output)\s+(?:reg\s+|wire\s+)?"
                             r"(?:\[[^\]]*\]\s*)?(\w+)", text):
            ports.add(m.group(1))
        internals: list[str] = []
        for m in re.finditer(r"^\s*(?:wire|reg)\s+(?:\[[^\]]*\]\s*)?(\w+)",
                             text, flags=re.M):
            name = m.group(1)
            if name not in ports and name not in internals:
                internals.append(name)
        suffixes = ["_r", "_w", "_sig", "_v", "_q", "_int"]
        for name in internals:
            if rng.random() < 0.5:
                new = name + rng.choice(suffixes)
                text = re.sub(rf"\b{name}\b", new, text)
        if rng.random() < 0.6:
            comment = rng.choice([
                "// generated implementation",
                "// candidate solution",
                "// synthesized from specification",
                "// datapath logic",
            ])
            text = comment + "\n" + text
        return text


def make_llm(model: str, seed: int = 0) -> SimulatedLLM:
    """Convenience constructor mirroring a hosted-API client factory."""
    return SimulatedLLM(model, seed=seed)
