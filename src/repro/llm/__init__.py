"""``repro.llm`` — the simulated large-language-model substrate.

Substitutes for the hosted LLMs the paper's case studies use (GPT-3.5/4/4o,
Code Llama 34B, finetuned Verilog models).  See DESIGN.md §1 for why a
capability-profiled stochastic generator preserves the loop-level behaviour
the experiments measure.
"""

from .chat import ChatSession, Message
from .docqa import (Answer, DocQa, EVAL_QUESTIONS, answer_faithfulness,
                    retrieval_accuracy)
from .faults import (ALL_FAULTS, FaultSpec, fault_by_id, faults_of_class,
                     INTERFACE_FAULTS, LOGIC_FAULTS, SYNTAX_FAULTS)
from .model import (Generation, GenerationTask, SimulatedLLM, UsageStats,
                    make_llm)
from .profiles import ModelProfile
from .prompts import Prompt, PromptEffects, PromptStrategy, prompt_effects
from .rag import Document, Retrieval, VectorIndex, build_template_index
from .registry import (AUTOCHIP_EVAL_MODELS, get_model, list_models,
                       models_by_family)
from .tokenizer import (count_tokens, jaccard_similarity,
                        normalized_levenshtein, ngrams, token_levenshtein,
                        tokenize_text)

__all__ = [
    "ALL_FAULTS", "AUTOCHIP_EVAL_MODELS", "Answer", "ChatSession",
    "DocQa", "Document", "EVAL_QUESTIONS", "answer_faithfulness",
    "retrieval_accuracy",
    "FaultSpec", "Generation", "GenerationTask", "INTERFACE_FAULTS",
    "LOGIC_FAULTS", "Message", "ModelProfile", "Prompt", "PromptEffects",
    "PromptStrategy", "Retrieval", "SYNTAX_FAULTS", "SimulatedLLM",
    "UsageStats", "VectorIndex", "build_template_index", "count_tokens",
    "fault_by_id", "faults_of_class", "get_model", "jaccard_similarity",
    "list_models", "make_llm", "models_by_family", "ngrams",
    "normalized_levenshtein", "prompt_effects", "token_levenshtein",
    "tokenize_text",
]
