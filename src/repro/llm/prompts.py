"""Prompting strategies and their effect on generation quality.

Covers the strategies the paper surveys:

* **DIRECT** — single-shot instruction.
* **COT** — chain-of-thought ("think step by step"), a mild semantic boost.
* **SCOT** — structured chain-of-thought (Section V): first generate
  pseudocode, then code from the pseudocode.  Larger semantic boost and a
  diversity damping (output follows the pseudocode skeleton).
* **HIERARCHICAL** — decompose a complex design into submodules (Section IV,
  CL-Verilog): reduces the *effective complexity* a model faces, at the cost
  of extra calls.
* **CONVERSATIONAL** — Chip-Chat style: iterative dialogue with a human or
  automated feedback; modelled as repeated DIRECT calls with feedback.

The multipliers returned by :func:`prompt_effects` feed the fault injector:
they scale the per-unit fault probabilities derived from the model profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .profiles import ModelProfile


class PromptStrategy(Enum):
    DIRECT = "direct"
    COT = "cot"
    SCOT = "scot"
    HIERARCHICAL = "hierarchical"
    CONVERSATIONAL = "conversational"


@dataclass
class Prompt:
    """One generation request to a simulated model."""

    spec: str
    strategy: PromptStrategy = PromptStrategy.DIRECT
    examples: tuple[str, ...] = ()
    context_docs: tuple[str, ...] = ()   # RAG-retrieved passages
    feedback: str = ""                   # tool output from the previous attempt
    system: str = ""
    metadata: dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable prompt text (also used for token accounting)."""
        parts: list[str] = []
        if self.system:
            parts.append(f"[SYSTEM]\n{self.system}")
        for i, doc in enumerate(self.context_docs):
            parts.append(f"[CONTEXT {i + 1}]\n{doc}")
        for i, example in enumerate(self.examples):
            parts.append(f"[EXAMPLE {i + 1}]\n{example}")
        strategy_header = {
            PromptStrategy.DIRECT: "",
            PromptStrategy.COT: "Think step by step before writing code.\n",
            PromptStrategy.SCOT: ("First write structured pseudocode with "
                                  "explicit control flow, then translate it to "
                                  "code. The pseudocode may contain errors — "
                                  "check it.\n"),
            PromptStrategy.HIERARCHICAL: ("Decompose the design into smaller "
                                          "submodules and build bottom-up.\n"),
            PromptStrategy.CONVERSATIONAL: "",
        }[self.strategy]
        parts.append(f"[TASK]\n{strategy_header}{self.spec}")
        if self.feedback:
            parts.append(f"[TOOL FEEDBACK]\n{self.feedback}")
        return "\n\n".join(parts)


@dataclass(frozen=True)
class PromptEffects:
    """Multipliers applied to the base fault probabilities (1.0 = neutral;
    below 1.0 reduces faults)."""

    syntax_factor: float
    semantic_factor: float
    effective_complexity_delta: int
    diversity_factor: float
    extra_calls: int  # additional model invocations the strategy costs


def prompt_effects(profile: ModelProfile, prompt: Prompt,
                   task_complexity: int) -> PromptEffects:
    """How a prompt changes this model's fault behaviour on this task."""
    follow = profile.instruction_following
    syntax = 1.0
    semantic = 1.0
    complexity_delta = 0
    diversity = 1.0
    extra_calls = 0

    if prompt.strategy is PromptStrategy.COT:
        semantic *= 1.0 - 0.15 * follow
    elif prompt.strategy is PromptStrategy.SCOT:
        semantic *= 1.0 - 0.30 * follow
        syntax *= 1.0 - 0.10 * follow
        diversity *= 0.8
        extra_calls = 1  # pseudocode pass
    elif prompt.strategy is PromptStrategy.HIERARCHICAL:
        # Decomposition only helps genuinely complex tasks and only if the
        # model follows the decomposition structure: each submodule is a
        # smaller problem (complexity delta) and its interfaces constrain
        # the logic (semantic factor).
        if task_complexity >= 3:
            complexity_delta = -3 if follow > 0.6 else -1
            semantic *= 1.0 - 0.25 * follow
        extra_calls = max(1, task_complexity - 1)

    usable_examples = min(len(prompt.examples), profile.context_items)
    semantic *= 1.0 - 0.04 * usable_examples
    syntax *= 1.0 - 0.02 * usable_examples

    usable_docs = min(len(prompt.context_docs), profile.context_items)
    semantic *= 1.0 - 0.05 * usable_docs

    return PromptEffects(
        syntax_factor=max(0.1, syntax),
        semantic_factor=max(0.1, semantic),
        effective_complexity_delta=complexity_delta,
        diversity_factor=diversity,
        extra_calls=extra_calls,
    )
