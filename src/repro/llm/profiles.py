"""Capability profiles for the simulated LLMs.

The paper's experiments compare *classes* of models — finetuned
autocompletion models (DAVE, VeriGen, RTLCoder), general conversational
models (ChatGPT-3.5/4/4o) and domain-finetuned instruct models (CL-Verilog,
the finetuned Code Llama used for SLT).  What the experiments measure is not
raw model quality but how capability interacts with the surrounding loop:
feedback iterations, candidate sampling, prompting strategy, RAG.

A :class:`ModelProfile` encodes exactly the capability axes those loops are
sensitive to.  All values are probabilities/weights consumed by the fault
injector and repair machinery in ``repro.llm.model``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Capability description of one (simulated) model.

    Attributes
    ----------
    syntax_reliability:
        Probability that one generated code unit carries no syntax fault.
    semantic_reliability:
        Probability that one generated code unit carries no logic fault.
    feedback_comprehension:
        Probability that, given tool feedback naming a failure, the model
        repairs the *right* fault.  The paper observes only the strongest
        models exploit EDA tool error messages (AutoChip, Section IV).
    spec_comprehension:
        Probability of correctly interpreting an open-ended natural-language
        spec (low for autocompletion-style models like DAVE).
    instruction_following:
        How well the model sticks to requested output structure
        (conversational/instruct models score high).
    generation_diversity:
        How strongly temperature increases output variance.
    verilog_strength:
        Domain prior for Verilog (finetuning lifts this).
    c_strength:
        Domain prior for C (matters for the SLT case study).
    realworld_code_prior:
        Tendency to generate code resembling real-world software — the SLT
        section argues LLM snippets, unlike GP output, look like end-user
        code.
    context_items:
        How many few-shot examples the model can actually exploit.
    params_b:
        Parameter count in billions (for cost/size comparisons).
    """

    name: str
    family: str
    params_b: float
    instruct: bool
    syntax_reliability: float
    semantic_reliability: float
    feedback_comprehension: float
    spec_comprehension: float
    instruction_following: float
    generation_diversity: float
    verilog_strength: float
    c_strength: float
    realworld_code_prior: float
    context_items: int
    release_year: int

    def __post_init__(self) -> None:
        for field_name in ("syntax_reliability", "semantic_reliability",
                           "feedback_comprehension", "spec_comprehension",
                           "instruction_following", "generation_diversity",
                           "verilog_strength", "c_strength",
                           "realworld_code_prior"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name}={value} outside [0, 1] "
                                 f"for model '{self.name}'")
        if self.params_b <= 0:
            raise ValueError(f"params_b must be positive for '{self.name}'")

    @property
    def is_conversational(self) -> bool:
        return self.instruct

    def effective_verilog_quality(self) -> float:
        """Aggregate single-shot Verilog quality (used for quick ranking)."""
        return (0.3 * self.syntax_reliability
                + 0.4 * self.semantic_reliability
                + 0.3 * self.verilog_strength)

    def scaled(self, **overrides: float) -> "ModelProfile":
        """A copy with some capability fields replaced (for ablations)."""
        import dataclasses
        return dataclasses.replace(self, **overrides)
