"""Command-line launcher for registered flows.

Examples::

    python -m repro.flows --list
    python -m repro.flows vrank --model chatgpt-3.5 --seed 1
    python -m repro.flows autochip --problems c2_gray,c2_absdiff --jobs 4
    python -m repro.flows vrank --store .repro-store --resume
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict, is_dataclass
from typing import Any

from ..bench.problems import all_problems, get_problem
from ..cli import (CliError, activate_store, add_seed_argument,
                   add_store_arguments, build_parser, fail)
from ..engine import Budget
from ..store import CampaignJournal
from .registry import RunRequest, get_flow, list_flows


def _summarize(result: Any) -> Any:
    if isinstance(result, list):
        return [_summarize(item) for item in result]
    if is_dataclass(result) and not isinstance(result, type):
        summary = getattr(result, "summary", None)
        if callable(summary):
            return summary()
        return asdict(result)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        prog="python -m repro.flows",
        description="List or launch the registered paper flows.")
    parser.add_argument("flow", nargs="?",
                        help="flow name (see --list)")
    parser.add_argument("--list", action="store_true", dest="list_flows",
                        help="list registered flows and exit")
    parser.add_argument("--model", default="gpt-4",
                        help="model profile name (default: gpt-4)")
    add_seed_argument(parser)
    parser.add_argument("--jobs", default=None,
                        help="worker count or 'auto' (default: REPRO_JOBS)")
    parser.add_argument("--problems", default=None,
                        help="comma-separated problem ids "
                             "(default: every benchmark problem)")
    parser.add_argument("--tasks", default=None,
                        help="comma-separated task ids for the 'agent' "
                             "task suite (default: every task)")
    parser.add_argument("--budget-tokens", type=int, default=None,
                        help="per-run token ceiling (engine Budget)")
    parser.add_argument("--budget-evals", type=int, default=None,
                        help="per-run tool-evaluation ceiling")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="per-run wall-clock deadline in seconds")
    add_store_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_flows or args.flow is None:
        for spec in list_flows():
            model_note = "" if spec.uses_model else "  [no model]"
            print(f"{spec.name:14s} {spec.summary}{model_note}")
        return 0

    try:
        spec = get_flow(args.flow)
    except KeyError as exc:
        return fail(exc.args[0])

    if args.problems:
        try:
            problems = [get_problem(pid.strip())
                        for pid in args.problems.split(",") if pid.strip()]
        except KeyError as exc:
            return fail(exc.args[0])
    else:
        problems = all_problems()

    tasks: tuple = ()
    if args.tasks:
        from ..tasks import get_task
        try:
            tasks = tuple(get_task(tid.strip()).task_id
                          for tid in args.tasks.split(",") if tid.strip())
        except KeyError as exc:
            return fail(exc.args[0])

    budget = None
    if (args.budget_tokens is not None or args.budget_evals is not None
            or args.deadline_s is not None):
        try:
            budget = Budget(max_tokens=args.budget_tokens,
                            max_evals=args.budget_evals,
                            deadline_s=args.deadline_s)
        except ValueError as exc:
            return fail(f"invalid budget: {exc}")

    try:
        store = activate_store(args)
    except CliError as exc:
        return fail(str(exc))

    request = RunRequest(problems=problems, model=args.model,
                         seed=args.seed, jobs=args.jobs, budget=budget,
                         tasks=tasks)
    if store is not None:
        journal = CampaignJournal(
            store, ("flow", spec.name) + request.fingerprint_parts(),
            resume=args.resume)
        request = RunRequest(problems=problems, model=args.model,
                             seed=args.seed, jobs=args.jobs, budget=budget,
                             store=journal, tasks=tasks)
    try:
        result = spec.launch(request)
    except ValueError as exc:
        return fail(str(exc))
    print(json.dumps(_summarize(result), indent=2, default=str))
    return 0


if __name__ == "__main__":
    sys.exit(main())
