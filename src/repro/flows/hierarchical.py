"""Hierarchical prompting (Section IV, [3] — "Rome was Not Built in a
Single Step" / CL-Verilog).

Complex designs are decomposed into submodules that are generated
independently, then composed.  In the simulation this is the HIERARCHICAL
prompting strategy — it reduces the *effective complexity* each generation
faces (see :func:`repro.llm.prompts.prompt_effects`) at the cost of extra
model calls — plus a composition step that can itself fail for models with
weak instruction following.

The hierarchical-vs-direct comparison runs as a one-round
:class:`repro.engine.RefinementEngine`: both arms are independent samples,
so a brokered client puts them in flight together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.harness import evaluate_candidate, make_task
from ..bench.problems import Problem
from ..engine import (Budget, GenerationBatch, RefinementEngine, RoundState,
                      RunRecord, Selection, rank_by_score)
from ..llm.model import SimulatedLLM
from ..llm.prompts import Prompt, PromptStrategy
from ..service import LLMClient, resolve_client


@dataclass
class HierarchicalResult:
    problem_id: str
    model: str
    success: bool
    direct_success: bool         # same model, single-shot baseline
    submodule_calls: int = field(default=0, kw_only=True)
    total_tokens: int = field(default=0, kw_only=True)

    @property
    def lift(self) -> int:
        return int(self.success) - int(self.direct_success)


def run_hierarchical(problem: Problem,
                     model: str | SimulatedLLM | LLMClient = "cl-verilog-34b",
                     temperature: float = 0.7, *, seed: int = 0,
                     budget: Budget | None = None) -> HierarchicalResult:
    """Hierarchical vs direct generation on one problem."""
    llm = resolve_client(model, seed=seed)
    task = make_task(problem)
    tokens_before = llm.usage.total_tokens
    record = RunRecord(flow="hierarchical", problem_id=problem.problem_id,
                       model=llm.profile.name)

    def candidates(state: RoundState) -> list:
        batch = GenerationBatch(llm)
        batch.generate(task, Prompt(spec=problem.spec,
                                    strategy=PromptStrategy.HIERARCHICAL),
                       temperature, sample_index=0)
        batch.generate(task, Prompt(spec=problem.spec,
                                    strategy=PromptStrategy.DIRECT),
                       temperature, sample_index=1)
        return batch.gather()

    def evaluate(state: RoundState, cands: list) -> list:
        return [evaluate_candidate(problem, g.text) for g in cands]

    # The verdicts are positional (arm 0 = hierarchical, arm 1 = direct),
    # so capture them before the selector's score ranking reorders.
    verdicts: dict = {"hier": False, "direct": False}

    def select(state: RoundState, cands: list, outcomes: list) -> Selection:
        verdicts["hier"] = outcomes[0].passed
        verdicts["direct"] = outcomes[1].passed
        return rank_by_score(cands, outcomes, lambda tb: float(tb.passed))

    from ..critic import resolve_critic
    critic = resolve_critic("hierarchical", seed=seed)
    # Annotate-only (critic_filter=False): the selector compares the
    # hierarchical and direct arms positionally, so candidates must
    # never be dropped — verdicts are still recorded on the run record.
    RefinementEngine(candidates=candidates, evaluate=evaluate,
                     select=select, record=record, budget=budget,
                     max_rounds=1, span_name="hierarchical.round",
                     critic=critic.engine_hook() if critic else None,
                     critic_filter=False).run()

    record.charge_tokens(llm.usage.total_tokens - tokens_before)
    result = HierarchicalResult(
        problem.problem_id, llm.profile.name,
        verdicts["hier"], verdicts["direct"],
        submodule_calls=max(1, problem.complexity - 1),
        total_tokens=record.total_tokens)
    result.run_record = record
    return result


@dataclass
class HierarchicalSweep:
    results: list[HierarchicalResult] = field(default_factory=list)

    def rate(self, hierarchical: bool) -> float:
        if not self.results:
            return 0.0
        key = (lambda r: r.success) if hierarchical \
            else (lambda r: r.direct_success)
        return sum(key(r) for r in self.results) / len(self.results)

    @property
    def mean_lift(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.lift for r in self.results) / len(self.results)


def hierarchical_sweep(problems: list[Problem],
                       model: str | SimulatedLLM | LLMClient
                       = "cl-verilog-34b", *,
                       seeds: tuple[int, ...] = (0, 1, 2, 3),
                       jobs: int | str | None = None) -> HierarchicalSweep:
    """Hierarchical-vs-direct grid; scheduled for plain profile names."""
    cells = [(problem, model, seed)
             for seed in seeds for problem in problems]
    if isinstance(model, str):
        from ..exec import SweepScheduler, hierarchical_task
        return HierarchicalSweep(
            SweepScheduler(jobs).map(hierarchical_task, cells))
    sweep = HierarchicalSweep()
    for problem, _, seed in cells:
        sweep.results.append(run_hierarchical(problem, model, seed=seed))
    return sweep
