"""Hierarchical prompting (Section IV, [3] — "Rome was Not Built in a
Single Step" / CL-Verilog).

Complex designs are decomposed into submodules that are generated
independently, then composed.  In the simulation this is the HIERARCHICAL
prompting strategy — it reduces the *effective complexity* each generation
faces (see :func:`repro.llm.prompts.prompt_effects`) at the cost of extra
model calls — plus a composition step that can itself fail for models with
weak instruction following.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.harness import evaluate_candidate, make_task
from ..bench.problems import Problem
from ..llm.model import SimulatedLLM
from ..llm.prompts import Prompt, PromptStrategy
from ..service import LLMClient, resolve_client


@dataclass
class HierarchicalResult:
    problem_id: str
    model: str
    success: bool
    direct_success: bool         # same model, single-shot baseline
    submodule_calls: int
    total_tokens: int

    @property
    def lift(self) -> int:
        return int(self.success) - int(self.direct_success)


def run_hierarchical(problem: Problem,
                     model: str | SimulatedLLM | LLMClient = "cl-verilog-34b",
                     temperature: float = 0.7, *,
                     seed: int = 0) -> HierarchicalResult:
    """Hierarchical vs direct generation on one problem."""
    llm = resolve_client(model, seed=seed)
    task = make_task(problem)
    tokens_before = llm.usage.total_tokens

    hier_prompt = Prompt(spec=problem.spec,
                         strategy=PromptStrategy.HIERARCHICAL)
    hier_gen = llm.generate(task, hier_prompt, temperature, sample_index=0)
    hier_ok = evaluate_candidate(problem, hier_gen.text).passed
    submodule_calls = max(1, problem.complexity - 1)

    direct_prompt = Prompt(spec=problem.spec, strategy=PromptStrategy.DIRECT)
    direct_gen = llm.generate(task, direct_prompt, temperature,
                              sample_index=1)
    direct_ok = evaluate_candidate(problem, direct_gen.text).passed

    return HierarchicalResult(problem.problem_id, llm.profile.name, hier_ok,
                              direct_ok, submodule_calls,
                              llm.usage.total_tokens - tokens_before)


@dataclass
class HierarchicalSweep:
    results: list[HierarchicalResult] = field(default_factory=list)

    def rate(self, hierarchical: bool) -> float:
        if not self.results:
            return 0.0
        key = (lambda r: r.success) if hierarchical \
            else (lambda r: r.direct_success)
        return sum(key(r) for r in self.results) / len(self.results)

    @property
    def mean_lift(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.lift for r in self.results) / len(self.results)


def hierarchical_sweep(problems: list[Problem],
                       model: str | SimulatedLLM | LLMClient
                       = "cl-verilog-34b", *,
                       seeds: tuple[int, ...] = (0, 1, 2, 3),
                       jobs: int | str | None = None) -> HierarchicalSweep:
    """Hierarchical-vs-direct grid; fans out for plain profile names."""
    cells = [(problem, model, seed)
             for seed in seeds for problem in problems]
    if isinstance(model, str):
        from ..exec import ParallelEvaluator, hierarchical_task
        return HierarchicalSweep(
            ParallelEvaluator(jobs).map(hierarchical_task, cells))
    sweep = HierarchicalSweep()
    for problem, _, seed in cells:
        sweep.results.append(run_hierarchical(problem, model, seed=seed))
    return sweep
