"""The structured feedback-driven design flow of Section IV ([10]).

The strict conversational protocol: ask the model for a design, then for a
testbench, then simulate and feed compiler/simulator output back to the
model.  Human feedback is given only when the model fails to fix a mistake
after several automated attempts.  The escalation loop runs on the
:class:`repro.engine.LoopKernel` (it has one candidate and an irregular
body, so it plugs a step closure into the bare kernel rather than the
candidate engine).

The paper's findings this flow reproduces (experiment E5):

* about half of GPT-4-class runs need no human feedback at all, weaker
  models need it much more often, and
* the generated testbenches lack acceptable coverage — designs that pass
  the model's own testbench can still fail the golden sign-off bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.harness import evaluate_candidate, make_task
from ..bench.problems import Problem
from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..llm.model import SimulatedLLM
from ..llm.prompts import Prompt, PromptStrategy
from ..service import LLMClient, resolve_client
from .autobench import check_design, generate_testbench


@dataclass
class StructuredFlowResult:
    problem_id: str
    model: str
    success: bool                  # passes the golden sign-off testbench
    own_tb_passed: bool            # passed the model's own testbench
    coverage_gap: bool             # own TB passed but golden TB failed
    tool_iterations: int = field(default=0, kw_only=True)
    human_interventions: int = field(default=0, kw_only=True)
    generated_tb_checks: int = field(default=0, kw_only=True)

    @property
    def no_human_needed(self) -> bool:
        return self.success and self.human_interventions == 0

    def summary(self) -> str:
        status = "PASS" if self.success else "FAIL"
        return (f"{self.problem_id} [{self.model}]: {status} "
                f"iters={self.tool_iterations} "
                f"human={self.human_interventions} "
                f"coverage_gap={self.coverage_gap}")


def _human_fix_testbench(tb):
    """The human engineer corrects wrong expected values in the generated
    testbench (corrupted expectations carry a recognizable wrong value)."""
    import dataclasses
    fixed = [{port: value.removesuffix("_wrong")
              for port, value in row.items()}
             for row in tb.expectations]
    return dataclasses.replace(tb, expectations=fixed, corrupted_count=0)


class StructuredFeedbackFlow:
    """Design + testbench generation with tool feedback and human escalation."""

    def __init__(self, llm: "SimulatedLLM | LLMClient",
                 max_tool_iterations: int = 4,
                 human_budget: int = 3, temperature: float = 0.7):
        self.llm = llm
        self.max_tool_iterations = max_tool_iterations
        self.human_budget = human_budget
        self.temperature = temperature

    def run(self, problem: Problem, seed: int = 0,
            budget: Budget | None = None) -> StructuredFlowResult:
        task = make_task(problem)
        prompt = Prompt(spec=problem.spec,
                        strategy=PromptStrategy.CONVERSATIONAL)
        tokens_before = self.llm.usage.total_tokens
        record = RunRecord(flow="structured", problem_id=problem.problem_id,
                           model=self.llm.profile.name)
        from ..critic import resolve_critic
        critic = resolve_critic("structured", seed=seed)
        st = {
            "generation": self.llm.generate(task, prompt, self.temperature,
                                            sample_index=seed),
            "own_tb": generate_testbench(problem, self.llm, seed=seed),
            "tool_iterations": 0,
            "human_interventions": 0,
            "stuck_count": 0,
            "last_failures": -1,
        }
        record.generations += 1

        def step(state: RoundState, sp) -> str | None:
            verdict = check_design(st["own_tb"], st["generation"].text,
                                   problem.module_name)
            record.tool_evaluations += 1
            if verdict.passed:
                return "passed"
            if st["tool_iterations"] >= self.max_tool_iterations \
                    and st["human_interventions"] >= self.human_budget:
                return "exhausted"
            failures = verdict.failures if verdict.simulated else 999
            if failures == st["last_failures"]:
                st["stuck_count"] += 1
            else:
                st["stuck_count"] = 0
            st["last_failures"] = failures

            needs_human = (st["stuck_count"] >= 2
                           or st["tool_iterations"]
                           >= self.max_tool_iterations)
            if needs_human \
                    and st["human_interventions"] < self.human_budget:
                st["human_interventions"] += 1
                st["stuck_count"] = 0
                # The human reads both the design and the testbench, so they
                # can tell which one is wrong (ground truth is fair game for
                # the human oracle, unlike for the model).
                generation = st["generation"]
                if generation.faults or generation.misinterpreted:
                    st["generation"] = self.llm.apply_human_fix(task,
                                                                generation)
                    record.generations += 1
                else:
                    st["own_tb"] = _human_fix_testbench(st["own_tb"])
                return None
            if st["tool_iterations"] >= self.max_tool_iterations:
                return "tool-budget"
            st["tool_iterations"] += 1
            if not verdict.simulated:
                feedback = "COMPILE ERROR: candidate failed to elaborate"
            else:
                feedback = (f"simulation: {verdict.failures} of "
                            f"{verdict.checks} checks FAIL")
            if critic is not None:
                cv = critic.review([st["generation"].text],
                                   problem.module_name)[0]
                record.critic_reviews += 1
                if not cv.ok:
                    record.critic_rejections += 1
                    record.critic_verdicts.append(
                        {"round": state.round_no,
                         "verdicts": [cv.summary()]})
                    feedback += "\n" + cv.feedback()
            st["generation"] = self.llm.refine(task, st["generation"],
                                               feedback, self.temperature,
                                               sample_index=st[
                                                   "tool_iterations"])
            record.generations += 1
            return None

        LoopKernel(step=step, record=record, budget=budget,
                   span_name="structured.iteration").run()

        generation = st["generation"]
        own_passed = check_design(st["own_tb"], generation.text,
                                  problem.module_name).passed
        golden = evaluate_candidate(problem, generation.text)
        record.charge_tokens(self.llm.usage.total_tokens - tokens_before)
        result = StructuredFlowResult(
            problem_id=problem.problem_id,
            model=self.llm.profile.name,
            success=golden.passed,
            own_tb_passed=own_passed,
            coverage_gap=own_passed and not golden.passed,
            tool_iterations=st["tool_iterations"],
            human_interventions=st["human_interventions"],
            generated_tb_checks=st["own_tb"].n_checks,
        )
        result.run_record = record
        return result


@dataclass
class StructuredSweep:
    results: list[StructuredFlowResult] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.success for r in self.results) / len(self.results)

    @property
    def no_human_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.no_human_needed for r in self.results) / len(self.results)

    @property
    def coverage_gap_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.coverage_gap for r in self.results) / len(self.results)


def run_structured_sweep(model: str | SimulatedLLM | LLMClient,
                         problems: list[Problem], *,
                         seeds: tuple[int, ...] = (0, 1, 2),
                         jobs: int | str | None = None) -> StructuredSweep:
    """Run the structured flow over a problem/seed grid.

    Cells are independent, so with a plain profile name they go through the
    :class:`~repro.exec.SweepScheduler` (``REPRO_JOBS`` when ``jobs`` is
    unset); client instances are not picklable and run serially.  Result
    ordering is seed-major either way.
    """
    cells = [(problem, model, seed)
             for seed in seeds for problem in problems]
    if isinstance(model, str):
        from ..exec import SweepScheduler, structured_flow_task
        return StructuredSweep(
            SweepScheduler(jobs).map(structured_flow_task, cells))
    sweep = StructuredSweep()
    for problem, _, seed in cells:
        flow = StructuredFeedbackFlow(resolve_client(model, seed=seed))
        sweep.results.append(flow.run(problem, seed=seed))
    return sweep
