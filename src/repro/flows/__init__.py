"""``repro.flows`` — the LLM-for-EDA design frameworks the paper surveys.

* :mod:`repro.flows.chipchat` — conversational co-design with a human in
  the loop (Chip-Chat, Section IV).
* :mod:`repro.flows.structured` — the strict feedback-driven protocol with
  LLM-generated testbenches and human escalation ([10]).
* :mod:`repro.flows.autochip` — fully-automated tree-search generation
  (AutoChip, Fig. 4).
* :mod:`repro.flows.hierarchical` — hierarchical prompting / CL-Verilog.
* :mod:`repro.flows.autobench` — AutoBench/CorrectBench testbench
  generation with functional self-correction.
* :mod:`repro.flows.vrank` — VRank self-consistency candidate ranking.
* :mod:`repro.flows.assertgen` — AssertLLM/AutoSVA assertion generation
  and refinement.
"""

from .assertgen import (Assertion, AssertionReport, AssertionSweep,
                        assertion_quality, assertion_sweep,
                        generate_assertions, refine_assertions)
from .crosscheck import (CrossCheckReport, GuidedDebugResult,
                         GuidedDebugSweep, HighLevelModel, crosscheck,
                         generate_highlevel_model, guided_debug,
                         guided_debug_sweep, supports_crosscheck)
from .security import (CompromisedDesign, DetectionReport, TrojanSpec,
                       detect_with_cec, detect_with_random_cosim,
                       detect_with_testbench, detection_sweep, insert_trojan)
from .autobench import (AutoBenchSweep, GeneratedTestbench, TbQualityReport,
                        TbVerdict, autobench_sweep, check_design,
                        generate_testbench, testbench_quality)
from .autochip import (AutoChip, AutoChipConfig, AutoChipResult,
                       BudgetComparison, compare_budgets, run_autochip)
from .chipchat import (ChipChatResult, ChipChatSession, TapeoutReport,
                       run_chipchat_tapeout)
from .hierarchical import (HierarchicalResult, HierarchicalSweep,
                           hierarchical_sweep, run_hierarchical)
from .structured import (StructuredFeedbackFlow, StructuredFlowResult,
                         StructuredSweep, run_structured_sweep)
from .vrank import Cluster, VRankResult, VRankSweep, vrank, vrank_sweep
from .registry import FlowSpec, RunRequest, get_flow, list_flows, run_flow

__all__ = [
    "Assertion", "AssertionReport", "AssertionSweep", "AutoBenchSweep",
    "AutoChip", "AutoChipConfig", "FlowSpec",
    "CompromisedDesign", "CrossCheckReport", "DetectionReport",
    "GuidedDebugResult", "GuidedDebugSweep", "HighLevelModel", "TrojanSpec",
    "crosscheck",
    "detect_with_cec", "detect_with_random_cosim", "detect_with_testbench",
    "detection_sweep", "generate_highlevel_model", "guided_debug",
    "guided_debug_sweep", "insert_trojan", "supports_crosscheck",
    "AutoChipResult", "BudgetComparison", "ChipChatResult",
    "ChipChatSession", "Cluster", "GeneratedTestbench",
    "HierarchicalResult", "HierarchicalSweep", "StructuredFeedbackFlow",
    "StructuredFlowResult", "StructuredSweep", "TapeoutReport",
    "RunRequest", "TbQualityReport", "TbVerdict", "VRankResult",
    "VRankSweep",
    "assertion_quality", "assertion_sweep", "autobench_sweep",
    "check_design", "compare_budgets",
    "generate_assertions", "generate_testbench", "get_flow",
    "hierarchical_sweep", "list_flows",
    "refine_assertions", "run_autochip", "run_chipchat_tapeout", "run_flow",
    "run_hierarchical", "run_structured_sweep", "testbench_quality",
    "vrank", "vrank_sweep",
]
