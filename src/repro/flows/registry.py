"""Flow registry: one catalogue of every paper flow and how to launch it.

Each entry maps a stable flow name to its entry point, result type, and a
uniform runner adapter so tooling (the ``python -m repro.flows`` CLI, the
signature-conformance tests, sweep dashboards) can launch any flow without
knowing its module.  Entry points follow the unified signature contract:
``model`` accepts a profile name, a :class:`~repro.llm.model.SimulatedLLM`,
or any :class:`~repro.service.LLMClient`; ``seed``/``seeds`` and ``jobs``
are keyword-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..bench.problems import Problem
from ..engine import Budget
from .assertgen import AssertionSweep, assertion_sweep
from .autobench import AutoBenchSweep, autobench_sweep
from .autochip import AutoChipResult, run_autochip
from .chipchat import TapeoutReport, run_chipchat_tapeout
from .crosscheck import GuidedDebugSweep, guided_debug_sweep
from .hierarchical import HierarchicalSweep, hierarchical_sweep
from .security import detection_sweep
from .structured import StructuredSweep, run_structured_sweep
from .vrank import VRankSweep, vrank_sweep


@dataclass(frozen=True)
class FlowSpec:
    """One registered flow: where it lives and how to launch it."""

    name: str
    entry: Callable[..., Any]
    result_type: type
    summary: str
    uses_model: bool = True
    # Per-run Budget support: flows whose entry point threads a
    # :class:`repro.engine.Budget` through to the loop kernel.
    accepts_budget: bool = False
    # Uniform launcher: (problems, model, seed, jobs) -> result.  Adapts
    # per-flow signature quirks (single-problem flows, seed tuples, ...).
    runner: Callable[[list[Problem], str, int, "int | str | None"],
                     Any] | None = None

    def run(self, problems: list[Problem], model: str = "gpt-4", *,
            seed: int = 0, jobs: int | str | None = None,
            budget: Budget | None = None) -> Any:
        assert self.runner is not None
        if budget is not None:
            if not self.accepts_budget:
                raise ValueError(
                    f"flow {self.name!r} does not support --budget flags")
            return self.runner(problems, model, seed, jobs, budget)
        return self.runner(problems, model, seed, jobs)


_REGISTRY: dict[str, FlowSpec] = {}


def _register(spec: FlowSpec) -> None:
    _REGISTRY[spec.name] = spec


def get_flow(name: str) -> FlowSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown flow {name!r}; known flows: {known}") \
            from None


def list_flows() -> list[FlowSpec]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_flow(name: str, problems: list[Problem], model: str = "gpt-4", *,
             seed: int = 0, jobs: int | str | None = None,
             budget: Budget | None = None) -> Any:
    """Launch a registered flow through its uniform runner adapter."""
    return get_flow(name).run(problems, model, seed=seed, jobs=jobs,
                              budget=budget)


_register(FlowSpec(
    name="autochip",
    entry=run_autochip,
    result_type=AutoChipResult,
    summary="tree-search generation with tool-feedback rounds (Fig. 4)",
    accepts_budget=True,
    runner=lambda problems, model, seed, jobs, budget=None: [
        run_autochip(p, model, seed=seed, jobs=jobs, budget=budget)
        for p in problems],
))

_register(FlowSpec(
    name="structured",
    entry=run_structured_sweep,
    result_type=StructuredSweep,
    summary="feedback-driven protocol with human escalation ([10])",
    runner=lambda problems, model, seed, jobs: run_structured_sweep(
        model, problems, seeds=(seed,), jobs=jobs),
))

_register(FlowSpec(
    name="vrank",
    entry=vrank_sweep,
    result_type=VRankSweep,
    summary="self-consistency ranking of Verilog candidates",
    runner=lambda problems, model, seed, jobs: vrank_sweep(
        problems, model, seeds=(seed,), jobs=jobs),
))

_register(FlowSpec(
    name="chipchat",
    entry=run_chipchat_tapeout,
    result_type=TapeoutReport,
    summary="conversational co-design with a human in the loop",
    runner=lambda problems, model, seed, jobs: run_chipchat_tapeout(
        problems, model, seed=seed, jobs=jobs),
))

_register(FlowSpec(
    name="crosscheck",
    entry=guided_debug_sweep,
    result_type=GuidedDebugSweep,
    summary="high-level-model guided RTL debugging (Section VI)",
    runner=lambda problems, model, seed, jobs: guided_debug_sweep(
        problems, model, seeds=(seed,), jobs=jobs),
))

_register(FlowSpec(
    name="hierarchical",
    entry=hierarchical_sweep,
    result_type=HierarchicalSweep,
    summary="hierarchical decomposition vs direct generation",
    runner=lambda problems, model, seed, jobs: hierarchical_sweep(
        problems, model, seeds=(seed,), jobs=jobs),
))

_register(FlowSpec(
    name="assertgen",
    entry=assertion_sweep,
    result_type=AssertionSweep,
    summary="AssertLLM/AutoSVA assertion generation and refinement",
    runner=lambda problems, model, seed, jobs: assertion_sweep(
        problems, model, seeds=(seed,), jobs=jobs),
))

_register(FlowSpec(
    name="autobench",
    entry=autobench_sweep,
    result_type=AutoBenchSweep,
    summary="generated-testbench quality with self-correction",
    runner=lambda problems, model, seed, jobs: autobench_sweep(
        problems, model, seeds=(seed,), jobs=jobs),
))

_register(FlowSpec(
    name="security",
    entry=detection_sweep,
    result_type=dict,
    summary="hardware-trojan insertion and detector hierarchy",
    uses_model=False,
    runner=lambda problems, model, seed, jobs: detection_sweep(
        problems, seeds=(seed,), jobs=jobs),
))
