"""Flow registry: one catalogue of every paper flow and how to launch it.

Each entry maps a stable flow name to its entry point, result type, and a
uniform runner adapter so tooling (the ``python -m repro.flows`` CLI, the
signature-conformance tests, sweep dashboards) can launch any flow without
knowing its module.  Entry points follow the unified signature contract:
``model`` accepts a profile name, a :class:`~repro.llm.model.SimulatedLLM`,
or any :class:`~repro.service.LLMClient`; ``seed``/``seeds`` and ``jobs``
are keyword-only.

Launches are typed: a :class:`RunRequest` carries everything a runner
needs (problems, model, seed, jobs, budget, store journal) as keyword-only
fields, so adding a launch parameter no longer ripples through nine
positional lambdas — runners read the fields they understand and ignore
the rest.  ``FlowSpec.run`` keeps the ergonomic keyword signature and
builds the request; ``FlowSpec.launch`` takes a prebuilt request.  When
the request carries a ``store`` journal, the whole launch runs inside
:func:`repro.store.campaign_scope`, so every sweep the flow schedules
checkpoints its cells to the artifact store (and replays them on resume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..bench.problems import Problem
from ..engine import Budget
from ..store import CampaignJournal, campaign_scope
from .assertgen import AssertionSweep, assertion_sweep
from .autobench import AutoBenchSweep, autobench_sweep
from .autochip import AutoChipResult, run_autochip
from .chipchat import TapeoutReport, run_chipchat_tapeout
from .crosscheck import GuidedDebugSweep, guided_debug_sweep
from .hierarchical import HierarchicalSweep, hierarchical_sweep
from .security import detection_sweep
from ..tasks import TaskSuiteResult, run_task_suite
from .structured import StructuredSweep, run_structured_sweep
from .vrank import VRankSweep, vrank_sweep


@dataclass(frozen=True, kw_only=True)
class RunRequest:
    """One typed flow launch.

    Keyword-only by design: call sites name every field, so reordering or
    extending the request never silently shifts an argument.  ``model``
    follows the unified contract (profile name, ``SimulatedLLM``, or
    ``LLMClient``); ``budget`` only applies to flows whose spec declares
    ``accepts_budget``; ``store`` is an optional campaign journal that
    turns the launch into a checkpointed (and resumable) campaign.
    """

    problems: list[Problem]
    model: Any = "gpt-4"
    seed: int = 0
    jobs: int | str | None = None
    budget: Budget | None = None
    store: CampaignJournal | None = None
    # Task-suite flows (the planner agent) select scenarios by id rather
    # than by benchmark problem; empty means the whole suite.
    tasks: tuple[str, ...] = ()

    def fingerprint_parts(self) -> tuple:
        """The launch coordinates that determine results (jobs excluded:
        worker count never changes a deterministic sweep's output)."""
        return (tuple(p.problem_id for p in self.problems),
                str(self.model), self.seed, self.budget, self.tasks)


@dataclass(frozen=True)
class FlowSpec:
    """One registered flow: where it lives and how to launch it."""

    name: str
    entry: Callable[..., Any]
    result_type: type
    summary: str
    uses_model: bool = True
    # Per-run Budget support: flows whose entry point threads a
    # :class:`repro.engine.Budget` through to the loop kernel.
    accepts_budget: bool = False
    # Uniform launcher: adapts the typed request to per-flow signature
    # quirks (single-problem flows, seed tuples, ...).
    runner: Callable[[RunRequest], Any] | None = field(default=None)

    def launch(self, request: RunRequest) -> Any:
        """Run the flow for a prebuilt :class:`RunRequest`."""
        assert self.runner is not None
        if request.budget is not None and not self.accepts_budget:
            raise ValueError(
                f"flow {self.name!r} does not support --budget flags")
        with campaign_scope(request.store):
            return self.runner(request)

    def run(self, problems: list[Problem], model: Any = "gpt-4", *,
            seed: int = 0, jobs: int | str | None = None,
            budget: Budget | None = None,
            store: CampaignJournal | None = None) -> Any:
        """Keyword-friendly wrapper that builds the request."""
        return self.launch(RunRequest(
            problems=problems, model=model, seed=seed, jobs=jobs,
            budget=budget, store=store))


_REGISTRY: dict[str, FlowSpec] = {}


def _register(spec: FlowSpec) -> None:
    _REGISTRY[spec.name] = spec


def get_flow(name: str) -> FlowSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown flow {name!r}; known flows: {known}") \
            from None


def list_flows() -> list[FlowSpec]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_flow(name: str, problems: list[Problem], model: Any = "gpt-4", *,
             seed: int = 0, jobs: int | str | None = None,
             budget: Budget | None = None,
             store: CampaignJournal | None = None) -> Any:
    """Launch a registered flow through its uniform runner adapter."""
    return get_flow(name).run(problems, model, seed=seed, jobs=jobs,
                              budget=budget, store=store)


_register(FlowSpec(
    name="autochip",
    entry=run_autochip,
    result_type=AutoChipResult,
    summary="tree-search generation with tool-feedback rounds (Fig. 4)",
    accepts_budget=True,
    runner=lambda req: [
        run_autochip(p, req.model, seed=req.seed, jobs=req.jobs,
                     budget=req.budget)
        for p in req.problems],
))

_register(FlowSpec(
    name="structured",
    entry=run_structured_sweep,
    result_type=StructuredSweep,
    summary="feedback-driven protocol with human escalation ([10])",
    runner=lambda req: run_structured_sweep(
        req.model, req.problems, seeds=(req.seed,), jobs=req.jobs),
))

_register(FlowSpec(
    name="vrank",
    entry=vrank_sweep,
    result_type=VRankSweep,
    summary="self-consistency ranking of Verilog candidates",
    runner=lambda req: vrank_sweep(
        req.problems, req.model, seeds=(req.seed,), jobs=req.jobs),
))

_register(FlowSpec(
    name="chipchat",
    entry=run_chipchat_tapeout,
    result_type=TapeoutReport,
    summary="conversational co-design with a human in the loop",
    runner=lambda req: run_chipchat_tapeout(
        req.problems, req.model, seed=req.seed, jobs=req.jobs),
))

_register(FlowSpec(
    name="crosscheck",
    entry=guided_debug_sweep,
    result_type=GuidedDebugSweep,
    summary="high-level-model guided RTL debugging (Section VI)",
    runner=lambda req: guided_debug_sweep(
        req.problems, req.model, seeds=(req.seed,), jobs=req.jobs),
))

_register(FlowSpec(
    name="hierarchical",
    entry=hierarchical_sweep,
    result_type=HierarchicalSweep,
    summary="hierarchical decomposition vs direct generation",
    runner=lambda req: hierarchical_sweep(
        req.problems, req.model, seeds=(req.seed,), jobs=req.jobs),
))

_register(FlowSpec(
    name="assertgen",
    entry=assertion_sweep,
    result_type=AssertionSweep,
    summary="AssertLLM/AutoSVA assertion generation and refinement",
    runner=lambda req: assertion_sweep(
        req.problems, req.model, seeds=(req.seed,), jobs=req.jobs),
))

_register(FlowSpec(
    name="autobench",
    entry=autobench_sweep,
    result_type=AutoBenchSweep,
    summary="generated-testbench quality with self-correction",
    runner=lambda req: autobench_sweep(
        req.problems, req.model, seeds=(req.seed,), jobs=req.jobs),
))

_register(FlowSpec(
    name="agent",
    entry=run_task_suite,
    result_type=TaskSuiteResult,
    summary="planner agent task suite: plan/act/observe over the tool "
            "registry, scored pass@k",
    accepts_budget=True,
    runner=lambda req: run_task_suite(
        req.model, task_ids=req.tasks, seed=req.seed, budget=req.budget,
        jobs=req.jobs),
))

_register(FlowSpec(
    name="security",
    entry=detection_sweep,
    result_type=dict,
    summary="hardware-trojan insertion and detector hierarchy",
    uses_model=False,
    runner=lambda req: detection_sweep(
        req.problems, seeds=(req.seed,), jobs=req.jobs),
))
