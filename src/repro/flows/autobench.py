"""AutoBench / CorrectBench: LLM testbench generation with self-correction.

AutoBench (Section II) has the LLM build a hybrid test platform for an HDL
design; CorrectBench adds a functional *self-correction loop*.  The
simulated testbench is vector-based: the model proposes stimulus vectors and
expected outputs.  Two failure modes are modelled, matching the paper's
observations about generated-testbench quality:

* **coverage deficiency** — weak models propose few, poorly-spread vectors
  (the structured-flow study found "significant issues ... with the
  generated testbenches lacking acceptable test coverage");
* **wrong expectations** — the model's mental simulation of the spec is
  faulty, so a correct design can be rejected.

Self-correction re-derives every expectation independently and majority-
votes, which quadratically suppresses wrong expectations — the CorrectBench
lift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bench.harness import make_task
from ..bench.problems import Problem
from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..hdl import parse_module
from ..hdl.elaborate import eval_const
from ..hdl.testbench import exercise_module
from ..llm.model import SimulatedLLM, _stable_seed
from ..service import LLMClient, resolve_client


@dataclass
class GeneratedTestbench:
    problem_id: str
    model: str
    clk: str | None
    reset: str | None
    vectors: list[dict[str, int]] = field(default_factory=list)
    expectations: list[dict[str, str]] = field(default_factory=list)
    corrupted_count: int = 0          # ledger (introspection only)
    self_corrected: bool = False

    @property
    def n_checks(self) -> int:
        return len(self.vectors)


@dataclass
class TbVerdict:
    simulated: bool
    checks: int = 0
    failures: int = 0

    @property
    def passed(self) -> bool:
        return self.simulated and self.failures == 0 and self.checks > 0


def _interface(problem: Problem) -> tuple[dict[str, int], str | None, str | None]:
    module = parse_module(problem.reference, problem.module_name)
    widths: dict[str, int] = {}
    clk = None
    reset = None
    for port in module.ports:
        if port.direction != "input":
            continue
        width = 1 if port.rng is None else eval_const(port.rng.msb, {}) + 1
        if port.name in ("clk", "clock"):
            clk = port.name
            continue
        if port.name in ("rst", "reset", "rst_n"):
            reset = port.name
            continue
        widths[port.name] = width
    return widths, clk, reset


def generate_testbench(problem: Problem,
                       model: str | SimulatedLLM | LLMClient,
                       n_vectors: int | None = None, *, seed: int = 0,
                       self_correct: bool = False) -> GeneratedTestbench:
    """Simulate LLM testbench generation for one problem."""
    llm = resolve_client(model, seed=seed)
    profile = llm.profile
    rng = random.Random(_stable_seed(seed, profile.name, problem.problem_id,
                                     "autobench"))
    widths, clk, reset = _interface(problem)

    # Coverage: capable instruct models propose more and better-spread vectors.
    if n_vectors is None:
        base = 4 + round(10 * profile.instruction_following)
        n_vectors = max(3, base)
    narrow = profile.semantic_reliability < 0.7   # weak models use tiny values

    vectors: list[dict[str, int]] = []
    for _ in range(n_vectors):
        vec = {}
        for name, width in widths.items():
            if narrow and rng.random() < 0.6:
                vec[name] = rng.randrange(min(4, 1 << width))
            else:
                vec[name] = rng.getrandbits(width)
        vectors.append(vec)

    # Expected outputs: derived from the model's mental simulation of the
    # spec — approximated by the golden reference corrupted with probability
    # tied to semantic reliability.
    golden = exercise_module(problem.reference, problem.module_name, vectors,
                             clk=clk, reset=reset)
    assert golden is not None, "golden reference must simulate"
    p_err = (1.0 - profile.semantic_reliability) * 0.25

    def derive(attempt_seed: int) -> tuple[list[dict[str, str]], int]:
        derive_rng = random.Random(_stable_seed(seed, profile.name,
                                                problem.problem_id, "derive",
                                                attempt_seed))
        rows: list[dict[str, str]] = []
        corrupted = 0
        for row in golden:
            out: dict[str, str] = {}
            for port, value in row.items():
                if derive_rng.random() < p_err:
                    corrupted += 1
                    out[port] = value + "_wrong"
                else:
                    out[port] = value
            rows.append(out)
        return rows, corrupted

    expectations, corrupted = derive(0)
    self_corrected = False
    if self_correct:
        # Functional self-correction: re-derive twice more and majority-vote
        # each expectation.
        alt1, _ = derive(1)
        alt2, _ = derive(2)
        voted: list[dict[str, str]] = []
        corrupted = 0
        for row0, row1, row2 in zip(expectations, alt1, alt2):
            out: dict[str, str] = {}
            for port in row0:
                candidates = [row0[port], row1[port], row2[port]]
                winner = max(set(candidates), key=candidates.count)
                out[port] = winner
                if winner.endswith("_wrong"):
                    corrupted += 1
            voted.append(out)
        expectations = voted
        self_corrected = True

    return GeneratedTestbench(problem.problem_id, profile.name, clk, reset,
                              vectors, expectations, corrupted,
                              self_corrected)


def check_design(tb: GeneratedTestbench, source: str,
                 module_name: str) -> TbVerdict:
    """Run a candidate design against a generated testbench."""
    rows = exercise_module(source, module_name, tb.vectors, clk=tb.clk,
                           reset=tb.reset)
    if rows is None:
        return TbVerdict(simulated=False)
    verdict = TbVerdict(simulated=True)
    for actual, expected in zip(rows, tb.expectations):
        verdict.checks += 1
        for port, want in expected.items():
            if actual.get(port) != want:
                verdict.failures += 1
                break
    return verdict


@dataclass
class TbQualityReport:
    problem_id: str
    model: str
    self_corrected: bool
    false_reject: bool          # golden design fails the generated TB
    mutant_kill_rate: float     # fraction of faulty designs the TB rejects
    coverage_vs_golden: float   # checks relative to the problem's quality TB
    n_checks: int = field(default=0, kw_only=True)

    def summary(self) -> str:
        return (f"{self.problem_id} [{self.model}"
                f"{'+sc' if self.self_corrected else ''}]: "
                f"checks={self.n_checks} false_reject={self.false_reject} "
                f"kill={self.mutant_kill_rate:.0%}")


def testbench_quality(problem: Problem,
                      model: str | SimulatedLLM | LLMClient,
                      n_mutants: int = 6, *, seed: int = 0,
                      self_correct: bool = False,
                      budget: Budget | None = None) -> TbQualityReport:
    """Measure a generated testbench on the two axes that matter.

    The mutant-kill loop (sample faulty designs until ``n_mutants`` real
    mutants are scored) runs on the :class:`repro.engine.LoopKernel`.
    """
    llm = resolve_client(model, seed=seed)
    tb = generate_testbench(problem, llm, seed=seed, self_correct=self_correct)
    from ..critic import resolve_critic
    critic = resolve_critic("autobench", seed=seed)
    if critic is not None:
        # Screen expectation rows whose expected literals are malformed —
        # shape only, never the reference — before scoring the bench.
        tb, _dropped = critic.screen_testbench(tb)
    golden_verdict = check_design(tb, problem.reference, problem.module_name)
    false_reject = not golden_verdict.passed

    # Mutants: faulty candidate designs from a deliberately weak generator.
    task = make_task(problem)
    mutant_llm = SimulatedLLM("dave-gpt2", seed=seed + 99)
    record = RunRecord(flow="autobench.mutants",
                       problem_id=problem.problem_id, model=llm.profile.name)
    st = {"killed": 0, "produced": 0}

    def stop(state: RoundState) -> str | None:
        return "quota" if st["produced"] >= n_mutants else None

    def step(state: RoundState, sp) -> str | None:
        generation = mutant_llm.generate(task, temperature=1.1,
                                         sample_index=state.round_no - 1)
        record.generations += 1
        if not generation.faults:
            return None   # accidentally correct: not a mutant
        st["produced"] += 1
        verdict = check_design(tb, generation.text, problem.module_name)
        record.tool_evaluations += 1
        if not verdict.passed:
            st["killed"] += 1
        return None

    LoopKernel(step=step, stop=stop, record=record, budget=budget,
               max_rounds=n_mutants * 3, span_name="autobench.mutant").run()
    kill_rate = st["killed"] / st["produced"] if st["produced"] else 0.0

    from ..bench.harness import evaluate_candidate
    golden_tb = evaluate_candidate(problem, problem.reference)
    coverage = tb.n_checks / max(1, golden_tb.total_checks)
    result = TbQualityReport(problem.problem_id, llm.profile.name,
                             self_correct, false_reject, kill_rate,
                             min(2.0, coverage), n_checks=tb.n_checks)
    result.run_record = record
    return result


@dataclass
class AutoBenchSweep:
    results: list[TbQualityReport] = field(default_factory=list)

    @property
    def false_reject_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.false_reject for r in self.results) / len(self.results)

    @property
    def mean_kill_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.mutant_kill_rate
                   for r in self.results) / len(self.results)


def autobench_sweep(problems: list[Problem],
                    model: str | SimulatedLLM | LLMClient = "gpt-4", *,
                    self_correct: bool = False,
                    seeds: tuple[int, ...] = (0, 1, 2),
                    jobs: int | str | None = None) -> AutoBenchSweep:
    """Generated-testbench quality grid; fans out for plain profile names."""
    cells = [(problem, model, self_correct, seed)
             for seed in seeds for problem in problems]
    if isinstance(model, str):
        from ..exec import SweepScheduler, testbench_quality_task
        return AutoBenchSweep(
            SweepScheduler(jobs).map(testbench_quality_task, cells))
    sweep = AutoBenchSweep()
    for problem, _, self_corr, seed in cells:
        sweep.results.append(testbench_quality(problem, model, seed=seed,
                                               self_correct=self_corr))
    return sweep
