"""High-level guided RTL debugging (Section VI, "High-Level Guided RTL
Debugging").

The paper's proposal: LLMs are much more reliable at producing *untimed
behavioural models* (Python/C) than HDL, so generate a high-level reference
from the same natural-language spec and use cross-level comparison against
RTL simulation as the debugging oracle — "reliable high-level execution as a
reference to effectively compensate for error-prone HDL generation".

Implementation: the (simulated) LLM emits a mini-C behavioural model for a
benchmark problem with a reliability bonus over its HDL generation (the
paper's premise).  The cross-checker drives both the C model (interpreter)
and the RTL candidate (event-driven simulator) with shared stimulus and
produces *localized* feedback — which input vector diverged, expected vs
actual — which is far more informative than a bare FAIL line, so refinement
converges faster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bench.harness import evaluate_candidate, make_task
from ..bench.problems import Problem
from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..hdl.testbench import exercise_module
from ..hls.cparser import cparse
from ..hls.interp import CRuntimeError, Machine
from ..llm.model import Generation, SimulatedLLM, _stable_seed
from ..service import LLMClient, resolve_client
from .autobench import _interface

# Behavioural C models for the combinational benchmark problems.  In the
# real flow the LLM writes these; here they are the "reference semantics"
# the simulated LLM perturbs (far more rarely than it perturbs HDL).
_C_MODELS: dict[str, str] = {
    "c1_mux2": "int model(int a, int b, int sel) { return sel ? b : a; }",
    "c1_half_adder":
        "int model(int a, int b) { return ((a & b) << 1) | (a ^ b); }",
    "c1_and4": "int model(int x) { return (x & 15) == 15 ? 1 : 0; }",
    "c1_parity": """
int model(int d) {
    int p = 0;
    for (int i = 0; i < 8; i++) { p = p ^ ((d >> i) & 1); }
    return p;
}""",
    "c2_adder8": "int model(int a, int b, int cin) "
                 "{ return (a + b + cin) & 511; }",
    "c2_absdiff": "int model(int a, int b) { return a > b ? a - b : b - a; }",
    "c2_gray": "int model(int b) { return (b ^ (b >> 1)) & 15; }",
    "c2_comparator": """
int model(int a, int b) {
    int lt = a < b ? 1 : 0;
    int eq = a == b ? 1 : 0;
    int gt = a > b ? 1 : 0;
    return lt | (eq << 1) | (gt << 2);
}""",
    "c2_decoder": "int model(int sel, int en) "
                  "{ return en ? (1 << sel) & 255 : 0; }",
    "c3_alu": """
int model(int a, int b, int op) {
    if (op == 0) { return (a + b) & 255; }
    if (op == 1) { return (a - b) & 255; }
    if (op == 2) { return a & b; }
    return a ^ b;
}""",
    "c3_priority": """
int model(int req) {
    int grant = 0;
    for (int i = 0; i < 8; i++) {
        if ((req >> i) & 1) { grant = i; }
    }
    int valid = req != 0 ? 1 : 0;
    return grant | (valid << 3);
}""",
}

# How the RTL outputs pack into the C model's return value, per problem.
_PACKING: dict[str, list[tuple[str, int]]] = {
    "c1_mux2": [("y", 0)],
    "c1_half_adder": [("sum", 0), ("carry", 1)],
    "c1_and4": [("y", 0)],
    "c1_parity": [("p", 0)],
    "c2_adder8": [("sum", 0), ("cout", 8)],
    "c2_absdiff": [("y", 0)],
    "c2_gray": [("g", 0)],
    "c2_comparator": [("lt", 0), ("eq", 1), ("gt", 2)],
    "c2_decoder": [("y", 0)],
    "c3_alu": [("y", 0)],
    "c3_priority": [("grant", 0), ("valid", 3)],
}


def supports_crosscheck(problem: Problem) -> bool:
    return problem.problem_id in _C_MODELS and not problem.sequential


@dataclass
class HighLevelModel:
    problem_id: str
    c_source: str
    faithful: bool           # introspection: did the LLM derive it correctly?


def generate_highlevel_model(problem: Problem,
                             llm: "SimulatedLLM | LLMClient",
                             seed: int = 0) -> HighLevelModel:
    """The LLM writes an untimed C model from the spec.

    Per the paper's premise, high-level generation is much more reliable
    than HDL generation: the error channel is the model's spec
    comprehension, scaled down by 4x.
    """
    if not supports_crosscheck(problem):
        raise ValueError(f"no high-level model template for "
                         f"{problem.problem_id}")
    rng = random.Random(_stable_seed(seed, llm.profile.name,
                                     problem.problem_id, "hlmodel"))
    source = _C_MODELS[problem.problem_id]
    p_err = (1.0 - llm.profile.spec_comprehension) * 0.25
    faithful = True
    if rng.random() < p_err:
        faithful = False
        # A wrong mental model: flip one operator in the C text.
        for a, b in (("+", "-"), ("^", "&"), ("<", ">")):
            if a in source:
                source = source.replace(a, b, 1)
                break
    self_tokens = len(source.split())
    llm.usage.record(64, self_tokens)
    return HighLevelModel(problem.problem_id, source, faithful)


@dataclass
class CrossCheckReport:
    vectors: int = 0
    divergences: list[dict] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.vectors > 0 and not self.divergences

    def feedback(self, max_items: int = 3) -> str:
        """Localized, high-information feedback for the refinement loop.

        The leading "cross-check" marker is what the refinement channel keys
        on: divergence reports carry concrete inputs and expected values, so
        they are categorically easier to act on than aggregate FAIL counts.
        """
        if self.consistent:
            return "cross-check PASS: RTL matches the high-level model"
        lines = [f"cross-check: {len(self.divergences)} of {self.vectors} "
                 f"vectors diverge from the high-level model"]
        for div in self.divergences[:max_items]:
            lines.append(f"  inputs={div['inputs']} expected={div['expected']}"
                         f" rtl={div['actual']}")
        return "\n".join(lines)


def crosscheck(problem: Problem, rtl_source: str, model: HighLevelModel,
               vectors: int = 24, seed: int = 0) -> CrossCheckReport | None:
    """Drive the C model and the RTL with shared stimulus; None if the RTL
    does not simulate."""
    widths, clk, reset = _interface(problem)
    rng = random.Random(_stable_seed(seed, problem.problem_id, "xchk"))
    program = cparse(model.c_source)
    machine = Machine(program)
    packing = _PACKING[problem.problem_id]

    stimulus = []
    for _ in range(vectors):
        stimulus.append({name: rng.getrandbits(w)
                         for name, w in widths.items()})
    rows = exercise_module(rtl_source, problem.module_name, stimulus,
                           clk=clk, reset=reset)
    if rows is None:
        return None

    # The C model takes inputs in declared-port order.
    param_names = [p.name
                   for p in program.function("model").params]
    report = CrossCheckReport(vectors=len(stimulus))
    for vec, row in zip(stimulus, rows):
        try:
            expected = machine.call("model",
                                    *[vec.get(n, 0) for n in param_names])
        except CRuntimeError:
            continue
        packed_actual = 0
        unknown = False
        for port, shift in packing:
            text = row.get(port, "")
            if "x" in text.split("'")[-1]:
                unknown = True
                break
            value = int(text.split("'h")[-1], 16) if "'h" in text else 0
            packed_actual |= value << shift
        if unknown or packed_actual != (expected.value or 0):
            report.divergences.append({
                "inputs": vec,
                "expected": expected.value,
                "actual": "X" if unknown else packed_actual,
            })
    return report


@dataclass
class GuidedDebugResult:
    problem_id: str
    model: str
    success: bool
    model_faithful: bool
    used_crosscheck: bool
    iterations: int = field(default=0, kw_only=True)

    def summary(self) -> str:
        status = "PASS" if self.success else "FAIL"
        return (f"{self.problem_id} [{self.model}]: {status} in "
                f"{self.iterations} iteration(s) "
                f"({'cross-check' if self.used_crosscheck else 'plain'} "
                f"feedback)")


def guided_debug(problem: Problem, llm: "SimulatedLLM | LLMClient",
                 use_crosscheck: bool = True, max_iterations: int = 4,
                 temperature: float = 0.9, seed: int = 0,
                 budget: Budget | None = None) -> GuidedDebugResult:
    """Generate RTL, then debug it against the high-level model (or plain
    testbench feedback when ``use_crosscheck`` is off).  The repair loop
    runs on the :class:`repro.engine.LoopKernel`."""
    task = make_task(problem)
    tokens_before = llm.usage.total_tokens
    record = RunRecord(flow="crosscheck", problem_id=problem.problem_id,
                       model=llm.profile.name)
    st: dict = {"generation": llm.generate(task, temperature=temperature,
                                           sample_index=seed),
                "iterations": 0}
    record.generations += 1
    hl_model = generate_highlevel_model(problem, llm, seed=seed) \
        if use_crosscheck else None
    from ..critic import resolve_critic
    critic = resolve_critic("crosscheck", seed=seed)

    def step(state: RoundState, sp) -> str | None:
        generation: Generation = st["generation"]
        verdict = evaluate_candidate(problem, generation.text)
        record.tool_evaluations += 1
        if verdict.passed:
            return "passed"
        st["iterations"] += 1
        iteration = state.round_no - 1
        if use_crosscheck and hl_model is not None:
            xreport = crosscheck(problem, generation.text, hl_model,
                                 seed=seed + iteration)
            feedback = xreport.feedback() if xreport is not None \
                else verdict.feedback()
            # Localized divergences are informative feedback: append the
            # canonical markers the refinement channel keys on.
            if xreport is not None and xreport.divergences:
                feedback += "\nFAIL expected vs actual shown above"
        else:
            feedback = verdict.feedback()
        if critic is not None:
            cv = critic.review([generation.text], problem.module_name)[0]
            record.critic_reviews += 1
            if not cv.ok:
                record.critic_rejections += 1
                record.critic_verdicts.append(
                    {"round": state.round_no, "verdicts": [cv.summary()]})
                feedback += "\n" + cv.feedback()
        st["generation"] = llm.refine(task, generation, feedback,
                                      temperature, sample_index=iteration)
        record.generations += 1
        return None

    LoopKernel(step=step, record=record, budget=budget,
               max_rounds=max_iterations,
               span_name="crosscheck.iteration").run()

    final = evaluate_candidate(problem, st["generation"].text)
    record.tool_evaluations += 1
    record.charge_tokens(llm.usage.total_tokens - tokens_before)
    result = GuidedDebugResult(problem.problem_id, llm.profile.name,
                               final.passed,
                               hl_model.faithful if hl_model else True,
                               use_crosscheck,
                               iterations=st["iterations"])
    result.run_record = record
    return result


@dataclass
class GuidedDebugSweep:
    results: list[GuidedDebugResult] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.success for r in self.results) / len(self.results)


def guided_debug_sweep(problems: list[Problem],
                       model: str | SimulatedLLM | LLMClient = "gpt-4",
                       use_crosscheck: bool = True,
                       max_iterations: int = 4, temperature: float = 0.9, *,
                       seeds: tuple[int, ...] = (0, 1, 2),
                       jobs: int | str | None = None) -> GuidedDebugSweep:
    """Run :func:`guided_debug` over a problem/seed grid.

    Each cell is an independent generate-and-repair loop, so with a plain
    profile name the sweep fans out over ``jobs`` workers (``REPRO_JOBS``
    when unset); client instances are not picklable and run serially.
    Results keep the (seed-major) serial ordering either way.
    """
    payloads = [(problem, model, use_crosscheck, max_iterations,
                 temperature, seed)
                for seed in seeds for problem in problems
                if supports_crosscheck(problem) or not use_crosscheck]
    if isinstance(model, str):
        from ..exec import SweepScheduler, guided_debug_task
        return GuidedDebugSweep(
            SweepScheduler(jobs).map(guided_debug_task, payloads))
    sweep = GuidedDebugSweep()
    for problem, _, use_x, max_iters, temp, seed in payloads:
        sweep.results.append(guided_debug(
            problem, resolve_client(model, seed=seed), use_crosscheck=use_x,
            max_iterations=max_iters, temperature=temp, seed=seed))
    return sweep
