"""Chip-Chat: conversational hardware co-design (Section IV, [2]).

An experienced human designer drives a general conversational model through
a design dialogue: request, inspect, give targeted feedback, repeat.  The
human's feedback is *precise* (they read the code), so each intervention
fixes a concrete defect — the contrast with unattended flows is exactly the
paper's point that Chip-Chat "relied on an experienced hardware designer to
guide the development".  The dialogue loop runs on the
:class:`repro.engine.LoopKernel` (one candidate, a human in the loop).

Also provides the Tiny-Tapeout-style sign-off summary (the QTcore-A1
narrative: the first AI-written tapeout).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.harness import evaluate_candidate, make_task
from ..bench.problems import Problem
from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..llm.model import SimulatedLLM
from ..llm.prompts import PromptStrategy
from ..service import LLMClient, resolve_client


@dataclass
class ChipChatTurn:
    role: str            # 'designer' | 'model' | 'tool'
    content: str


@dataclass
class ChipChatResult:
    problem_id: str
    model: str
    success: bool
    final_source: str
    model_turns: int = field(default=0, kw_only=True)
    human_turns: int = field(default=0, kw_only=True)
    tool_runs: int = field(default=0, kw_only=True)
    transcript: list[ChipChatTurn] = field(default_factory=list)

    def summary(self) -> str:
        status = "shipped" if self.success else "abandoned"
        return (f"{self.problem_id} [{self.model}]: {status} after "
                f"{self.model_turns} model turns, {self.human_turns} human "
                f"feedback turns")


class ChipChatSession:
    """Human-guided conversational design of one module."""

    def __init__(self, llm: "SimulatedLLM | LLMClient",
                 max_model_turns: int = 8,
                 temperature: float = 0.7):
        self.llm = llm
        self.max_model_turns = max_model_turns
        self.temperature = temperature

    def run(self, problem: Problem,
            budget: Budget | None = None) -> ChipChatResult:
        task = make_task(problem)
        chat = self.llm.chat(system="You are collaborating with an "
                                    "experienced hardware designer on a "
                                    "tapeout.")
        transcript: list[ChipChatTurn] = []
        transcript.append(ChipChatTurn("designer", problem.spec))

        record = RunRecord(flow="chipchat", problem_id=problem.problem_id,
                           model=self.llm.profile.name)
        tokens_before = self.llm.usage.total_tokens
        st: dict = {"generation": None, "result_tb": None, "human_turns": 0}
        from ..critic import resolve_critic
        critic = resolve_critic("chipchat",
                                seed=getattr(self.llm, "seed", 0))

        def step(state: RoundState, sp) -> str | None:
            if st["generation"] is None:
                st["generation"] = chat.ask_for_design(
                    task, strategy=PromptStrategy.CONVERSATIONAL,
                    temperature=self.temperature,
                    sample_index=state.round_no - 1)
                record.generations += 1
            transcript.append(ChipChatTurn(
                "model", f"<design {len(st['generation'].text)}B>"))
            if critic is not None:
                # Only ever reached with REPRO_CRITIC=1, so the extra
                # transcript turn cannot disturb default-config fixtures.
                cv = critic.review([st["generation"].text],
                                   problem.module_name)[0]
                record.critic_reviews += 1
                if not cv.ok:
                    record.critic_rejections += 1
                    record.critic_verdicts.append(
                        {"round": state.round_no,
                         "verdicts": [cv.summary()]})
                    transcript.append(ChipChatTurn("critic", cv.feedback()))
            result_tb = evaluate_candidate(problem, st["generation"].text)
            st["result_tb"] = result_tb
            record.tool_evaluations += 1
            transcript.append(ChipChatTurn("tool", result_tb.feedback(4)))
            if result_tb.passed:
                return "passed"
            # The experienced designer reads the failure and the code, then
            # gives targeted feedback; the model applies the precise fix.
            st["human_turns"] += 1
            transcript.append(ChipChatTurn(
                "designer", "Here is exactly what is wrong — fix that line."))
            st["generation"] = self.llm.apply_human_fix(task,
                                                        st["generation"])
            record.generations += 1
            chat.add_tool_output(result_tb.feedback(4))
            return None

        LoopKernel(step=step, record=record, budget=budget,
                   max_rounds=self.max_model_turns,
                   span_name="chipchat.turn").run()

        result_tb = st["result_tb"]
        generation = st["generation"]
        record.charge_tokens(self.llm.usage.total_tokens - tokens_before)
        result = ChipChatResult(
            problem.problem_id, self.llm.profile.name,
            bool(result_tb and result_tb.passed),
            generation.text if generation else "",
            model_turns=record.rounds_used,
            human_turns=st["human_turns"],
            tool_runs=record.tool_evaluations,
            transcript=transcript)
        result.run_record = record
        return result


@dataclass
class TapeoutReport:
    """Aggregate of a Chip-Chat 'tapeout' over a design suite."""

    results: list[ChipChatResult] = field(default_factory=list)

    @property
    def shipped(self) -> int:
        return sum(r.success for r in self.results)

    @property
    def mean_human_turns(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.human_turns for r in self.results) / len(self.results)

    def summary(self) -> str:
        return (f"{self.shipped}/{len(self.results)} blocks shipped; "
                f"mean human feedback turns: {self.mean_human_turns:.1f}")


def run_chipchat_tapeout(problems: list[Problem],
                         model: str | SimulatedLLM | LLMClient = "gpt-4", *,
                         seed: int = 0,
                         jobs: int | str | None = None) -> TapeoutReport:
    """Drive every block of a small 'tapeout' through Chip-Chat.

    Blocks are independent (each gets a fresh chat session), so a plain
    profile name goes through the :class:`~repro.exec.SweepScheduler`;
    client instances are not picklable and run serially.  Ordering follows
    ``problems`` either way.
    """
    if isinstance(model, str):
        from ..exec import SweepScheduler, chipchat_task
        cells = [(problem, model, seed) for problem in problems]
        return TapeoutReport(SweepScheduler(jobs).map(chipchat_task, cells))
    llm = resolve_client(model, seed=seed)
    session = ChipChatSession(llm)
    report = TapeoutReport()
    for problem in problems:
        report.results.append(session.run(problem))
    return report
