"""AssertLLM / AutoSVA-style assertion generation (Section II).

AssertLLM extracts structure from the specification, maps signals, and emits
assertions; AutoSVA iteratively refines them against formal-verification
feedback.  Our assertions are executable checks over the mini-Verilog
simulator:

* **point assertions** — for a concrete stimulus, an output takes a concrete
  value (the workhorse of spec-mined properties);
* **reset assertions** — after reset, a sequential design's outputs hold
  their documented reset values.

Quality is measured the way the assertion literature does: *validity*
(assertion holds on the golden design) and *mutant kill rate* (how many
faulty designs at least one assertion rejects).  The AutoSVA-style
refinement loop removes assertions the (simulated) formal tool disproves,
driving validity to 1 at some cost in assertion count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bench.harness import make_task
from ..bench.problems import Problem
from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..hdl.testbench import exercise_module
from ..llm.model import SimulatedLLM, _stable_seed
from ..service import LLMClient, resolve_client
from .autobench import _interface


@dataclass(frozen=True)
class Assertion:
    kind: str                    # 'point' | 'reset'
    stimulus: tuple[tuple[str, int], ...]
    port: str
    expected: str
    description: str


def _holds(assertion: Assertion, source: str, module_name: str,
           clk: str | None, reset: str | None) -> bool | None:
    """Check one assertion; None when the design does not simulate."""
    if assertion.kind == "reset":
        vectors = [dict(assertion.stimulus)]
        rows = exercise_module(source, module_name, vectors, clk=clk,
                               reset=reset)
    else:
        rows = exercise_module(source, module_name,
                               [dict(assertion.stimulus)], clk=clk,
                               reset=reset)
    if rows is None:
        return None
    return rows[-1].get(assertion.port) == assertion.expected


def generate_assertions(problem: Problem,
                        model: str | SimulatedLLM | LLMClient,
                        n_assertions: int = 8, *,
                        seed: int = 0) -> list[Assertion]:
    """Mine assertions from the spec (simulated AssertLLM front-end)."""
    llm = resolve_client(model, seed=seed)
    profile = llm.profile
    rng = random.Random(_stable_seed(seed, profile.name, problem.problem_id,
                                     "assert"))
    widths, clk, reset = _interface(problem)
    assertions: list[Assertion] = []

    # Reset assertion for sequential designs.
    if reset is not None:
        zero_vec = {name: 0 for name in widths}
        rows = exercise_module(problem.reference, problem.module_name,
                               [zero_vec], clk=clk, reset=reset)
        if rows:
            for port, value in rows[-1].items():
                expected = value
                if rng.random() < (1 - profile.spec_comprehension) * 0.4:
                    expected = value + "_wrong"
                assertions.append(Assertion(
                    "reset", tuple(sorted(zero_vec.items())), port, expected,
                    f"after reset, {port} holds its documented value"))

    # Point assertions from the model's reading of the spec.
    p_err = (1.0 - profile.semantic_reliability) * 0.4
    while len(assertions) < n_assertions:
        vec = {name: rng.getrandbits(width) for name, width in widths.items()}
        rows = exercise_module(problem.reference, problem.module_name, [vec],
                               clk=clk, reset=reset)
        if not rows:
            break
        port = rng.choice(sorted(rows[-1]))
        expected = rows[-1][port]
        if rng.random() < p_err:
            expected = expected + "_wrong"
        assertions.append(Assertion(
            "point", tuple(sorted(vec.items())), port, expected,
            f"{port} matches the spec for stimulus {vec}"))
    return assertions


@dataclass
class AssertionReport:
    problem_id: str
    model: str
    mutant_kill_rate: float
    generated: int = field(default=0, kw_only=True)
    valid: int = field(default=0, kw_only=True)   # hold on the golden design
    refined: int = field(default=0, kw_only=True)  # surviving refinement
    refinement_rounds: int = field(default=0, kw_only=True)

    @property
    def validity(self) -> float:
        return self.valid / self.generated if self.generated else 0.0

    def summary(self) -> str:
        return (f"{self.problem_id} [{self.model}]: {self.generated} "
                f"generated, validity={self.validity:.0%}, "
                f"{self.refined} after refinement, "
                f"kill={self.mutant_kill_rate:.0%}")


def refine_assertions(assertions: list[Assertion], problem: Problem,
                      max_rounds: int = 3,
                      budget: Budget | None = None
                      ) -> tuple[list[Assertion], int]:
    """AutoSVA-style loop: drop assertions the formal tool disproves.

    Our 'formal tool' is exhaustive-enough simulation against the golden
    design — sound for the point/reset assertion classes used here.  The
    loop runs on the :class:`repro.engine.LoopKernel`.
    """
    widths, clk, reset = _interface(problem)
    record = RunRecord(flow="assertgen.refine",
                       problem_id=problem.problem_id)
    st = {"current": list(assertions)}

    def step(state: RoundState, sp) -> str | None:
        record.tool_evaluations += len(st["current"])
        failing = [a for a in st["current"]
                   if _holds(a, problem.reference, problem.module_name,
                             clk, reset) is not True]
        if not failing:
            return "converged"
        st["current"] = [a for a in st["current"] if a not in failing]
        return None

    LoopKernel(step=step, record=record, budget=budget,
               max_rounds=max_rounds, span_name="assertgen.round").run()
    return st["current"], record.rounds_used


def assertion_quality(problem: Problem,
                      model: str | SimulatedLLM | LLMClient,
                      n_assertions: int = 8, n_mutants: int = 5, *,
                      seed: int = 0) -> AssertionReport:
    llm = resolve_client(model, seed=seed)
    widths, clk, reset = _interface(problem)
    assertions = generate_assertions(problem, llm, n_assertions, seed=seed)
    from ..critic import resolve_critic
    critic = resolve_critic("assertgen", seed=seed)
    if critic is not None:
        # Drop structurally bad assertions (vacuous stimulus, malformed
        # expected literal) before spending simulator time on them; keep
        # the original set when the critic would reject everything.
        kept, _rejected = critic.screen_assertions(assertions)
        if kept:
            assertions = kept
    valid = sum(1 for a in assertions
                if _holds(a, problem.reference, problem.module_name,
                          clk, reset) is True)
    refined, rounds = refine_assertions(assertions, problem)

    # Mutant killing with the refined set.
    task = make_task(problem)
    mutant_llm = SimulatedLLM("dave-gpt2", seed=seed + 31)
    killed = 0
    produced = 0
    for i in range(n_mutants * 3):
        if produced >= n_mutants:
            break
        generation = mutant_llm.generate(task, temperature=1.1,
                                         sample_index=i)
        if not generation.faults:
            continue
        produced += 1
        for assertion in refined:
            outcome = _holds(assertion, generation.text, problem.module_name,
                             clk, reset)
            if outcome is not True:     # fails or does not simulate
                killed += 1
                break
    kill_rate = killed / produced if produced else 0.0
    return AssertionReport(problem.problem_id, llm.profile.name, kill_rate,
                           generated=len(assertions), valid=valid,
                           refined=len(refined), refinement_rounds=rounds)


@dataclass
class AssertionSweep:
    results: list[AssertionReport] = field(default_factory=list)

    @property
    def mean_validity(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.validity for r in self.results) / len(self.results)

    @property
    def mean_kill_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.mutant_kill_rate
                   for r in self.results) / len(self.results)


def assertion_sweep(problems: list[Problem],
                    model: str | SimulatedLLM | LLMClient = "gpt-4", *,
                    seeds: tuple[int, ...] = (0, 1, 2),
                    jobs: int | str | None = None) -> AssertionSweep:
    """Assertion-quality grid; fans out for plain profile names."""
    cells = [(problem, model, seed)
             for seed in seeds for problem in problems]
    if isinstance(model, str):
        from ..exec import SweepScheduler, assertion_quality_task
        return AssertionSweep(
            SweepScheduler(jobs).map(assertion_quality_task, cells))
    sweep = AssertionSweep()
    for problem, _, seed in cells:
        sweep.results.append(assertion_quality(problem, model, seed=seed))
    return sweep
