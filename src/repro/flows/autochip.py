"""AutoChip: fully-automated Verilog generation with tree search (Fig. 4).

Given a problem with a *quality testbench* (AutoChip's required input), each
round samples ``k`` candidate responses, evaluates every candidate with the
EDA tools, ranks them by fraction of passing test cases, and feeds the best
candidate's tool output back for the next round — up to tree depth ``d``.

The experiment the paper reports (E6 here): across four commercial-model
profiles, only the most capable one benefits more from feedback iterations
(depth) than from candidate sampling (breadth), because exploiting EDA error
messages requires high feedback comprehension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.harness import make_task
from ..bench.problems import Problem
from ..exec import ParallelEvaluator, evaluate_candidate_task
from ..hdl.testbench import TestbenchResult
from ..llm.model import Generation, GenerationTask, SimulatedLLM
from ..llm.prompts import Prompt, PromptStrategy
from ..obs import get_tracer
from ..service import LLMClient, resolve_client


@dataclass
class AutoChipConfig:
    k: int = 4                  # candidates per round
    depth: int = 3              # feedback iterations
    temperature: float = 0.8
    strategy: PromptStrategy = PromptStrategy.DIRECT


@dataclass
class RoundLog:
    round_no: int
    scores: list[float]
    best_score: float
    feedback_used: str


@dataclass
class AutoChipResult:
    problem_id: str
    model: str
    success: bool
    best_score: float
    best_source: str
    rounds_used: int
    generations: int
    tool_evaluations: int
    total_tokens: int
    rounds: list[RoundLog] = field(default_factory=list)

    def summary(self) -> str:
        status = "PASS" if self.success else "FAIL"
        return (f"{self.problem_id} [{self.model}]: {status} "
                f"score={self.best_score:.2f} rounds={self.rounds_used} "
                f"generations={self.generations}")


class AutoChip:
    """The tree-search generation loop.

    ``jobs`` fans each round's candidate evaluations (independent,
    CPU-bound testbench runs) over a worker pool; generation stays
    sequential on the client, so statistics match the serial loop.
    """

    def __init__(self, llm: "SimulatedLLM | LLMClient",
                 config: AutoChipConfig | None = None,
                 jobs: int | str | None = None):
        self.llm = llm
        self.config = config or AutoChipConfig()
        self.jobs = jobs

    def run(self, problem: Problem) -> AutoChipResult:
        cfg = self.config
        task = make_task(problem)
        prompt = Prompt(spec=problem.spec, strategy=cfg.strategy)
        tokens_before = self.llm.usage.total_tokens

        result = AutoChipResult(problem.problem_id, self.llm.profile.name,
                                False, 0.0, "", 0, 0, 0, 0)
        best_generation: Generation | None = None
        best_result: TestbenchResult | None = None
        best_score = -1.0
        feedback = ""

        tracer = get_tracer()
        for round_no in range(1, cfg.depth + 1):
            result.rounds_used = round_no
            with tracer.span("autochip.round", round_no=round_no,
                             k=cfg.k) as sp:
                candidates: list[Generation] = []
                for i in range(cfg.k):
                    if round_no == 1 or best_generation is None:
                        generation = self.llm.generate(
                            task, prompt, cfg.temperature,
                            sample_index=(round_no - 1) * cfg.k + i)
                    else:
                        generation = self.llm.refine(
                            task, best_generation, feedback, cfg.temperature,
                            sample_index=(round_no - 1) * cfg.k + i)
                    result.generations += 1
                    candidates.append(generation)
                evaluations = ParallelEvaluator(self.jobs).map(
                    evaluate_candidate_task,
                    [(problem, g.text, 200_000) for g in candidates])
                ranked: list[tuple[float, Generation, TestbenchResult]] = []
                for generation, tb in zip(candidates, evaluations):
                    result.tool_evaluations += 1
                    score = tb.score if tb.compiled else -0.5
                    ranked.append((score, generation, tb))
                ranked.sort(key=lambda item: -item[0])
                round_best_score, round_best_gen, round_best_tb = ranked[0]
                result.rounds.append(RoundLog(
                    round_no, [r[0] for r in ranked], round_best_score,
                    feedback[:80]))
                if round_best_score > best_score:
                    best_score = round_best_score
                    best_generation = round_best_gen
                    best_result = round_best_tb
                sp.set(best_score=round(round_best_score, 4),
                       best_faults=len(round_best_gen.faults),
                       round_fault_counts=[len(g.faults)
                                           for _, g, _ in ranked],
                       feedback_used=bool(feedback))
            assert best_result is not None
            if best_result.passed:
                break
            feedback = best_result.feedback()

        result.success = bool(best_result and best_result.passed)
        result.best_score = max(0.0, best_score)
        result.best_source = best_generation.text if best_generation else ""
        result.total_tokens = self.llm.usage.total_tokens - tokens_before
        return result


def run_autochip(problem: Problem,
                 model: str | SimulatedLLM | LLMClient = "gpt-4o", *,
                 k: int = 4, depth: int = 3, temperature: float = 0.8,
                 seed: int = 0,
                 jobs: int | str | None = None) -> AutoChipResult:
    """One-call AutoChip run (unified flow signature)."""
    llm = resolve_client(model, seed=seed)
    return AutoChip(llm, AutoChipConfig(k=k, depth=depth,
                                        temperature=temperature),
                    jobs=jobs).run(problem)


@dataclass
class BudgetComparison:
    """Breadth-vs-depth comparison at a matched generation budget."""

    model: str
    budget: int
    breadth_success: float      # k=budget, d=1
    depth_success: float        # k=1, d=budget
    feedback_gain: float        # depth - breadth

    def summary(self) -> str:
        return (f"{self.model}: breadth={self.breadth_success:.2f} "
                f"depth={self.depth_success:.2f} "
                f"gain={self.feedback_gain:+.2f}")


def compare_budgets(model: str | SimulatedLLM | LLMClient,
                    problems: list[Problem], budget: int = 6, *,
                    temperature: float = 0.8,
                    seeds: tuple[int, ...] = (0, 1, 2),
                    jobs: int | str | None = None) -> BudgetComparison:
    """Same total generations spent two ways: all breadth vs all depth."""
    def run_mode(k: int, depth: int) -> float:
        wins = 0
        total = 0
        for seed in seeds:
            llm = resolve_client(model, seed=seed)
            chip = AutoChip(llm, AutoChipConfig(k=k, depth=depth,
                                                temperature=temperature),
                            jobs=jobs)
            for problem in problems:
                outcome = chip.run(problem)
                wins += 1 if outcome.success else 0
                total += 1
        return wins / total if total else 0.0

    breadth = run_mode(k=budget, depth=1)
    depth = run_mode(k=1, depth=budget)
    name = model if isinstance(model, str) else model.profile.name
    return BudgetComparison(name, budget, breadth, depth, depth - breadth)
