"""AutoChip: fully-automated Verilog generation with tree search (Fig. 4).

Given a problem with a *quality testbench* (AutoChip's required input), each
round samples ``k`` candidate responses, evaluates every candidate with the
EDA tools, ranks them by fraction of passing test cases, and feeds the best
candidate's tool output back for the next round — up to tree depth ``d``.

The loop itself lives in :class:`repro.engine.RefinementEngine`; this module
only supplies the hooks (how to sample, score, rank and build feedback) and
the public result dataclass, a thin view over the engine's
:class:`~repro.engine.RunRecord`.

The experiment the paper reports (E6 here): across four commercial-model
profiles, only the most capable one benefits more from feedback iterations
(depth) than from candidate sampling (breadth), because exploiting EDA error
messages requires high feedback comprehension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.harness import make_task
from ..bench.problems import Problem
from ..engine import (Budget, GenerationBatch, RefinementEngine, RoundLog,
                      RoundState, RunRecord, Selection, rank_by_score)
from ..exec import (ParallelEvaluator, SweepScheduler, autochip_budget_task,
                    evaluate_candidate_task)
from ..hdl.testbench import TestbenchResult
from ..llm.model import Generation, SimulatedLLM
from ..llm.prompts import Prompt, PromptStrategy
from ..service import LLMClient, resolve_client

__all__ = ["AutoChip", "AutoChipConfig", "AutoChipResult", "BudgetComparison",
           "RoundLog", "compare_budgets", "run_autochip"]


@dataclass
class AutoChipConfig:
    k: int = 4                  # candidates per round
    depth: int = 3              # feedback iterations
    temperature: float = 0.8
    strategy: PromptStrategy = PromptStrategy.DIRECT


@dataclass
class AutoChipResult:
    problem_id: str
    model: str
    success: bool = False
    best_score: float = 0.0
    best_source: str = ""
    rounds_used: int = field(default=0, kw_only=True)
    generations: int = field(default=0, kw_only=True)
    tool_evaluations: int = field(default=0, kw_only=True)
    total_tokens: int = field(default=0, kw_only=True)
    rounds: list[RoundLog] = field(default_factory=list, kw_only=True)

    def summary(self) -> str:
        status = "PASS" if self.success else "FAIL"
        return (f"{self.problem_id} [{self.model}]: {status} "
                f"score={self.best_score:.2f} rounds={self.rounds_used} "
                f"generations={self.generations}")


class AutoChip:
    """The tree-search generation loop, hosted on the run engine.

    ``jobs`` fans each round's candidate evaluations (independent,
    CPU-bound testbench runs) over a worker pool; candidate generation
    goes through a :class:`~repro.engine.GenerationBatch`, so brokered
    clients put the whole round in flight at once while direct clients
    sample sequentially — statistics match the serial loop either way.
    """

    def __init__(self, llm: "SimulatedLLM | LLMClient",
                 config: AutoChipConfig | None = None,
                 jobs: int | str | None = None):
        self.llm = llm
        self.config = config or AutoChipConfig()
        self.jobs = jobs

    def run(self, problem: Problem,
            budget: Budget | None = None, *,
            initial_feedback: str = "") -> AutoChipResult:
        cfg = self.config
        task = make_task(problem)
        # ``initial_feedback`` threads prior tool findings (the agent's
        # lint warnings on re-open) into the very first generation prompt.
        prompt = Prompt(spec=problem.spec, strategy=cfg.strategy,
                        feedback=initial_feedback)
        tokens_before = self.llm.usage.total_tokens
        record = RunRecord(flow="autochip", problem_id=problem.problem_id,
                           model=self.llm.profile.name)
        # The run's winners, shared by the hooks and read back after the
        # engine finishes.
        best: dict = {"score": -1.0, "generation": None, "result": None}

        def candidates(state: RoundState) -> list[Generation]:
            batch = GenerationBatch(self.llm)
            base = (state.round_no - 1) * cfg.k
            for i in range(cfg.k):
                if state.round_no == 1 or best["generation"] is None:
                    batch.generate(task, prompt, cfg.temperature,
                                   sample_index=base + i)
                else:
                    batch.refine(task, best["generation"], state.feedback,
                                 cfg.temperature, sample_index=base + i)
            return batch.gather()

        def evaluate(state: RoundState,
                     cands: list[Generation]) -> list[TestbenchResult]:
            return ParallelEvaluator(self.jobs).map(
                evaluate_candidate_task,
                [(problem, g.text, 200_000) for g in cands])

        def select(state: RoundState, cands: list[Generation],
                   outcomes: list[TestbenchResult]) -> Selection:
            selection = rank_by_score(
                cands, outcomes,
                lambda tb: tb.score if tb.compiled else -0.5)
            if selection.best_score > best["score"]:
                best["score"] = selection.best_score
                best["generation"] = selection.best_candidate
                best["result"] = selection.best_outcome
            return selection

        def annotate(sp, state: RoundState, selection: Selection) -> None:
            sp.set(best_score=round(selection.best_score, 4),
                   best_faults=len(selection.best_candidate.faults),
                   round_fault_counts=[len(g.faults)
                                       for _, g, _ in selection.ranked],
                   feedback_used=bool(state.feedback))

        def stop_after(state: RoundState,
                       selection: Selection) -> str | None:
            return "passed" if best["result"].passed else None

        def next_feedback(state: RoundState, selection: Selection) -> str:
            return best["result"].feedback()

        from ..critic import resolve_critic
        critic = resolve_critic("autochip", seed=getattr(self.llm, "seed", 0))
        engine = RefinementEngine(
            candidates=candidates, evaluate=evaluate, select=select,
            annotate=annotate, stop_after=stop_after, feedback=next_feedback,
            budget=budget, record=record, max_rounds=cfg.depth,
            span_name="autochip.round",
            span_attrs=lambda state: {"round_no": state.round_no,
                                      "k": cfg.k},
            critic=critic.engine_hook() if critic else None)
        engine.run()

        best_tb: TestbenchResult | None = best["result"]
        record.charge_tokens(self.llm.usage.total_tokens - tokens_before)
        result = AutoChipResult(
            problem.problem_id, self.llm.profile.name,
            bool(best_tb and best_tb.passed),
            max(0.0, best["score"]),
            best["generation"].text if best["generation"] else "",
            rounds_used=record.rounds_used,
            generations=record.generations,
            tool_evaluations=record.tool_evaluations,
            total_tokens=record.total_tokens,
            rounds=record.rounds)
        result.run_record = record
        return result


def run_autochip(problem: Problem,
                 model: str | SimulatedLLM | LLMClient = "gpt-4o", *,
                 k: int = 4, depth: int = 3, temperature: float = 0.8,
                 seed: int = 0, jobs: int | str | None = None,
                 budget: Budget | None = None) -> AutoChipResult:
    """One-call AutoChip run (unified flow signature)."""
    llm = resolve_client(model, seed=seed)
    return AutoChip(llm, AutoChipConfig(k=k, depth=depth,
                                        temperature=temperature),
                    jobs=jobs).run(problem, budget=budget)


@dataclass
class BudgetComparison:
    """Breadth-vs-depth comparison at a matched generation budget."""

    model: str
    budget: int
    breadth_success: float      # k=budget, d=1
    depth_success: float        # k=1, d=budget
    feedback_gain: float        # depth - breadth

    def summary(self) -> str:
        return (f"{self.model}: breadth={self.breadth_success:.2f} "
                f"depth={self.depth_success:.2f} "
                f"gain={self.feedback_gain:+.2f}")


def compare_budgets(model: str | SimulatedLLM | LLMClient,
                    problems: list[Problem], budget: int = 6, *,
                    temperature: float = 0.8,
                    seeds: tuple[int, ...] = (0, 1, 2),
                    jobs: int | str | None = None) -> BudgetComparison:
    """Same total generations spent two ways: all breadth vs all depth.

    The ``seeds × problems`` grid goes through the
    :class:`~repro.exec.SweepScheduler`, so with ``jobs > 1`` whole cells
    run concurrently (pipelining generation against evaluation; under
    ``REPRO_SERVICE=1`` concurrent cells also coalesce broker batches).
    Cells are independent — a generation depends only on its
    ``(seed, model, task, sample)`` key and token counts are per-run
    deltas — so scheduled statistics are byte-identical to the serial
    loop.  A pre-built client instance cannot be shipped to workers and
    keeps the serial path.
    """
    def run_mode(k: int, depth: int) -> float:
        outcomes: list[AutoChipResult]
        if isinstance(model, str):
            cells = [(problem, model, k, depth, temperature, seed)
                     for seed in seeds for problem in problems]
            outcomes = SweepScheduler(jobs).map(autochip_budget_task, cells)
        else:
            outcomes = []
            for seed in seeds:
                llm = resolve_client(model, seed=seed)
                chip = AutoChip(llm, AutoChipConfig(k=k, depth=depth,
                                                    temperature=temperature),
                                jobs=jobs)
                outcomes.extend(chip.run(problem) for problem in problems)
        wins = sum(1 for outcome in outcomes if outcome.success)
        return wins / len(outcomes) if outcomes else 0.0

    breadth = run_mode(k=budget, depth=1)
    depth = run_mode(k=1, depth=budget)
    name = model if isinstance(model, str) else model.profile.name
    return BudgetComparison(name, budget, breadth, depth, depth - breadth)
