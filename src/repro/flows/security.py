"""Hardware-security evaluation for LLM-generated RTL (Section VI,
"Privacy and Security").

The paper warns that "malicious code or hardware Trojans may be inserted
into the generated hardware designs via the cloud platform" (RTL-Breaker's
threat model).  This module makes the threat and the defenses concrete:

* :func:`insert_trojan` — compromise a design with a classic combinational
  trojan: a rare-input trigger that corrupts one output bit.  The payload
  is syntactically valid and survives compilation, exactly why functional
  testing struggles to catch it.
* Detectors, in increasing strength:
  - ``testbench`` — the problem's sign-off bench (directed tests rarely hit
    a rare trigger);
  - ``random_cosim`` — random-vector comparison against a trusted reference
    (catch rate scales with vector budget vs trigger rarity);
  - ``exhaustive_cec`` — AIG equivalence checking against the reference
    (sound for small combinational designs: always catches a functional
    trojan).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from ..bench.harness import evaluate_candidate
from ..bench.problems import Problem
from ..hdl import parse_module
from ..hdl.testbench import exercise_module
from ..llm.model import _stable_seed
from ..synth import check_aigs, synthesize_module
from .autobench import _interface


@dataclass
class TrojanSpec:
    trigger_input: str
    trigger_value: int
    victim_output: str
    description: str


@dataclass
class CompromisedDesign:
    source: str
    trojan: TrojanSpec
    problem_id: str


def insert_trojan(problem: Problem, seed: int = 0) -> CompromisedDesign | None:
    """Insert a rare-trigger output-corruption trojan into the reference.

    Returns None for designs the simple insertion pattern cannot handle
    (sequential or port-shape mismatches).
    """
    if problem.sequential:
        return None
    rng = random.Random(_stable_seed(seed, problem.problem_id, "trojan"))
    widths, _, _ = _interface(problem)
    multi_bit = [(n, w) for n, w in widths.items() if w >= 4]
    if not multi_bit:
        return None
    trigger_input, width = rng.choice(sorted(multi_bit))
    trigger_value = rng.getrandbits(width)

    module = parse_module(problem.reference, problem.module_name)
    outputs = [p for p in module.ports if p.direction == "output"]
    if not outputs:
        return None
    victim = rng.choice(sorted(p.name for p in outputs))

    victim_port = next(p for p in outputs if p.name == victim)
    if victim_port.is_reg:
        return None  # keep the insertion pattern purely combinational

    # Redirect the victim's internal driver to a shadow net, then re-drive
    # the output port through the trigger mux (flip bit 0 on trigger).
    source = problem.reference
    shadow = f"{victim}_pre"
    source = re.sub(rf"\b{victim}\b", shadow, source)
    source = re.sub(rf"\b{shadow}\b(?=\s*[,)])", victim, source, count=1)

    if victim_port.rng is not None:
        from ..hdl.elaborate import eval_const
        msb = eval_const(victim_port.rng.msb, {})
        shadow_decl = f"  wire [{msb}:0] {shadow};"
        payload = f"({shadow} ^ 1)"
    else:
        shadow_decl = f"  wire {shadow};"
        payload = f"(~{shadow})"
    trigger = f"({trigger_input} == {width}'d{trigger_value})"
    trojan_logic = (f"{shadow_decl}\n"
                    f"  assign {victim} = {trigger} ? {payload} : {shadow};\n")
    source = source.replace("endmodule", trojan_logic + "endmodule", 1)

    spec = TrojanSpec(trigger_input, trigger_value, victim,
                      f"corrupts '{victim}' when {trigger_input}=="
                      f"{trigger_value}")
    return CompromisedDesign(source, spec, problem.problem_id)


@dataclass
class DetectionReport:
    problem_id: str
    detector: str
    detected: bool
    effort: int            # vectors simulated / checks run
    note: str = ""


def detect_with_testbench(problem: Problem,
                          design: CompromisedDesign) -> DetectionReport:
    """Directed sign-off tests: blind to rare triggers by construction."""
    result = evaluate_candidate(problem, design.source)
    return DetectionReport(problem.problem_id, "testbench",
                           not result.passed, result.total_checks,
                           "directed tests")


def detect_with_random_cosim(problem: Problem, design: CompromisedDesign,
                             vectors: int = 64,
                             seed: int = 0) -> DetectionReport:
    """Random-vector comparison against the trusted reference."""
    widths, clk, reset = _interface(problem)
    rng = random.Random(_stable_seed(seed, problem.problem_id, "cosimdet"))
    stimulus = [{n: rng.getrandbits(w) for n, w in widths.items()}
                for _ in range(vectors)]
    golden = exercise_module(problem.reference, problem.module_name,
                             stimulus, clk=clk, reset=reset)
    suspect = exercise_module(design.source, problem.module_name,
                              stimulus, clk=clk, reset=reset)
    if golden is None or suspect is None:
        return DetectionReport(problem.problem_id, "random_cosim", True,
                               0, "design failed to simulate")
    detected = golden != suspect
    return DetectionReport(problem.problem_id, "random_cosim", detected,
                           vectors)


def detect_with_critic(problem: Problem,
                       design: CompromisedDesign) -> DetectionReport:
    """Structural critic scan: flags the rare-trigger corruption mux.

    Unlike the simulation detectors this needs no vectors at all — the
    critic's trojan rule matches the mux shape directly in the AST — so
    its effort is one static pass.
    """
    from ..critic.rules import validate_rtl
    verdict = validate_rtl(design.source, problem.module_name)
    detected = "trojan" in verdict.labels()
    return DetectionReport(problem.problem_id, "critic", detected, 1,
                           "structural rule scan")


def detect_with_cec(problem: Problem,
                    design: CompromisedDesign) -> DetectionReport:
    """Formal equivalence against the reference netlist (sound)."""
    try:
        golden = synthesize_module(parse_module(problem.reference,
                                                problem.module_name))
        suspect = synthesize_module(parse_module(design.source,
                                                 problem.module_name))
    except Exception as exc:
        return DetectionReport(problem.problem_id, "exhaustive_cec", True, 0,
                               f"synthesis rejected: {exc}")
    result = check_aigs(golden.aig, suspect.aig, max_exhaustive_inputs=18,
                        random_vectors=4096)
    return DetectionReport(problem.problem_id, "exhaustive_cec",
                           not result.equivalent, result.vectors_checked,
                           "exhaustive" if result.exhaustive else "random")


def detection_sweep(problems: list[Problem], cosim_vectors: int = 64, *,
                    seeds: tuple[int, ...] = (0, 1, 2),
                    jobs: int | str | None = None) -> dict[str, float]:
    """Catch rate per detector across compromised designs.

    Every (seed, problem) cell runs the full detector hierarchy
    independently, so the sweep is scheduled over ``jobs`` workers
    (``REPRO_JOBS`` when unset); aggregation order is fixed, so the result
    is identical to the serial sweep.
    """
    from ..exec import SweepScheduler, detect_trojan_task
    payloads = [(problem, seed, cosim_vectors)
                for seed in seeds for problem in problems]
    cells = SweepScheduler(jobs).map(detect_trojan_task, payloads)
    caught: dict[str, int] = {"testbench": 0, "random_cosim": 0,
                              "exhaustive_cec": 0}
    # The critic detector joins the sweep only when enabled, so the
    # default-config result dict (golden-serialized) is unchanged.
    from ..config import get_settings
    if get_settings().critic_enabled:
        caught["critic"] = 0
    total = 0
    for cell in cells:
        if cell is None:
            continue
        total += 1
        for detector, detected in cell.items():
            if detected:
                caught[detector] = caught.get(detector, 0) + 1
    if total == 0:
        return {k: 0.0 for k in caught}
    return {k: v / total for k, v in caught.items()}
