"""VRank: self-consistency ranking of Verilog candidates (Section II).

"VRank exploits the probabilistic nature of LLMs to generate multiple
Verilog candidates, cluster them by simulation outputs, rank them by
consistency, and select the best design."

Candidates are clustered by their output signature on shared random input
vectors (no golden model needed), and the representative of the largest
cluster is selected — the same majority-vote logic as self-consistency
decoding.  The single generate → simulate → cluster pass runs as a
one-round :class:`repro.engine.RefinementEngine`, so candidate sampling
rides the engine's concurrent generation path and sweeps share the common
:class:`~repro.engine.RunRecord` accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bench.harness import make_task
from ..bench.problems import Problem
from ..engine import (Budget, RefinementEngine, RoundState, RunRecord,
                      Selection, generate_many)
from ..exec import (ParallelEvaluator, SweepScheduler,
                    evaluate_candidate_task, exercise_module_task)
from ..llm.model import Generation, SimulatedLLM
from ..llm.prompts import Prompt
from ..service import LLMClient, resolve_client


@dataclass
class Cluster:
    signature: str
    members: list[int] = field(default_factory=list)   # candidate indexes

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class VRankResult:
    problem_id: str
    model: str
    n_candidates: int = field(default=0, kw_only=True)
    n_simulated: int = field(default=0, kw_only=True)  # compiled & simulated
    clusters: list[Cluster] = field(default_factory=list)
    selected_index: int = -1
    selected_passed: bool = False
    first_passed: bool = False  # baseline: pick the first sample
    any_passed: bool = False    # oracle upper bound

    @property
    def consistency_gain(self) -> float:
        return float(self.selected_passed) - float(self.first_passed)


def _make_vectors(problem: Problem, n: int, rng: random.Random,
                  widths: dict[str, int]) -> list[dict[str, int]]:
    vectors = []
    for _ in range(n):
        vectors.append({name: rng.getrandbits(width)
                        for name, width in widths.items()})
    return vectors


def vrank(problem: Problem,
          model: str | SimulatedLLM | LLMClient = "gpt-4",
          n_candidates: int = 8, n_vectors: int = 12,
          temperature: float = 0.9, *, seed: int = 0,
          jobs: int | str | None = None,
          budget: Budget | None = None) -> VRankResult:
    """Run the full VRank flow on one problem.

    Candidate simulations are independent, so both the signature pass and
    the oracle pass@1 scoring fan out over ``jobs`` workers (``REPRO_JOBS``
    when unset) with deterministic, submission-ordered results.
    """
    llm = resolve_client(model, seed=seed)
    task = make_task(problem)
    prompt = Prompt(spec=problem.spec)
    rng = random.Random(seed * 7919 + 13)

    # Input widths from the reference interface (public knowledge: the spec
    # fixes the port list).
    from ..hdl import parse_module
    ref = parse_module(problem.reference, problem.module_name)
    widths: dict[str, int] = {}
    clk_name = None
    for port in ref.ports:
        if port.direction != "input":
            continue
        from ..hdl.elaborate import eval_const
        width = 1 if port.rng is None else eval_const(port.rng.msb, {}) + 1
        if port.name in ("clk", "clock"):
            clk_name = port.name
            continue
        widths[port.name] = width
    vectors = _make_vectors(problem, n_vectors, rng, widths)

    result = VRankResult(problem.problem_id, llm.profile.name,
                         n_candidates=n_candidates)
    record = RunRecord(flow="vrank", problem_id=problem.problem_id,
                       model=llm.profile.name)
    tokens_before = llm.usage.total_tokens
    evaluator = ParallelEvaluator(jobs)

    def candidates(state: RoundState) -> list[Generation]:
        return generate_many(llm, task, prompt, temperature,
                             sample_indices=range(n_candidates))

    def evaluate(state: RoundState, gens: list[Generation]) -> list:
        signatures = evaluator.map(
            exercise_module_task,
            [(g.text, problem.module_name, vectors, clk_name, "rst")
             for g in gens])
        testbenches = evaluator.map(
            evaluate_candidate_task,
            [(problem, g.text, 200_000) for g in gens])
        return list(zip(signatures, testbenches))

    def select(state: RoundState, gens: list[Generation],
               outcomes: list) -> Selection:
        signatures: list[str | None] = []
        for sig_rows, _tb in outcomes:
            if sig_rows is None:
                signatures.append(None)
                continue
            result.n_simulated += 1
            signatures.append(repr(sig_rows))

        clusters: dict[str, Cluster] = {}
        for index, signature in enumerate(signatures):
            if signature is None:
                continue
            clusters.setdefault(signature,
                                Cluster(signature)).members.append(index)
        result.clusters = sorted(clusters.values(), key=lambda c: -c.size)
        if result.clusters:
            result.selected_index = result.clusters[0].members[0]

        passes = [tb.passed for _sig, tb in outcomes]
        result.any_passed = any(passes)
        result.first_passed = passes[0] if passes else False
        if result.selected_index >= 0:
            result.selected_passed = passes[result.selected_index]
        chosen = max(result.selected_index, 0)
        return Selection(
            best_index=result.selected_index,
            best_candidate=gens[chosen] if gens else None,
            best_outcome=outcomes[chosen] if outcomes else None,
            best_score=float(result.selected_passed),
            scores=[float(p) for p in passes])

    from ..critic import resolve_critic
    critic = resolve_critic("vrank", seed=seed)
    RefinementEngine(candidates=candidates, evaluate=evaluate, select=select,
                     record=record, budget=budget, max_rounds=1,
                     span_name="vrank.round",
                     critic=critic.engine_hook() if critic else None).run()
    record.charge_tokens(llm.usage.total_tokens - tokens_before)
    result.run_record = record
    return result


@dataclass
class VRankSweep:
    results: list[VRankResult] = field(default_factory=list)

    @property
    def selected_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.selected_passed for r in self.results) / len(self.results)

    @property
    def baseline_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.first_passed for r in self.results) / len(self.results)

    @property
    def oracle_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.any_passed for r in self.results) / len(self.results)


def vrank_sweep(problems: list[Problem],
                model: str | SimulatedLLM | LLMClient = "gpt-4",
                n_candidates: int = 8, temperature: float = 0.9, *,
                seeds: tuple[int, ...] = (0, 1, 2),
                jobs: int | str | None = None) -> VRankSweep:
    """Grid of :func:`vrank` cells; scheduled across ``jobs`` workers.

    Each cell already builds its own seeded client, so scheduling only
    changes when a cell runs, never what it computes.  A pre-built client
    instance cannot be shipped to workers and keeps the serial path.
    """
    sweep = VRankSweep()
    if isinstance(model, str):
        from ..exec.tasks import vrank_cell_task
        cells = [(problem, model, n_candidates, temperature, seed)
                 for seed in seeds for problem in problems]
        sweep.results.extend(SweepScheduler(jobs).map(vrank_cell_task, cells))
        return sweep
    for seed in seeds:
        for problem in problems:
            sweep.results.append(vrank(problem, model, n_candidates,
                                       temperature=temperature, seed=seed,
                                       jobs=jobs))
    return sweep
