"""Cache backends: one protocol, three implementations.

Every cache in the repo stores the same thing — a pickled blob under a
content-derived key — but before this module each layer rolled its own
container (four private LRUs inside ``hdl.compile``, ad-hoc dicts in the
fuzz corpus, nothing persistent anywhere).  :class:`CacheBackend` is the
one surface they all share now:

* :class:`MemoryBackend` — bounded per-region LRUs; the in-process front.
* :class:`DiskStore` — an on-disk content-addressed store
  (``<root>/<region>/<aa>/<digest>`` files).  Writes are atomic (temp
  file + ``os.replace`` in the same directory), so concurrent writers —
  including :class:`~repro.exec.parallel.ParallelEvaluator` process
  workers sharing one store directory — can never expose a torn blob.
  Reads are corruption-tolerant: a truncated or garbage file is treated
  as a miss (and counted), never an exception.
* :class:`TieredBackend` — memory front, disk behind; disk hits are
  promoted into memory.

Keys are strings; :func:`content_key` maps the repo's structured cache
keys (tuples of hashes, tops, seeds) to a stable SHA-256 hex digest, so
the same artifact lands at the same path in every process.

Poison safety is inherited from the blob discipline ``hdl.compile``
established: backends store and return ``bytes``, and callers materialize
fresh objects from the blob on every lookup — a mutated deserialization
can never corrupt later hits.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Protocol, runtime_checkable

from ..obs import get_metrics, get_tracer


def content_key(key: object) -> str:
    """Stable SHA-256 digest of a structured cache key.

    ``repr`` of the repo's key shapes (nested tuples of str/int/bool/None,
    frozen dataclasses) is deterministic across processes — unlike
    ``hash()``, which is randomized, and unlike ``pickle``, whose memo
    layout can differ for equal values.
    """
    if isinstance(key, str):
        raw = key
    else:
        raw = repr(key)
    return hashlib.sha256(raw.encode("utf-8", "replace")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction/corruption counters for one cache region."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "corrupt": self.corrupt,
                "hit_rate": self.hit_rate}


@runtime_checkable
class CacheBackend(Protocol):
    """The unified cache surface: pickled blobs under string keys, grouped
    into named regions (``parse``, ``design``, ``result``, ``program``,
    ``campaign``, ...)."""

    def get(self, region: str, key: str) -> bytes | None: ...

    def put(self, region: str, key: str, blob: bytes) -> None: ...

    def stats(self) -> dict[str, CacheStats]: ...


class LruBlobCache:
    """Bounded LRU of pickled blobs (thread-safe; shared by thread pools)."""

    def __init__(self, capacity: int, cumulative: CacheStats | None = None):
        self.capacity = max(1, int(capacity))
        self._data: OrderedDict[object, bytes] = OrderedDict()
        self.stats = CacheStats()
        self._cum = cumulative or CacheStats()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: object, record: bool = True) -> bytes | None:
        with self._lock:
            blob = self._data.get(key)
            if blob is None:
                if record:
                    self.stats.misses += 1
                    self._cum.misses += 1
                return None
            self._data.move_to_end(key)
            if record:
                self.stats.hits += 1
                self._cum.hits += 1
            return blob

    def put(self, key: object, blob: bytes) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = blob
                return
            self._data[key] = blob
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1
                self._cum.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class MemoryBackend:
    """Per-region bounded LRUs behind the :class:`CacheBackend` protocol.

    ``capacities`` fixes specific regions; unnamed regions get
    ``default_capacity``.  ``cumulative`` optionally shares process-wide
    per-region counters (see ``repro.hdl.compile``'s registry) so stats
    survive cache replacement.
    """

    def __init__(self, capacities: Mapping[str, int] | None = None,
                 default_capacity: int = 256,
                 cumulative: Mapping[str, CacheStats] | None = None):
        self._capacities = dict(capacities or {})
        self._default_capacity = max(1, int(default_capacity))
        self._cumulative = dict(cumulative or {})
        self._regions: dict[str, LruBlobCache] = {}
        self._lock = threading.Lock()

    def region(self, region: str) -> LruBlobCache:
        with self._lock:
            lru = self._regions.get(region)
            if lru is None:
                lru = LruBlobCache(
                    self._capacities.get(region, self._default_capacity),
                    self._cumulative.get(region))
                self._regions[region] = lru
            return lru

    def get(self, region: str, key: str) -> bytes | None:
        return self.region(region).get(key)

    def put(self, region: str, key: str, blob: bytes) -> None:
        self.region(region).put(key, blob)

    def stats(self) -> dict[str, CacheStats]:
        with self._lock:
            return {name: lru.stats for name, lru in self._regions.items()}

    def sizes(self) -> dict[str, int]:
        with self._lock:
            return {name: len(lru) for name, lru in self._regions.items()}

    def clear(self) -> None:
        with self._lock:
            regions = list(self._regions.values())
        for lru in regions:
            lru.clear()


class DiskStore:
    """Content-addressed on-disk blob store; see the module docstring.

    Layout: ``<root>/<region>/<digest[:2]>/<digest>.blob``.  The two-char
    fan-out keeps directory listings tractable for large campaigns.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self._stats: dict[str, CacheStats] = {}
        self._lock = threading.Lock()
        os.makedirs(self.root, exist_ok=True)

    # -- internals ----------------------------------------------------------

    def _region_stats(self, region: str) -> CacheStats:
        with self._lock:
            stats = self._stats.get(region)
            if stats is None:
                stats = self._stats[region] = CacheStats()
            return stats

    def _path(self, region: str, key: str) -> str:
        digest = key if _is_digest(key) else content_key(key)
        return os.path.join(self.root, region, digest[:2], digest + ".blob")

    @staticmethod
    def _observe(event: str) -> None:
        if get_tracer().enabled:
            get_metrics().counter(f"store.{event}").add(1)

    # -- CacheBackend -------------------------------------------------------

    def get(self, region: str, key: str) -> bytes | None:
        stats = self._region_stats(region)
        path = self._path(region, key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except (FileNotFoundError, IsADirectoryError, NotADirectoryError):
            stats.misses += 1
            self._observe("misses")
            return None
        except OSError:
            # Unreadable entry (permissions, I/O error): a miss, not a crash.
            stats.misses += 1
            stats.corrupt += 1
            self._observe("misses")
            self._observe("corrupt")
            return None
        if not _blob_ok(blob):
            # Truncated or garbage entry — e.g. a crash mid-write on a
            # filesystem without atomic rename, or external vandalism.
            stats.misses += 1
            stats.corrupt += 1
            self._observe("misses")
            self._observe("corrupt")
            return None
        stats.hits += 1
        self._observe("hits")
        return _strip_frame(blob)

    def put(self, region: str, key: str, blob: bytes) -> None:
        path = self._path(region, key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            # Atomic publish: write to a private temp file in the *same*
            # directory, then rename over the final name.  Readers see
            # either nothing or the complete framed blob; concurrent
            # writers of the same key race benignly (same content).
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(_frame(blob))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A full or read-only disk degrades the store to a pass-through;
            # it never takes the run down.
            return
        self._region_stats(region)  # materialize the region row
        self._observe("writes")

    def stats(self) -> dict[str, CacheStats]:
        with self._lock:
            return dict(self._stats)

    # -- management ---------------------------------------------------------

    def keys(self, region: str) -> list[str]:
        """Digests present in one region (journal inspection, tests)."""
        region_dir = os.path.join(self.root, region)
        out: list[str] = []
        if not os.path.isdir(region_dir):
            return out
        for shard in sorted(os.listdir(region_dir)):
            shard_dir = os.path.join(region_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".blob"):
                    out.append(name[:-len(".blob")])
        return out

    def discard(self, region: str, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            os.unlink(self._path(region, key))
            return True
        except OSError:
            return False

    def gauges(self, prefix: str = "store") -> dict[str, float]:
        """Flat ``prefix.region.stat`` view for telemetry snapshots."""
        with self._lock:
            regions = sorted(self._stats)
        return {f"{prefix}.{region}.{stat}": round(float(value), 6)
                for region in regions
                for stat, value in self._region_stats(region)
                .as_dict().items()}


# Blob framing: an 8-byte header carrying a magic tag and the payload
# length.  ``_blob_ok`` validates both, which is what turns a truncated
# write (or arbitrary garbage dropped into the store directory) into a
# clean miss instead of a pickle exception deep inside a flow.
_MAGIC = b"RPS1"


def _frame(blob: bytes) -> bytes:
    return _MAGIC + len(blob).to_bytes(4, "big") + blob


def _blob_ok(framed: bytes) -> bool:
    if len(framed) < 8 or not framed.startswith(_MAGIC):
        return False
    return int.from_bytes(framed[4:8], "big") == len(framed) - 8


def _strip_frame(framed: bytes) -> bytes:
    return framed[8:]


def _is_digest(key: str) -> bool:
    return len(key) == 64 and all(c in "0123456789abcdef" for c in key)


class TieredBackend:
    """Memory front + optional disk behind, as one :class:`CacheBackend`.

    ``disk`` may be a :class:`DiskStore`, ``None``, or a zero-argument
    callable returning either — the callable form re-resolves on every
    access, so a backend built at import time honours ``REPRO_STORE``
    flips made later (tests, operators) without rebuilding caches.
    """

    def __init__(self, memory: MemoryBackend, disk=None):
        self.memory = memory
        self._disk = disk

    @property
    def disk(self) -> DiskStore | None:
        disk = self._disk
        return disk() if callable(disk) else disk

    def get(self, region: str, key: str) -> bytes | None:
        blob = self.memory.get(region, key)
        if blob is not None:
            return blob
        disk = self.disk
        if disk is None:
            return None
        blob = disk.get(region, key)
        if blob is not None:
            # Promote: later lookups in this process stay off the disk.
            self.memory.put(region, key, blob)
        return blob

    def put(self, region: str, key: str, blob: bytes) -> None:
        self.memory.put(region, key, blob)
        disk = self.disk
        if disk is not None:
            disk.put(region, key, blob)

    def stats(self) -> dict[str, CacheStats]:
        return self.memory.stats()
