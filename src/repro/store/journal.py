"""Campaign checkpoints: journal completed cells, resume mid-campaign.

A campaign — a sweep grid or a fuzz run — is a deterministic sequence of
independent cells.  :class:`CampaignJournal` records each completed cell's
result in the artifact store under a key derived from the campaign
fingerprint and the cell's content, so an interrupted campaign restarted
with ``--resume`` replays the finished prefix from the store and computes
only the remainder.  Because every cell is a pure function of its key and
journaled values round-trip through pickle, a resumed campaign's results
are byte-identical to an uninterrupted run (pinned by the identity tests
in ``tests/test_store.py``).

The journal's read side is gated by ``resume``: a fresh campaign always
*writes* checkpoints (so a later ``--resume`` has something to pick up)
but never *reads* them — reruns stay honest recomputations unless resume
was requested explicitly.

:func:`campaign_scope` installs a journal as the process-wide current
campaign; :class:`~repro.exec.scheduler.SweepScheduler` picks it up
automatically, so every registered flow's sweep becomes checkpointable
without touching flow signatures.
"""

from __future__ import annotations

import pickle
import threading
from contextlib import contextmanager

from .backend import CacheBackend, content_key

#: Store region holding campaign checkpoints.
CAMPAIGN_REGION = "campaign"

#: Sentinel distinguishing "no checkpoint" from a journaled ``None``.
MISS = object()


class CampaignJournal:
    """Checkpoint ledger for one campaign over a :class:`CacheBackend`.

    ``campaign`` is the campaign fingerprint — everything that determines
    the cell stream (flow/fuzzer name, model, seed, problem set, config).
    Cell keys mix the fingerprint with per-cell parts, so two campaigns
    can share one store directory without collisions.
    """

    def __init__(self, store: CacheBackend, campaign: object, *,
                 resume: bool = False, region: str = CAMPAIGN_REGION):
        self.store = store
        self.campaign = content_key(campaign)
        self.resume = resume
        self.region = region
        self._written = 0
        self._restored = 0

    def key(self, *parts: object) -> str:
        return content_key((self.campaign,) + parts)

    def lookup(self, *parts: object) -> object:
        """The journaled value for a cell, or :data:`MISS`.

        Always a miss when ``resume`` is off — fresh campaigns recompute.
        A corrupt checkpoint (truncated blob, unpicklable payload) is a
        miss too: the cell is simply recomputed.
        """
        if not self.resume:
            return MISS
        blob = self.store.get(self.region, self.key(*parts))
        if blob is None:
            return MISS
        try:
            value = pickle.loads(blob)
        except Exception:
            return MISS
        self._restored += 1
        return value

    def record(self, *parts_and_value: object) -> None:
        """Journal one completed cell: ``record(*parts, value)``."""
        *parts, value = parts_and_value
        blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        self.store.put(self.region, self.key(*parts), blob)
        self._written += 1

    @property
    def written(self) -> int:
        return self._written

    @property
    def restored(self) -> int:
        return self._restored


_current: CampaignJournal | None = None
_current_lock = threading.Lock()


def current_journal() -> CampaignJournal | None:
    """The journal installed by the innermost :func:`campaign_scope`."""
    return _current


@contextmanager
def campaign_scope(journal: CampaignJournal | None):
    """Install ``journal`` as the process-wide current campaign.

    One campaign runs at a time (the CLI launches exactly one); nested
    scopes restore the outer journal on exit.  ``None`` is accepted and
    means "no checkpointing", so callers can pass an optional journal
    straight through.
    """
    global _current
    with _current_lock:
        previous = _current
        _current = journal
    try:
        yield journal
    finally:
        with _current_lock:
            _current = previous
