"""``repro.store`` — persistent content-addressed artifacts, one cache API.

The ROADMAP's warm-restart story: every cache and campaign ledger in the
repo used to die with the process, so sweeps, fuzz campaigns, and CI
always started cold.  This package provides

* :class:`CacheBackend` — the unified protocol (``get/put/stats`` over
  named regions of pickled blobs) that ``hdl.compile``'s layers are now
  views of;
* :class:`MemoryBackend` / :class:`DiskStore` / :class:`TieredBackend` —
  the in-process LRU front, the on-disk content-addressed store (atomic
  writes, corruption-tolerant reads), and their composition;
* :class:`CampaignJournal` + :func:`campaign_scope` — checkpointed
  campaigns: sweeps and fuzz runs journal completed cells and
  ``--resume`` restarts mid-campaign byte-identically.

Enable persistence with ``REPRO_STORE=1`` (artifacts under
``REPRO_STORE_DIR``, default ``.repro-store``); everything stays
memory-only — today's exact behaviour — when the knob is off.  Disk
caching cannot change results: keys are content hashes of everything a
computation depends on, and values round-trip through the same pickled
blobs the in-memory caches already use (DESIGN.md §11).
"""

from __future__ import annotations

import threading

from .backend import (CacheBackend, CacheStats, DiskStore, LruBlobCache,
                      MemoryBackend, TieredBackend, content_key)
from .journal import (CAMPAIGN_REGION, MISS, CampaignJournal, campaign_scope,
                      current_journal)

__all__ = [
    "CAMPAIGN_REGION", "CacheBackend", "CacheStats", "CampaignJournal",
    "DiskStore", "LruBlobCache", "MISS", "MemoryBackend", "TieredBackend",
    "campaign_scope", "content_key", "current_journal", "get_default_store",
    "reset_default_store", "set_default_store", "store_gauges",
]

_default_store: DiskStore | None = None
_default_key: tuple | None = None
_override: DiskStore | None = None
_lock = threading.Lock()


def get_default_store() -> DiskStore | None:
    """The process-wide :class:`DiskStore`, or ``None`` when disabled.

    Resolved live from ``REPRO_STORE`` / ``REPRO_STORE_DIR`` so flipping
    the knobs mid-process (tests, operators) takes effect immediately;
    the instance is cached per directory so stats accumulate.
    """
    global _default_store, _default_key
    with _lock:
        if _override is not None:
            return _override
        from ..config import get_settings
        settings = get_settings()
        key = (settings.store_enabled, settings.store_dir)
        if key == _default_key:
            return _default_store
        _default_key = key
        _default_store = DiskStore(settings.store_dir) \
            if settings.store_enabled else None
        return _default_store


def set_default_store(store: DiskStore | None) -> DiskStore | None:
    """Install an explicit store (tests); ``None`` restores env resolution."""
    global _override, _default_key
    with _lock:
        _override = store
        _default_key = None
    return store


def reset_default_store() -> None:
    """Drop the cached instance so the next access re-reads the env."""
    global _default_store, _default_key, _override
    with _lock:
        _default_store = None
        _default_key = None
        _override = None


def store_gauges() -> dict[str, float]:
    """Flat ``store.region.stat`` gauges for telemetry snapshots
    (merged by :func:`repro.obs.flush_metrics`); empty when disabled."""
    store = get_default_store()
    return store.gauges() if store is not None else {}
