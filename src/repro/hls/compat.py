"""HLS compatibility checking — the "Preprocessing" stage of Fig. 2.

A real HLS compiler rejects some constructs immediately (dynamic memory,
floats) but misses deeper issues until later passes; the paper's repair
framework therefore pairs the tool's error list with LLM-based detection of
*latent* issues.  We reproduce that split: each issue carries
``tool_reported`` — whether the simulated HLS compiler reports it on first
compile — while latent issues are only discoverable by (simulated) LLM
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cast import (CAssign, CBinary, CBlock, CBreak, CCall, CCast, CContinue,
                   CDecl, CExpr, CExprStmt, CFor, CFunction, CIf, CIndex,
                   CNum, CPragmaStmt, CProgram, CReturn, CStmt, CTernary,
                   CUnary, CVar, CWhile)


@dataclass(frozen=True)
class HlsIssue:
    code: str
    message: str
    line: int
    function: str
    tool_reported: bool      # visible in the first HLS compile log
    fixable: bool = True     # a repair template exists

    def __str__(self) -> str:
        return f"[{self.code}] {self.message} (function '{self.function}', line {self.line})"


@dataclass
class CompatReport:
    issues: list[HlsIssue] = field(default_factory=list)

    @property
    def compatible(self) -> bool:
        return not self.issues

    @property
    def tool_visible(self) -> list[HlsIssue]:
        return [i for i in self.issues if i.tool_reported]

    @property
    def latent(self) -> list[HlsIssue]:
        return [i for i in self.issues if not i.tool_reported]

    def error_log(self) -> str:
        """The first-compile error log a real HLS tool would print."""
        visible = self.tool_visible
        if not visible:
            return "HLS compile: OK"
        lines = ["HLS compile: FAILED"]
        lines.extend(f"  ERROR {issue}" for issue in visible)
        return "\n".join(lines)


_ISSUE_CODES = {
    "malloc": ("HLS001", "dynamic memory allocation is not synthesizable", True),
    "free": ("HLS001", "dynamic memory allocation is not synthesizable", True),
    "calloc": ("HLS001", "dynamic memory allocation is not synthesizable", True),
    "recursion": ("HLS002", "recursive calls are not synthesizable", False),
    "unbounded_loop": ("HLS003", "loop has no statically-bounded trip count", False),
    "unsized_pointer": ("HLS004", "pointer parameter without a bound array size", False),
    "io_call": ("HLS005", "I/O calls (printf) are not synthesizable", True),
    "pointer_arith": ("HLS006", "pointer arithmetic is not synthesizable", False),
    "global_state": ("HLS008", "mutable global state is not synthesizable", False),
    "dynamic_div": ("HLS009", "division by a runtime value needs a divider core", False),
}


def _make_issue(kind: str, line: int, function: str, detail: str = "") -> HlsIssue:
    code, message, tool_reported = _ISSUE_CODES[kind]
    if detail:
        message = f"{message}: {detail}"
    fixable = kind not in ("global_state",)
    return HlsIssue(code, message, line, function, tool_reported, fixable)


class CompatChecker:
    def __init__(self, program: CProgram, top: str | None = None):
        self.program = program
        self.top = top
        self.issues: list[HlsIssue] = []

    def check(self) -> CompatReport:
        if self.program.globals:
            for decl in self.program.globals:
                self.issues.append(_make_issue(
                    "global_state", decl.line, "<global>", decl.name))
        functions = self.program.functions
        targets = [functions[self.top]] if self.top and self.top in functions \
            else list(functions.values())
        self._check_recursion(functions)
        for func in targets:
            self._check_function(func)
        return CompatReport(self.issues)

    def _check_recursion(self, functions: dict[str, CFunction]) -> None:
        calls: dict[str, set[str]] = {}
        for name, func in functions.items():
            called: set[str] = set()
            self._collect_calls(func.body, called)
            calls[name] = called & set(functions)

        # DFS cycle detection.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in functions}
        flagged: set[str] = set()

        def visit(name: str, path: list[str]) -> None:
            color[name] = GRAY
            for callee in sorted(calls.get(name, ())):
                if color[callee] == GRAY:
                    cycle_start = path.index(callee) if callee in path else 0
                    for member in path[cycle_start:] + [callee]:
                        flagged.add(member)
                elif color[callee] == WHITE:
                    visit(callee, path + [callee])
            color[name] = BLACK

        for name in functions:
            if color[name] == WHITE:
                visit(name, [name])
        for name in sorted(flagged):
            self.issues.append(_make_issue("recursion", functions[name].line, name))

    def _collect_calls(self, node, out: set[str]) -> None:
        if isinstance(node, CBlock):
            for s in node.stmts:
                self._collect_calls(s, out)
        elif isinstance(node, CIf):
            self._collect_calls_expr(node.cond, out)
            self._collect_calls(node.then, out)
            if node.other is not None:
                self._collect_calls(node.other, out)
        elif isinstance(node, CFor):
            for part in (node.init, node.body):
                if part is not None:
                    self._collect_calls(part, out)
            for part in (node.cond, node.step):
                if part is not None:
                    self._collect_calls_expr(part, out)
        elif isinstance(node, CWhile):
            self._collect_calls_expr(node.cond, out)
            self._collect_calls(node.body, out)
        elif isinstance(node, CExprStmt):
            self._collect_calls_expr(node.expr, out)
        elif isinstance(node, CDecl) and node.init is not None:
            self._collect_calls_expr(node.init, out)
        elif isinstance(node, CReturn) and node.value is not None:
            self._collect_calls_expr(node.value, out)

    def _collect_calls_expr(self, expr: CExpr, out: set[str]) -> None:
        if isinstance(expr, CCall):
            out.add(expr.func)
            for a in expr.args:
                self._collect_calls_expr(a, out)
        elif isinstance(expr, CBinary):
            self._collect_calls_expr(expr.left, out)
            self._collect_calls_expr(expr.right, out)
        elif isinstance(expr, CUnary):
            self._collect_calls_expr(expr.operand, out)
        elif isinstance(expr, CTernary):
            for e in (expr.cond, expr.if_true, expr.if_false):
                self._collect_calls_expr(e, out)
        elif isinstance(expr, CAssign):
            self._collect_calls_expr(expr.target, out)
            self._collect_calls_expr(expr.value, out)
        elif isinstance(expr, CIndex):
            self._collect_calls_expr(expr.base, out)
            self._collect_calls_expr(expr.index, out)
        elif isinstance(expr, CCast):
            self._collect_calls_expr(expr.operand, out)

    # -- per-function checks -------------------------------------------------------

    def _check_function(self, func: CFunction) -> None:
        for param in func.params:
            if param.ctype.is_pointer and not param.ctype.is_array:
                self.issues.append(_make_issue(
                    "unsized_pointer", func.line, func.name, param.name))
            if param.ctype.is_array and (param.ctype.array_size or 0) < 0:
                self.issues.append(_make_issue(
                    "unsized_pointer", func.line, func.name,
                    f"{param.name}[] has no size"))
        self._walk_stmt(func.body, func)

    def _walk_stmt(self, stmt: CStmt, func: CFunction) -> None:
        if isinstance(stmt, CBlock):
            for s in stmt.stmts:
                self._walk_stmt(s, func)
        elif isinstance(stmt, CDecl):
            if stmt.ctype.is_pointer:
                # Pointer locals are only OK if they hold malloc results —
                # which are themselves flagged; still flag arithmetic later.
                pass
            if stmt.init is not None:
                self._walk_expr(stmt.init, func, stmt.line)
        elif isinstance(stmt, CExprStmt):
            self._walk_expr(stmt.expr, func, stmt.line)
        elif isinstance(stmt, CIf):
            self._walk_expr(stmt.cond, func, stmt.line)
            self._walk_stmt(stmt.then, func)
            if stmt.other is not None:
                self._walk_stmt(stmt.other, func)
        elif isinstance(stmt, CFor):
            if stmt.init is not None:
                self._walk_stmt(stmt.init, func)
            if stmt.cond is not None:
                self._walk_expr(stmt.cond, func, stmt.line)
            if stmt.step is not None:
                self._walk_expr(stmt.step, func, stmt.line)
            if not loop_bound(stmt):
                self.issues.append(_make_issue("unbounded_loop", stmt.line,
                                               func.name))
            self._walk_stmt(stmt.body, func)
        elif isinstance(stmt, CWhile):
            self.issues.append(_make_issue(
                "unbounded_loop", stmt.line, func.name,
                "while loops have no static trip count"))
            self._walk_expr(stmt.cond, func, stmt.line)
            self._walk_stmt(stmt.body, func)
        elif isinstance(stmt, CReturn) and stmt.value is not None:
            self._walk_expr(stmt.value, func, stmt.line)

    def _walk_expr(self, expr: CExpr, func: CFunction, line: int) -> None:
        if isinstance(expr, CCall):
            if expr.func in ("malloc", "calloc", "free"):
                self.issues.append(_make_issue(expr.func, expr.line or line,
                                               func.name))
            elif expr.func in ("printf", "scanf", "puts", "fprintf"):
                self.issues.append(_make_issue("io_call", expr.line or line,
                                               func.name, expr.func))
            for a in expr.args:
                self._walk_expr(a, func, line)
        elif isinstance(expr, CBinary):
            if expr.op in ("/", "%") and not isinstance(expr.right, CNum):
                # An explicit divider-core allocation pragma accepts the cost.
                has_divider = any("allocation" in p and
                                  ("div" in p or "sdiv" in p)
                                  for p in func.pragmas)
                if not has_divider:
                    self.issues.append(_make_issue("dynamic_div", line,
                                                   func.name))
            if expr.op in ("+", "-") and self._is_pointer_operand(expr, func):
                self.issues.append(_make_issue("pointer_arith", line, func.name))
            self._walk_expr(expr.left, func, line)
            self._walk_expr(expr.right, func, line)
        elif isinstance(expr, CUnary):
            self._walk_expr(expr.operand, func, line)
        elif isinstance(expr, CTernary):
            for e in (expr.cond, expr.if_true, expr.if_false):
                self._walk_expr(e, func, line)
        elif isinstance(expr, CAssign):
            self._walk_expr(expr.target, func, line)
            self._walk_expr(expr.value, func, line)
        elif isinstance(expr, CIndex):
            self._walk_expr(expr.base, func, line)
            self._walk_expr(expr.index, func, line)
        elif isinstance(expr, CCast):
            self._walk_expr(expr.operand, func, line)

    def _is_pointer_operand(self, expr: CBinary, func: CFunction) -> bool:
        pointer_names = {p.name for p in func.params if p.ctype.is_pointer}
        for side in (expr.left, expr.right):
            if isinstance(side, CVar) and side.name in pointer_names:
                return True
        return False


def loop_bound(stmt: CFor) -> int | None:
    """Static trip count of ``for (i = c0; i < c1; i += c2)`` loops."""
    if stmt.init is None or stmt.cond is None or stmt.step is None:
        return None
    # init: i = c0 (decl or assignment)
    var: str | None = None
    start: int | None = None
    if isinstance(stmt.init, CDecl) and isinstance(stmt.init.init, CNum):
        var = stmt.init.name
        start = stmt.init.init.value
    elif isinstance(stmt.init, CExprStmt) and isinstance(stmt.init.expr, CAssign):
        a = stmt.init.expr
        if isinstance(a.target, CVar) and isinstance(a.value, CNum) and a.op == "=":
            var = a.target.name
            start = a.value.value
    if var is None or start is None:
        return None
    # cond: i < cN or i <= cN
    cond = stmt.cond
    if not (isinstance(cond, CBinary) and cond.op in ("<", "<=", ">", ">=")
            and isinstance(cond.left, CVar) and cond.left.name == var
            and isinstance(cond.right, CNum)):
        return None
    limit = cond.right.value
    # step: i++ / i += c / i = i + c
    step_amount: int | None = None
    step = stmt.step
    if isinstance(step, CUnary) and step.op in ("++", "--") \
            and isinstance(step.operand, CVar) and step.operand.name == var:
        step_amount = 1 if step.op == "++" else -1
    elif isinstance(step, CAssign) and isinstance(step.target, CVar) \
            and step.target.name == var:
        if step.op in ("+=", "-=") and isinstance(step.value, CNum):
            step_amount = step.value.value * (1 if step.op == "+=" else -1)
        elif step.op == "=" and isinstance(step.value, CBinary) \
                and step.value.op in ("+", "-") \
                and isinstance(step.value.left, CVar) \
                and step.value.left.name == var \
                and isinstance(step.value.right, CNum):
            step_amount = step.value.right.value * \
                (1 if step.value.op == "+" else -1)
    if not step_amount:
        return None
    if cond.op in ("<", "<=") and step_amount > 0:
        span = limit - start + (1 if cond.op == "<=" else 0)
        return max(0, -(-span // step_amount))
    if cond.op in (">", ">=") and step_amount < 0:
        span = start - limit + (1 if cond.op == ">=" else 0)
        return max(0, -(-span // -step_amount))
    return None


def check_compatibility(program: CProgram, top: str | None = None) -> CompatReport:
    """Run every HLS-compatibility check; see :class:`CompatReport`."""
    return CompatChecker(program, top).check()
