"""Recursive-descent parser for the mini-C subset."""

from __future__ import annotations

from .cast import (CAssign, CBinary, CBlock, CBreak, CCall, CCast, CContinue,
                   CDecl, CExpr, CExprStmt, CFor, CFunction, CIf, CIndex,
                   CNum, CParam, CPragmaStmt, CProgram, CReturn, CSizeof,
                   CStmt, CStr, CTernary, CType, CUnary, CVar, CWhile)
from .clexer import CToken, CTokKind, ctokenize

_TYPE_WORDS = {"int", "unsigned", "char", "short", "long", "void", "bool",
               "float", "double", "const", "static", "volatile", "extern",
               "signed"}

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class CParseError(Exception):
    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"[C-PARSE] {message} (line {line})")


class CParser:
    def __init__(self, source: str):
        self.toks = ctokenize(source)
        self.i = 0

    def _peek(self, ahead: int = 0) -> CToken:
        return self.toks[min(self.i + ahead, len(self.toks) - 1)]

    def _next(self) -> CToken:
        tok = self.toks[self.i]
        if tok.kind is not CTokKind.EOF:
            self.i += 1
        return tok

    def _at(self, kind: CTokKind, text: str | None = None) -> bool:
        tok = self._peek()
        return tok.kind is kind and (text is None or tok.text == text)

    def _accept(self, kind: CTokKind, text: str | None = None) -> CToken | None:
        if self._at(kind, text):
            return self._next()
        return None

    def _expect(self, kind: CTokKind, text: str | None = None) -> CToken:
        tok = self._peek()
        if not self._at(kind, text):
            raise CParseError(
                f"expected '{text or kind.name}', found '{tok.text or 'EOF'}'", tok.line)
        return self._next()

    # -- types ------------------------------------------------------------------

    def _at_type(self) -> bool:
        tok = self._peek()
        return tok.kind is CTokKind.IDENT and tok.text in _TYPE_WORDS

    def _parse_type(self) -> CType:
        tok = self._peek()
        words: list[str] = []
        while self._at_type():
            words.append(self._next().text)
        if not words:
            raise CParseError(f"expected type, found '{tok.text}'", tok.line)
        core = [w for w in words if w not in
                ("const", "static", "volatile", "extern", "signed")]
        if any(w in ("float", "double") for w in core):
            raise CParseError("floating point is not supported by the mini-C subset",
                              tok.line)
        if "void" in core:
            base = "void"
        elif "unsigned" in core:
            base = "unsigned"
        elif "char" in core:
            base = "char"
        elif "bool" in core:
            base = "bool"
        else:
            base = "int"
        is_pointer = False
        while self._accept(CTokKind.OP, "*"):
            is_pointer = True
        return CType(base, is_pointer=is_pointer)

    # -- program ------------------------------------------------------------------

    def parse_program(self) -> CProgram:
        program = CProgram()
        pending_pragmas: list[str] = []
        while not self._at(CTokKind.EOF):
            if self._at(CTokKind.PRAGMA):
                pending_pragmas.append(self._next().text)
                continue
            if self._at(CTokKind.IDENT, "struct") or self._at(CTokKind.IDENT, "typedef") \
                    or self._at(CTokKind.IDENT, "union") or self._at(CTokKind.IDENT, "enum"):
                tok = self._peek()
                raise CParseError(
                    f"'{tok.text}' declarations are not supported by the mini-C subset",
                    tok.line)
            ctype = self._parse_type()
            name_tok = self._expect(CTokKind.IDENT)
            if self._at(CTokKind.OP, "("):
                func = self._parse_function(ctype, name_tok,
                                            tuple(pending_pragmas))
                pending_pragmas = []
                if func is not None:
                    program.add(func)
            else:
                decl = self._finish_decl(ctype, name_tok)
                program.globals.append(decl)
        return program

    def _parse_function(self, ret: CType, name_tok: CToken,
                        pragmas: tuple[str, ...]) -> CFunction | None:
        self._expect(CTokKind.OP, "(")
        params: list[CParam] = []
        if not self._at(CTokKind.OP, ")"):
            while True:
                if self._at(CTokKind.IDENT, "void") and self._peek(1).text == ")":
                    self._next()
                    break
                ptype = self._parse_type()
                pname = self._expect(CTokKind.IDENT).text
                if self._accept(CTokKind.OP, "["):
                    size = None
                    if self._at(CTokKind.NUMBER):
                        size = self._next().value
                    self._expect(CTokKind.OP, "]")
                    ptype = CType(ptype.base, is_pointer=False,
                                  array_size=size if size is not None else -1)
                params.append(CParam(ptype, pname))
                if not self._accept(CTokKind.OP, ","):
                    break
        self._expect(CTokKind.OP, ")")
        if self._accept(CTokKind.OP, ";"):
            return None  # prototype
        body = self._parse_block()
        return CFunction(name_tok.text, ret, tuple(params), body,
                         pragmas, name_tok.line)

    def _finish_decl(self, ctype: CType, name_tok: CToken) -> CDecl:
        if self._accept(CTokKind.OP, "["):
            size_tok = self._accept(CTokKind.NUMBER)
            self._expect(CTokKind.OP, "]")
            ctype = CType(ctype.base, ctype.is_pointer,
                          size_tok.value if size_tok else -1)
        init = None
        if self._accept(CTokKind.OP, "="):
            if self._at(CTokKind.OP, "{"):
                raise CParseError("aggregate initializers are not supported",
                                  name_tok.line)
            init = self.parse_expr()
        self._expect(CTokKind.OP, ";")
        return CDecl(ctype, name_tok.text, init, name_tok.line)

    # -- statements -----------------------------------------------------------------

    def _parse_block(self) -> CBlock:
        self._expect(CTokKind.OP, "{")
        stmts: list[CStmt] = []
        while not self._at(CTokKind.OP, "}"):
            if self._at(CTokKind.EOF):
                raise CParseError("unexpected EOF inside block", self._peek().line)
            stmts.append(self.parse_stmt())
        self._expect(CTokKind.OP, "}")
        return CBlock(tuple(stmts))

    def parse_stmt(self) -> CStmt:
        tok = self._peek()

        if tok.kind is CTokKind.PRAGMA:
            self._next()
            return CPragmaStmt(tok.text, tok.line)
        if self._at(CTokKind.OP, "{"):
            return self._parse_block()
        if self._at(CTokKind.IDENT, "if"):
            self._next()
            self._expect(CTokKind.OP, "(")
            cond = self.parse_expr()
            self._expect(CTokKind.OP, ")")
            then = self.parse_stmt()
            other = None
            if self._accept(CTokKind.IDENT, "else"):
                other = self.parse_stmt()
            return CIf(cond, then, other, tok.line)
        if self._at(CTokKind.IDENT, "for"):
            return self._parse_for(tok)
        if self._at(CTokKind.IDENT, "while"):
            self._next()
            self._expect(CTokKind.OP, "(")
            cond = self.parse_expr()
            self._expect(CTokKind.OP, ")")
            pragmas, body = self._body_with_pragmas()
            return CWhile(cond, body, False, pragmas, tok.line)
        if self._at(CTokKind.IDENT, "do"):
            self._next()
            body = self.parse_stmt()
            self._expect(CTokKind.IDENT, "while")
            self._expect(CTokKind.OP, "(")
            cond = self.parse_expr()
            self._expect(CTokKind.OP, ")")
            self._expect(CTokKind.OP, ";")
            return CWhile(cond, body, True, (), tok.line)
        if self._at(CTokKind.IDENT, "return"):
            self._next()
            value = None
            if not self._at(CTokKind.OP, ";"):
                value = self.parse_expr()
            self._expect(CTokKind.OP, ";")
            return CReturn(value, tok.line)
        if self._at(CTokKind.IDENT, "break"):
            self._next()
            self._expect(CTokKind.OP, ";")
            return CBreak(tok.line)
        if self._at(CTokKind.IDENT, "continue"):
            self._next()
            self._expect(CTokKind.OP, ";")
            return CContinue(tok.line)
        if self._at(CTokKind.IDENT, "switch") or self._at(CTokKind.IDENT, "goto"):
            raise CParseError(f"'{tok.text}' is not supported by the mini-C subset",
                              tok.line)
        if self._at_type():
            ctype = self._parse_type()
            name_tok = self._expect(CTokKind.IDENT)
            return self._finish_decl(ctype, name_tok)

        expr = self.parse_expr()
        self._expect(CTokKind.OP, ";")
        return CExprStmt(expr, tok.line)

    def _body_with_pragmas(self) -> tuple[tuple[str, ...], CStmt]:
        """Collect pragmas that appear as the first statements of a loop body."""
        body = self.parse_stmt()
        pragmas: list[str] = []
        if isinstance(body, CBlock):
            rest: list[CStmt] = []
            for s in body.stmts:
                if isinstance(s, CPragmaStmt) and not rest:
                    pragmas.append(s.text)
                else:
                    rest.append(s)
            body = CBlock(tuple(rest))
        return tuple(pragmas), body

    def _parse_for(self, tok: CToken) -> CFor:
        self._next()
        self._expect(CTokKind.OP, "(")
        init: CStmt | None = None
        if not self._at(CTokKind.OP, ";"):
            if self._at_type():
                ctype = self._parse_type()
                name_tok = self._expect(CTokKind.IDENT)
                init_expr = None
                if self._accept(CTokKind.OP, "="):
                    init_expr = self.parse_expr()
                init = CDecl(ctype, name_tok.text, init_expr, name_tok.line)
                self._expect(CTokKind.OP, ";")
            else:
                init = CExprStmt(self.parse_expr(), tok.line)
                self._expect(CTokKind.OP, ";")
        else:
            self._expect(CTokKind.OP, ";")
        cond = None
        if not self._at(CTokKind.OP, ";"):
            cond = self.parse_expr()
        self._expect(CTokKind.OP, ";")
        step = None
        if not self._at(CTokKind.OP, ")"):
            step = self.parse_expr()
        self._expect(CTokKind.OP, ")")
        pragmas, body = self._body_with_pragmas()
        return CFor(init, cond, step, body, pragmas, tok.line)

    # -- expressions --------------------------------------------------------------------

    def parse_expr(self) -> CExpr:
        return self._parse_assignment()

    def _parse_assignment(self) -> CExpr:
        left = self._parse_ternary()
        tok = self._peek()
        if tok.kind is CTokKind.OP and tok.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            if not isinstance(left, (CVar, CIndex, CUnary)):
                raise CParseError("invalid assignment target", tok.line)
            if isinstance(left, CUnary) and left.op != "*":
                raise CParseError("invalid assignment target", tok.line)
            return CAssign(tok.text, left, value, tok.line)
        return left

    def _parse_ternary(self) -> CExpr:
        cond = self._parse_binary(1)
        if self._accept(CTokKind.OP, "?"):
            if_true = self.parse_expr()
            self._expect(CTokKind.OP, ":")
            if_false = self._parse_ternary()
            return CTernary(cond, if_true, if_false)
        return cond

    def _parse_binary(self, min_prec: int) -> CExpr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not CTokKind.OP:
                return left
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = CBinary(tok.text, left, right)

    def _parse_unary(self) -> CExpr:
        tok = self._peek()
        if tok.kind is CTokKind.OP and tok.text in ("-", "!", "~", "*", "&", "+"):
            self._next()
            if tok.text == "+":
                return self._parse_unary()
            return CUnary(tok.text, self._parse_unary())
        if tok.kind is CTokKind.OP and tok.text in ("++", "--"):
            self._next()
            return CUnary(tok.text, self._parse_unary())
        if tok.kind is CTokKind.OP and tok.text == "(":
            # Cast or parenthesized expression.
            save = self.i
            self._next()
            if self._at_type():
                ctype = self._parse_type()
                if self._at(CTokKind.OP, ")"):
                    self._next()
                    return CCast(ctype, self._parse_unary())
            self.i = save
        if self._at(CTokKind.IDENT, "sizeof"):
            self._next()
            self._expect(CTokKind.OP, "(")
            if self._at_type():
                ctype = self._parse_type()
            else:
                self.parse_expr()
                ctype = CType("int")
            self._expect(CTokKind.OP, ")")
            return CSizeof(ctype)
        return self._parse_postfix()

    def _parse_postfix(self) -> CExpr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if self._accept(CTokKind.OP, "["):
                index = self.parse_expr()
                self._expect(CTokKind.OP, "]")
                expr = CIndex(expr, index, tok.line)
            elif tok.kind is CTokKind.OP and tok.text in ("++", "--"):
                self._next()
                expr = CUnary(tok.text, expr, postfix=True)
            elif tok.kind is CTokKind.OP and tok.text in (".", "->"):
                raise CParseError("struct member access is not supported", tok.line)
            else:
                return expr

    def _parse_primary(self) -> CExpr:
        tok = self._peek()
        if tok.kind is CTokKind.NUMBER:
            self._next()
            return CNum(tok.value)
        if tok.kind is CTokKind.CHAR:
            self._next()
            return CNum(tok.value)
        if tok.kind is CTokKind.STRING:
            self._next()
            return CStr(tok.value)
        if self._accept(CTokKind.OP, "("):
            inner = self.parse_expr()
            self._expect(CTokKind.OP, ")")
            return inner
        if tok.kind is CTokKind.IDENT:
            self._next()
            if self._at(CTokKind.OP, "("):
                self._next()
                args: list[CExpr] = []
                while not self._at(CTokKind.OP, ")"):
                    args.append(self.parse_expr())
                    if not self._accept(CTokKind.OP, ","):
                        break
                self._expect(CTokKind.OP, ")")
                return CCall(tok.text, tuple(args), tok.line)
            return CVar(tok.text, tok.line)
        raise CParseError(f"unexpected token '{tok.text or 'EOF'}'", tok.line)


def cparse(source: str) -> CProgram:
    """Parse mini-C source into a :class:`CProgram`."""
    return CParser(source).parse_program()
