"""Intelligent kernel extraction for accelerator generation (Section VI,
"Intelligent Kernel Extraction for Accelerator Generation").

The paper's proposal: an LLM-driven agent that (1) detects compute-intensive
kernels in a C program, (2) generates accelerators for them, (3) accounts
for CPU-accelerator data-transfer cost — because "inefficient
CPU-accelerator data transfer can negate the performance gains" — and
(4) iterates on PPA.

Implementation: kernel detection ranks functions by *measured* work (the
RISC-V core executes the program and attributes dynamic instructions per
function); the accelerator is the kernel's generated RTL (or its analytic
schedule when RTL is out of subset); speedup combines CPU cycles,
accelerator latency, and a bus-transfer model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .cast import CProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..riscv.core import CoreConfig
from .cparser import cparse
from .rtlgen import RtlGenError, generate_rtl
from .schedule import ScheduleReport, estimate_schedule

# Bus model: words/cycle and fixed handshake overhead per offload call.
_TRANSFER_WORDS_PER_CYCLE = 1.0
_OFFLOAD_OVERHEAD_CYCLES = 40


@dataclass
class KernelProfile:
    function: str
    dynamic_instructions: int
    calls: int
    share: float                    # fraction of program instructions

    def __str__(self) -> str:
        return (f"{self.function}: {self.dynamic_instructions} insns "
                f"({self.share:.0%}) over {self.calls} call(s)")


def profile_kernels(source: str | CProgram, entry: str = "main",
                    config: "CoreConfig | None" = None) -> list[KernelProfile]:
    """Execute the program on the core and attribute work per function.

    Attribution uses the compiled label layout: every dynamic instruction is
    charged to the function whose code region its PC falls in.
    """
    # Imported lazily: repro.riscv depends on repro.hls for its compiler
    # frontend, so a module-level import here would be circular.
    from ..riscv.assembler import assemble
    from ..riscv.compiler import compile_program
    from ..riscv.core import Core, CoreConfig

    program = cparse(source) if isinstance(source, str) else source
    asm = compile_program(program, entry=entry)
    assembled = assemble(asm)
    core = Core(config or CoreConfig())
    trace, _ = core._exec_functional(assembled)

    # Function code regions from labels (function labels have no dot).
    regions: list[tuple[int, str]] = sorted(
        (index, name) for name, index in assembled.labels.items()
        if not name.startswith(".") and name != "_start")
    regions.sort()

    def owner(pc: int) -> str:
        name = "_start"
        for start, label in regions:
            if pc >= start:
                name = label
            else:
                break
        return name

    counts: dict[str, int] = {}
    calls: dict[str, int] = {}
    for entry_i in trace:
        fn = owner(entry_i.pc)
        counts[fn] = counts.get(fn, 0) + 1
        if entry_i.instr.mnemonic == "jal" and entry_i.instr.rd == 1:
            target = owner(entry_i.pc + entry_i.instr.imm // 4)
            calls[target] = calls.get(target, 0) + 1

    total = max(1, len(trace))
    profiles = [
        KernelProfile(fn, n, calls.get(fn, 1 if fn != "_start" else 0),
                      n / total)
        for fn, n in counts.items() if fn != "_start"
    ]
    profiles.sort(key=lambda p: -p.dynamic_instructions)
    return profiles


@dataclass
class AcceleratorPlan:
    function: str
    cpu_cycles_per_call: float
    accel_cycles_per_call: float
    transfer_cycles_per_call: float
    calls: int
    rtl_generated: bool
    schedule: ScheduleReport | None = None
    note: str = ""

    @property
    def offload_cycles_per_call(self) -> float:
        return (self.accel_cycles_per_call + self.transfer_cycles_per_call
                + _OFFLOAD_OVERHEAD_CYCLES)

    @property
    def speedup_per_call(self) -> float:
        if self.offload_cycles_per_call <= 0:
            return 0.0
        return self.cpu_cycles_per_call / self.offload_cycles_per_call

    @property
    def worthwhile(self) -> bool:
        return self.speedup_per_call > 1.0

    def summary(self) -> str:
        return (f"{self.function}: cpu={self.cpu_cycles_per_call:.0f}cy "
                f"accel={self.accel_cycles_per_call:.0f}cy "
                f"xfer={self.transfer_cycles_per_call:.0f}cy "
                f"-> speedup {self.speedup_per_call:.1f}x "
                f"({'offload' if self.worthwhile else 'keep on CPU'})")


def _transfer_words(program: CProgram, function: str) -> int:
    func = program.function(function)
    words = 0
    for param in func.params:
        if param.ctype.is_array:
            words += max(1, param.ctype.array_size or 8)
        else:
            words += 1
    if func.ret.base != "void":
        words += 1
    return words


def plan_accelerator(source: str | CProgram, function: str,
                     entry: str = "main",
                     clock_ns: float = 10.0) -> AcceleratorPlan:
    """Size the accelerator opportunity for one kernel."""
    program = cparse(source) if isinstance(source, str) else source
    profiles = {p.function: p for p in profile_kernels(program, entry=entry)}
    profile = profiles.get(function)
    if profile is None:
        raise KeyError(f"function '{function}' never executed from '{entry}'")

    # CPU cost: timing-model cycles attributed by the instruction share.
    from ..riscv.assembler import assemble
    from ..riscv.compiler import compile_program
    from ..riscv.core import Core, CoreConfig
    asm = compile_program(program, entry=entry)
    stats = Core(CoreConfig()).run(assemble(asm))
    cpu_cycles_total = stats.cycles * profile.share
    cpu_per_call = cpu_cycles_total / max(1, profile.calls)

    # Accelerator cost: RTL when in subset (combinational => ~1 cycle
    # plus pipeline depth proxy), otherwise the analytic schedule.
    schedule = estimate_schedule(program, function, clock_ns)
    rtl_ok = True
    note = ""
    try:
        generate_rtl(program, function)
        # Fully unrolled datapath: latency is its pipeline depth proxy.
        accel_cycles = max(1.0, schedule.latency_cycles / 8.0)
        note = "full-unroll datapath"
    except RtlGenError as exc:
        rtl_ok = False
        accel_cycles = float(schedule.latency_cycles)
        note = f"scheduled accelerator ({exc})"

    transfer = _transfer_words(program, function) / _TRANSFER_WORDS_PER_CYCLE
    return AcceleratorPlan(function, cpu_per_call, accel_cycles, transfer,
                           profile.calls, rtl_ok, schedule, note)


@dataclass
class ExtractionReport:
    profiles: list[KernelProfile] = field(default_factory=list)
    plans: list[AcceleratorPlan] = field(default_factory=list)

    @property
    def recommended(self) -> list[AcceleratorPlan]:
        return [p for p in self.plans if p.worthwhile]

    def summary(self) -> str:
        lines = ["kernel profile:"]
        lines.extend(f"  {p}" for p in self.profiles[:5])
        lines.append("accelerator plans:")
        lines.extend(f"  {p.summary()}" for p in self.plans)
        return "\n".join(lines)


def extract_kernels(source: str, entry: str = "main",
                    min_share: float = 0.10) -> ExtractionReport:
    """The full closed loop: profile → select hot kernels → plan
    accelerators with transfer-cost awareness."""
    from ..riscv.compiler import CompileError
    from ..riscv.core import ExecutionFault

    program = cparse(source)
    report = ExtractionReport(profiles=profile_kernels(program, entry=entry))
    for profile in report.profiles:
        if profile.share < min_share or profile.function == entry:
            continue
        try:
            report.plans.append(plan_accelerator(program, profile.function,
                                                 entry=entry))
        except (CompileError, ExecutionFault, KeyError):
            continue
    return report
