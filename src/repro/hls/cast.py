"""AST for the mini-C subset.

The node set deliberately includes constructs that are *not* HLS-compatible
(malloc, free, recursion, pointers, unbounded loops) — the compatibility
checker and the LLM repair loop need to see them to remove them, exactly as
in Fig. 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- types -------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    base: str                 # 'int' | 'unsigned' | 'char' | 'void' | 'bool'
    is_pointer: bool = False
    array_size: int | None = None   # None = scalar / unsized

    @property
    def is_array(self) -> bool:
        return self.array_size is not None

    def __str__(self) -> str:
        s = self.base
        if self.is_pointer:
            s += "*"
        if self.array_size is not None:
            s += f"[{self.array_size}]"
        return s


INT = CType("int")
UNSIGNED = CType("unsigned")
VOID = CType("void")


# -- expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class CExpr:
    pass


@dataclass(frozen=True)
class CNum(CExpr):
    value: int


@dataclass(frozen=True)
class CStr(CExpr):
    text: str


@dataclass(frozen=True)
class CVar(CExpr):
    name: str
    line: int = 0


@dataclass(frozen=True)
class CUnary(CExpr):
    op: str                  # - ! ~ * & ++ -- (pre)
    operand: CExpr
    postfix: bool = False    # for ++/--


@dataclass(frozen=True)
class CBinary(CExpr):
    op: str
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class CTernary(CExpr):
    cond: CExpr
    if_true: CExpr
    if_false: CExpr


@dataclass(frozen=True)
class CAssign(CExpr):
    op: str                  # '=', '+=', ...
    target: CExpr            # CVar | CIndex | CDeref
    value: CExpr
    line: int = 0


@dataclass(frozen=True)
class CIndex(CExpr):
    base: CExpr
    index: CExpr
    line: int = 0


@dataclass(frozen=True)
class CCall(CExpr):
    func: str
    args: tuple[CExpr, ...]
    line: int = 0


@dataclass(frozen=True)
class CCast(CExpr):
    ctype: CType
    operand: CExpr


@dataclass(frozen=True)
class CSizeof(CExpr):
    ctype: CType


# -- statements -------------------------------------------------------------------


@dataclass(frozen=True)
class CStmt:
    pass


@dataclass(frozen=True)
class CDecl(CStmt):
    ctype: CType
    name: str
    init: CExpr | None = None
    line: int = 0


@dataclass(frozen=True)
class CExprStmt(CStmt):
    expr: CExpr
    line: int = 0


@dataclass(frozen=True)
class CBlock(CStmt):
    stmts: tuple[CStmt, ...]


@dataclass(frozen=True)
class CIf(CStmt):
    cond: CExpr
    then: CStmt
    other: CStmt | None = None
    line: int = 0


@dataclass(frozen=True)
class CFor(CStmt):
    init: CStmt | None
    cond: CExpr | None
    step: CExpr | None
    body: CStmt
    pragmas: tuple[str, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class CWhile(CStmt):
    cond: CExpr
    body: CStmt
    do_while: bool = False
    pragmas: tuple[str, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class CReturn(CStmt):
    value: CExpr | None = None
    line: int = 0


@dataclass(frozen=True)
class CBreak(CStmt):
    line: int = 0


@dataclass(frozen=True)
class CContinue(CStmt):
    line: int = 0


@dataclass(frozen=True)
class CPragmaStmt(CStmt):
    text: str
    line: int = 0


# -- top level -------------------------------------------------------------------------


@dataclass(frozen=True)
class CParam:
    ctype: CType
    name: str


@dataclass(frozen=True)
class CFunction:
    name: str
    ret: CType
    params: tuple[CParam, ...]
    body: CBlock
    pragmas: tuple[str, ...] = ()
    line: int = 0


@dataclass
class CProgram:
    functions: dict[str, CFunction] = field(default_factory=dict)
    globals: list[CDecl] = field(default_factory=list)

    def add(self, func: CFunction) -> None:
        self.functions[func.name] = func

    def function(self, name: str) -> CFunction:
        if name not in self.functions:
            raise KeyError(f"function '{name}' not defined")
        return self.functions[name]
