"""Parsing and representation of ``#pragma HLS`` directives.

The PPA-optimization stage of the repair loop (Fig. 2 stage 4) works by
editing these pragmas and re-estimating the schedule, exactly like the
paper's "LLM optimizes code segments with performance bottlenecks by
adjusting pragmas".
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass

from .cast import CBlock, CFor, CFunction, CProgram, CStmt, CWhile
from .transforms import rewrite_function


@dataclass(frozen=True)
class HlsPragma:
    kind: str                   # 'pipeline' | 'unroll' | 'array_partition' | ...
    options: tuple[tuple[str, str], ...] = ()
    raw: str = ""

    def option(self, name: str, default: str | None = None) -> str | None:
        for key, value in self.options:
            if key == name:
                return value
        return default

    def int_option(self, name: str, default: int) -> int:
        value = self.option(name)
        if value is None:
            return default
        try:
            return int(value)
        except ValueError:
            return default


_PRAGMA_RE = re.compile(r"#\s*pragma\s+HLS\s+(\w+)(.*)", re.IGNORECASE)


def parse_pragma(text: str) -> HlsPragma | None:
    """Parse one ``#pragma HLS ...`` line; returns None for non-HLS pragmas."""
    m = _PRAGMA_RE.match(text.strip())
    if m is None:
        return None
    kind = m.group(1).lower()
    opts: list[tuple[str, str]] = []
    for token in m.group(2).split():
        if "=" in token:
            key, _, value = token.partition("=")
            opts.append((key.lower(), value))
        else:
            opts.append((token.lower(), "1"))
    return HlsPragma(kind, tuple(opts), text.strip())


def loop_pragmas(pragmas: tuple[str, ...]) -> list[HlsPragma]:
    out: list[HlsPragma] = []
    for text in pragmas:
        parsed = parse_pragma(text)
        if parsed is not None:
            out.append(parsed)
    return out


def pipeline_ii(pragmas: tuple[str, ...]) -> int | None:
    """The initiation interval if the loop is pipelined, else None."""
    for pragma in loop_pragmas(pragmas):
        if pragma.kind == "pipeline":
            return pragma.int_option("ii", 1)
    return None


def unroll_factor(pragmas: tuple[str, ...]) -> int:
    for pragma in loop_pragmas(pragmas):
        if pragma.kind == "unroll":
            return max(1, pragma.int_option("factor", 0) or 1 << 20)  # full unroll
    return 1


# --------------------------------------------------------------------------
# Pragma editing (the optimizer's move set)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopSite:
    """Addressable location of one loop inside a function (path of child
    indices through the statement tree)."""

    function: str
    path: tuple[int, ...]

    def __str__(self) -> str:
        return f"{self.function}:loop@{'/'.join(map(str, self.path))}"


def find_loops(func: CFunction) -> list[tuple[LoopSite, CStmt]]:
    """All for/while loops in a function, with their addressable sites."""
    sites: list[tuple[LoopSite, CStmt]] = []

    def walk(stmt: CStmt, path: tuple[int, ...]) -> None:
        if isinstance(stmt, CBlock):
            for i, s in enumerate(stmt.stmts):
                walk(s, path + (i,))
        elif isinstance(stmt, (CFor, CWhile)):
            sites.append((LoopSite(func.name, path), stmt))
            walk(stmt.body, path + (0,))
        elif hasattr(stmt, "then"):
            walk(stmt.then, path + (0,))
            if getattr(stmt, "other", None) is not None:
                walk(stmt.other, path + (1,))

    walk(func.body, ())
    return sites


def set_loop_pragmas(program: CProgram, site: LoopSite,
                     pragmas: tuple[str, ...]) -> CProgram:
    """Return a program copy with the loop at ``site`` carrying ``pragmas``."""

    def edit(func: CFunction) -> CFunction:
        def walk(stmt: CStmt, path: tuple[int, ...]):
            if isinstance(stmt, CBlock):
                return CBlock(tuple(walk(s, path + (i,))
                                    for i, s in enumerate(stmt.stmts)))
            if isinstance(stmt, (CFor, CWhile)):
                if path == site.path:
                    return dataclasses.replace(stmt, pragmas=pragmas)
                body = walk(stmt.body, path + (0,))
                return dataclasses.replace(stmt, body=body)
            if hasattr(stmt, "then"):
                then = walk(stmt.then, path + (0,))
                other = getattr(stmt, "other", None)
                if other is not None:
                    other = walk(other, path + (1,))
                return dataclasses.replace(stmt, then=then, other=other)
            return stmt

        body = walk(func.body, ())
        assert isinstance(body, CBlock)
        return dataclasses.replace(func, body=body)

    return rewrite_function(program, site.function, edit)
