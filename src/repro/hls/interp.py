"""Interpreter for the mini-C subset, with CPU and FPGA execution modes.

The two modes are the heart of the HLSTester reproduction (Fig. 3): the same
program can behave differently after HLS because of

* **customized bit widths** — FPGA variables may be narrower than CPU ints,
  so arithmetic overflows where the CPU does not; and
* **pipeline hazards** — a loop marked ``#pragma HLS pipeline`` may read
  loop-carried scalars one iteration stale when the schedule ignores a
  feedback dependency.

:class:`Machine` exposes both as configuration, so the tester can diff CPU
behaviour against FPGA behaviour on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cast import (CAssign, CBinary, CBlock, CBreak, CCall, CCast, CContinue,
                   CDecl, CExpr, CExprStmt, CFor, CFunction, CIf, CIndex,
                   CNum, CPragmaStmt, CProgram, CReturn, CSizeof, CStmt,
                   CStr, CTernary, CType, CUnary, CVar, CWhile)


class CRuntimeError(Exception):
    def __init__(self, kind: str, message: str, line: int = 0):
        self.kind = kind
        self.line = line
        super().__init__(f"[C-RUN:{kind}] {message} (line {line})")


@dataclass
class Pointer:
    """A pointer into a heap block or array storage."""

    block: list
    offset: int = 0
    freed: bool = False


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


def _width_of(ctype: CType) -> int:
    return {"char": 8, "bool": 1}.get(ctype.base, 32)


def _wrap(value: int, width: int, signed: bool) -> int:
    mask = (1 << width) - 1
    value &= mask
    if signed and value & (1 << (width - 1)):
        value -= 1 << width
    return value


@dataclass
class TraceEvent:
    """One observed execution event, consumed by spectra collection."""

    kind: str          # 'line' | 'assign' | 'branch' | 'call'
    line: int
    name: str = ""
    value: int | None = None


@dataclass
class ExecutionResult:
    value: int | None
    output: list[str] = field(default_factory=list)
    steps: int = 0
    trace: list[TraceEvent] = field(default_factory=list)
    heap_blocks_leaked: int = 0


class Machine:
    """Executes mini-C programs.

    Parameters
    ----------
    mode:
        ``"cpu"`` — faithful 32-bit execution; ``"fpga"`` — apply
        ``width_overrides`` and pipeline-hazard semantics.
    width_overrides:
        variable name → bit width (FPGA custom bit widths).
    pipeline_hazard:
        when true, loops carrying a ``#pragma HLS pipeline`` read
        loop-carried scalars one iteration stale.
    trace:
        record :class:`TraceEvent` stream (needed for spectra collection).
    """

    MAX_STEPS = 2_000_000
    MAX_DEPTH = 128

    def __init__(self, program: CProgram, mode: str = "cpu",
                 width_overrides: dict[str, int] | None = None,
                 pipeline_hazard: bool = False,
                 trace: bool = False,
                 max_steps: int | None = None):
        if mode not in ("cpu", "fpga"):
            raise ValueError(f"unknown mode '{mode}'")
        self.program = program
        self.mode = mode
        self.width_overrides = width_overrides or {}
        self.pipeline_hazard = pipeline_hazard and mode == "fpga"
        self.trace_enabled = trace
        self.max_steps = max_steps or self.MAX_STEPS
        self.steps = 0
        self.depth = 0
        self.output: list[str] = []
        self.trace: list[TraceEvent] = []
        self.live_heap = 0
        self._globals: dict[str, object] = {}
        for decl in program.globals:
            self._globals[decl.name] = self._default_value(decl.ctype)

    # -- public API ---------------------------------------------------------------

    def call(self, name: str, *args) -> ExecutionResult:
        """Call a function with Python ints / lists (arrays) as arguments."""
        self.steps = 0
        self.output = []
        self.trace = []
        func = self.program.function(name)
        converted: list[object] = []
        for param, arg in zip(func.params, args):
            if param.ctype.is_array or param.ctype.is_pointer:
                if not isinstance(arg, list):
                    raise TypeError(f"argument '{param.name}' expects a list")
                converted.append(Pointer(arg))
            else:
                converted.append(int(arg))
        value = self._call_function(func, converted)
        return ExecutionResult(value=value, output=list(self.output),
                               steps=self.steps, trace=list(self.trace),
                               heap_blocks_leaked=self.live_heap)

    # -- helpers ---------------------------------------------------------------------

    def _default_value(self, ctype: CType):
        if ctype.is_array:
            size = ctype.array_size if ctype.array_size and ctype.array_size > 0 else 1
            return Pointer([0] * size)
        if ctype.is_pointer:
            return Pointer([], 0, freed=True)  # null-ish
        return 0

    def _tick(self, line: int = 0) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise CRuntimeError("timeout",
                                f"exceeded {self.max_steps} execution steps "
                                f"(unbounded loop?)", line)

    def _emit(self, kind: str, line: int, name: str = "",
              value: int | None = None) -> None:
        if self.trace_enabled:
            self.trace.append(TraceEvent(kind, line, name, value))

    def _var_width(self, name: str, ctype: CType | None) -> tuple[int, bool]:
        if self.mode == "fpga" and name in self.width_overrides:
            return self.width_overrides[name], True
        if ctype is None:
            return 32, True
        return _width_of(ctype), ctype.base not in ("unsigned", "bool")

    # -- function invocation ---------------------------------------------------------------

    def _call_function(self, func: CFunction, args: list[object]):
        if len(args) != len(func.params):
            raise CRuntimeError("arity",
                                f"'{func.name}' expects {len(func.params)} args, "
                                f"got {len(args)}", func.line)
        self.depth += 1
        if self.depth > self.MAX_DEPTH:
            self.depth -= 1
            raise CRuntimeError("stack", f"recursion too deep in '{func.name}'",
                                func.line)
        env: dict[str, object] = {}
        types: dict[str, CType] = {}
        for param, arg in zip(func.params, args):
            env[param.name] = arg
            types[param.name] = param.ctype
        self._emit("call", func.line, func.name)
        try:
            self._exec_stmt(func.body, env, types)
        except _Return as ret:
            return ret.value
        finally:
            self.depth -= 1
        return None

    # -- statements ------------------------------------------------------------------------------

    def _exec_stmt(self, stmt: CStmt, env: dict, types: dict) -> None:
        if isinstance(stmt, CBlock):
            for s in stmt.stmts:
                self._exec_stmt(s, env, types)
        elif isinstance(stmt, CDecl):
            self._tick(stmt.line)
            self._emit("line", stmt.line)
            if stmt.ctype.is_array:
                size = stmt.ctype.array_size
                if size is None or size < 0:
                    raise CRuntimeError("decl",
                                        f"array '{stmt.name}' has no constant size",
                                        stmt.line)
                env[stmt.name] = Pointer([0] * size)
            elif stmt.init is not None:
                value = self._eval(stmt.init, env, types)
                if isinstance(value, Pointer):
                    env[stmt.name] = value
                else:
                    width, signed = self._var_width(stmt.name, stmt.ctype)
                    env[stmt.name] = _wrap(int(value), width, signed)
            else:
                env[stmt.name] = self._default_value(stmt.ctype)
            types[stmt.name] = stmt.ctype
        elif isinstance(stmt, CExprStmt):
            self._tick(stmt.line)
            self._emit("line", stmt.line)
            self._eval(stmt.expr, env, types)
        elif isinstance(stmt, CIf):
            self._tick(stmt.line)
            cond = self._as_int(self._eval(stmt.cond, env, types), stmt.line)
            self._emit("branch", stmt.line, value=1 if cond else 0)
            if cond:
                self._exec_stmt(stmt.then, env, types)
            elif stmt.other is not None:
                self._exec_stmt(stmt.other, env, types)
        elif isinstance(stmt, CFor):
            self._exec_for(stmt, env, types)
        elif isinstance(stmt, CWhile):
            self._exec_while(stmt, env, types)
        elif isinstance(stmt, CReturn):
            self._tick(stmt.line)
            self._emit("line", stmt.line)
            value = None
            if stmt.value is not None:
                value = self._eval(stmt.value, env, types)
            raise _Return(value)
        elif isinstance(stmt, CBreak):
            raise _Break()
        elif isinstance(stmt, CContinue):
            raise _Continue()
        elif isinstance(stmt, CPragmaStmt):
            pass
        else:
            raise CRuntimeError("exec", f"cannot execute {type(stmt).__name__}")

    def _loop_is_pipelined(self, pragmas: tuple[str, ...]) -> bool:
        return any("pipeline" in p.lower() for p in pragmas)

    def _carried_vars(self, body: CStmt) -> set[str]:
        """Scalars both read and written in the loop body (loop-carried)."""
        reads: set[str] = set()
        writes: set[str] = set()
        self._collect_rw(body, reads, writes)
        return reads & writes

    def _collect_rw(self, node, reads: set[str], writes: set[str]) -> None:
        if isinstance(node, CBlock):
            for s in node.stmts:
                self._collect_rw(s, reads, writes)
        elif isinstance(node, (CIf,)):
            self._collect_rw_expr(node.cond, reads)
            self._collect_rw(node.then, reads, writes)
            if node.other is not None:
                self._collect_rw(node.other, reads, writes)
        elif isinstance(node, (CFor,)):
            for part in (node.init, node.body):
                if part is not None:
                    self._collect_rw(part, reads, writes)
            for part in (node.cond, node.step):
                if part is not None:
                    self._collect_rw_expr(part, reads)
        elif isinstance(node, CWhile):
            self._collect_rw_expr(node.cond, reads)
            self._collect_rw(node.body, reads, writes)
        elif isinstance(node, CExprStmt):
            self._collect_rw_expr(node.expr, reads, writes)
        elif isinstance(node, CDecl) and node.init is not None:
            self._collect_rw_expr(node.init, reads)
            writes.add(node.name)
        elif isinstance(node, CReturn) and node.value is not None:
            self._collect_rw_expr(node.value, reads)

    def _collect_rw_expr(self, expr: CExpr, reads: set[str],
                         writes: set[str] | None = None) -> None:
        if isinstance(expr, CVar):
            reads.add(expr.name)
        elif isinstance(expr, CAssign):
            if isinstance(expr.target, CVar) and writes is not None:
                writes.add(expr.target.name)
                if expr.op != "=":
                    reads.add(expr.target.name)
            else:
                self._collect_rw_expr(expr.target, reads)
            self._collect_rw_expr(expr.value, reads, writes)
        elif isinstance(expr, CUnary):
            if expr.op in ("++", "--") and isinstance(expr.operand, CVar):
                reads.add(expr.operand.name)
                if writes is not None:
                    writes.add(expr.operand.name)
            else:
                self._collect_rw_expr(expr.operand, reads, writes)
        elif isinstance(expr, CBinary):
            self._collect_rw_expr(expr.left, reads, writes)
            self._collect_rw_expr(expr.right, reads, writes)
        elif isinstance(expr, CTernary):
            for e in (expr.cond, expr.if_true, expr.if_false):
                self._collect_rw_expr(e, reads, writes)
        elif isinstance(expr, CIndex):
            self._collect_rw_expr(expr.base, reads)
            self._collect_rw_expr(expr.index, reads, writes)
        elif isinstance(expr, CCall):
            for a in expr.args:
                self._collect_rw_expr(a, reads, writes)
        elif isinstance(expr, CCast):
            self._collect_rw_expr(expr.operand, reads, writes)

    def _exec_for(self, stmt: CFor, env: dict, types: dict) -> None:
        if stmt.init is not None:
            self._exec_stmt(stmt.init, env, types)
        hazard = self.pipeline_hazard and self._loop_is_pipelined(stmt.pragmas)
        carried = self._carried_vars(stmt.body) if hazard else set()
        stale: dict[str, object] = {}
        while True:
            self._tick(stmt.line)
            if stmt.cond is not None:
                if not self._as_int(self._eval(stmt.cond, env, types), stmt.line):
                    break
            snapshot = {v: env.get(v) for v in carried if v in env}
            if hazard and stale:
                exec_env = _HazardEnv(env, {v: stale[v] for v in carried
                                            if v in stale})
            else:
                exec_env = env
            try:
                self._exec_stmt(stmt.body, exec_env, types)
            except _Break:
                break
            except _Continue:
                pass
            stale = snapshot
            if stmt.step is not None:
                self._eval(stmt.step, env, types)

    def _exec_while(self, stmt: CWhile, env: dict, types: dict) -> None:
        first = True
        while True:
            self._tick(stmt.line)
            if not stmt.do_while or not first:
                if not self._as_int(self._eval(stmt.cond, env, types), stmt.line):
                    break
            elif stmt.do_while and first:
                pass
            try:
                self._exec_stmt(stmt.body, env, types)
            except _Break:
                break
            except _Continue:
                pass
            if stmt.do_while and first:
                first = False
                if not self._as_int(self._eval(stmt.cond, env, types), stmt.line):
                    break

    # -- expressions -------------------------------------------------------------------------------

    def _as_int(self, value, line: int) -> int:
        if isinstance(value, Pointer):
            return 0 if value.freed and not value.block else 1
        if value is None:
            raise CRuntimeError("value", "void value used in expression", line)
        return int(value)

    def _eval(self, expr: CExpr, env: dict, types: dict):
        self._tick()
        if isinstance(expr, CNum):
            return expr.value
        if isinstance(expr, CStr):
            return expr.text
        if isinstance(expr, CVar):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self._globals:
                return self._globals[expr.name]
            if expr.name == "NULL":
                return Pointer([], 0, freed=True)
            raise CRuntimeError("name", f"undefined variable '{expr.name}'", expr.line)
        if isinstance(expr, CAssign):
            return self._eval_assign(expr, env, types)
        if isinstance(expr, CUnary):
            return self._eval_unary(expr, env, types)
        if isinstance(expr, CBinary):
            return self._eval_binary(expr, env, types)
        if isinstance(expr, CTernary):
            cond = self._as_int(self._eval(expr.cond, env, types), 0)
            return self._eval(expr.if_true if cond else expr.if_false, env, types)
        if isinstance(expr, CIndex):
            ptr, idx = self._index_parts(expr, env, types)
            return ptr.block[ptr.offset + idx]
        if isinstance(expr, CCall):
            return self._eval_call(expr, env, types)
        if isinstance(expr, CCast):
            value = self._eval(expr.operand, env, types)
            if isinstance(value, Pointer):
                return value
            width = _width_of(expr.ctype)
            return _wrap(int(value), width, expr.ctype.base != "unsigned")
        if isinstance(expr, CSizeof):
            return 1 if expr.ctype.base in ("char", "bool") else 4
        raise CRuntimeError("eval", f"cannot evaluate {type(expr).__name__}")

    def _index_parts(self, expr: CIndex, env: dict, types: dict) -> tuple[Pointer, int]:
        base = self._eval(expr.base, env, types)
        if not isinstance(base, Pointer):
            raise CRuntimeError("deref", "indexing a non-array value", expr.line)
        if base.freed:
            raise CRuntimeError("useafterfree", "access to freed/null memory",
                                expr.line)
        idx = self._as_int(self._eval(expr.index, env, types), expr.line)
        pos = base.offset + idx
        if pos < 0 or pos >= len(base.block):
            raise CRuntimeError("bounds",
                                f"index {idx} out of bounds (size {len(base.block)})",
                                expr.line)
        return base, idx

    def _store_var(self, name: str, value, env: dict, types: dict, line: int):
        if isinstance(value, Pointer):
            env[name] = value
            return value
        width, signed = self._var_width(name, types.get(name))
        wrapped = _wrap(int(value), width, signed)
        if isinstance(env, _HazardEnv):
            env.store(name, wrapped)
        else:
            env[name] = wrapped
        self._emit("assign", line, name, wrapped)
        return wrapped

    def _eval_assign(self, expr: CAssign, env: dict, types: dict):
        value = self._eval(expr.value, env, types)
        if expr.op != "=":
            binop = expr.op[:-1]
            current = self._eval(expr.target, env, types)
            value = self._apply_binop(binop, self._as_int(current, expr.line),
                                      self._as_int(value, expr.line), expr.line)
        if isinstance(expr.target, CVar):
            return self._store_var(expr.target.name, value, env, types, expr.line)
        if isinstance(expr.target, CIndex):
            ptr, idx = self._index_parts(expr.target, env, types)
            stored = _wrap(int(value), 32, True) if not isinstance(value, Pointer) \
                else value
            ptr.block[ptr.offset + idx] = stored
            self._emit("assign", expr.line, "<mem>",
                       stored if isinstance(stored, int) else None)
            return stored
        if isinstance(expr.target, CUnary) and expr.target.op == "*":
            ptr = self._eval(expr.target.operand, env, types)
            if not isinstance(ptr, Pointer) or ptr.freed:
                raise CRuntimeError("deref", "write through invalid pointer",
                                    expr.line)
            if ptr.offset >= len(ptr.block):
                raise CRuntimeError("bounds", "pointer write out of bounds",
                                    expr.line)
            ptr.block[ptr.offset] = _wrap(int(value), 32, True)
            return ptr.block[ptr.offset]
        raise CRuntimeError("assign", "unsupported assignment target", expr.line)

    def _eval_unary(self, expr: CUnary, env: dict, types: dict):
        if expr.op in ("++", "--"):
            if not isinstance(expr.operand, CVar):
                raise CRuntimeError("assign", "++/-- needs a variable", 0)
            name = expr.operand.name
            old = self._as_int(self._eval(expr.operand, env, types), 0)
            new = old + (1 if expr.op == "++" else -1)
            self._store_var(name, new, env, types, 0)
            return old if expr.postfix else _wrap(new, 32, True)
        value = self._eval(expr.operand, env, types)
        if expr.op == "*":
            if not isinstance(value, Pointer):
                raise CRuntimeError("deref", "dereferencing a non-pointer", 0)
            if value.freed:
                raise CRuntimeError("useafterfree", "read through freed pointer", 0)
            if value.offset >= len(value.block):
                raise CRuntimeError("bounds", "pointer read out of bounds", 0)
            return value.block[value.offset]
        if expr.op == "&":
            if isinstance(value, Pointer):
                return value
            raise CRuntimeError("addr", "address-of scalar locals is not supported "
                                "by the mini-C subset", 0)
        iv = self._as_int(value, 0)
        if expr.op == "-":
            return _wrap(-iv, 32, True)
        if expr.op == "~":
            return _wrap(~iv, 32, True)
        if expr.op == "!":
            return 0 if iv else 1
        raise CRuntimeError("eval", f"unary '{expr.op}' unsupported", 0)

    def _apply_binop(self, op: str, a: int, b: int, line: int) -> int:
        if op == "+":
            return _wrap(a + b, 32, True)
        if op == "-":
            return _wrap(a - b, 32, True)
        if op == "*":
            return _wrap(a * b, 32, True)
        if op in ("/", "%"):
            if b == 0:
                raise CRuntimeError("divzero", "division by zero", line)
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            if op == "/":
                return _wrap(q, 32, True)
            return _wrap(a - q * b, 32, True)
        if op == "<<":
            return _wrap(a << (b & 31), 32, True)
        if op == ">>":
            return _wrap(a >> (b & 31), 32, True)
        if op == "&":
            return _wrap(a & b, 32, True)
        if op == "|":
            return _wrap(a | b, 32, True)
        if op == "^":
            return _wrap(a ^ b, 32, True)
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "<":
            return int(a < b)
        if op == "<=":
            return int(a <= b)
        if op == ">":
            return int(a > b)
        if op == ">=":
            return int(a >= b)
        raise CRuntimeError("eval", f"binary '{op}' unsupported", line)

    def _eval_binary(self, expr: CBinary, env: dict, types: dict):
        if expr.op == "&&":
            left = self._as_int(self._eval(expr.left, env, types), 0)
            if not left:
                return 0
            return 1 if self._as_int(self._eval(expr.right, env, types), 0) else 0
        if expr.op == "||":
            left = self._as_int(self._eval(expr.left, env, types), 0)
            if left:
                return 1
            return 1 if self._as_int(self._eval(expr.right, env, types), 0) else 0
        a = self._eval(expr.left, env, types)
        b = self._eval(expr.right, env, types)
        if isinstance(a, Pointer) and isinstance(b, int):
            return Pointer(a.block, a.offset + b, a.freed)
        if isinstance(a, int) and isinstance(b, Pointer):
            return Pointer(b.block, b.offset + a, b.freed)
        return self._apply_binop(expr.op, self._as_int(a, 0), self._as_int(b, 0), 0)

    def _eval_call(self, expr: CCall, env: dict, types: dict):
        name = expr.func
        if name == "malloc":
            size = self._as_int(self._eval(expr.args[0], env, types), expr.line)
            count = max(0, size // 4) or max(0, size)
            self.live_heap += 1
            return Pointer([0] * count)
        if name == "calloc":
            n = self._as_int(self._eval(expr.args[0], env, types), expr.line)
            self.live_heap += 1
            return Pointer([0] * max(0, n))
        if name == "free":
            ptr = self._eval(expr.args[0], env, types)
            if isinstance(ptr, Pointer):
                if ptr.freed:
                    raise CRuntimeError("doublefree", "double free", expr.line)
                ptr.freed = True
                self.live_heap = max(0, self.live_heap - 1)
            return None
        if name == "printf":
            self._do_printf(expr.args, env, types)
            return 0
        if name in ("abs",):
            v = self._as_int(self._eval(expr.args[0], env, types), expr.line)
            return _wrap(abs(v), 32, True)
        if name in ("min", "max"):
            a = self._as_int(self._eval(expr.args[0], env, types), expr.line)
            b = self._as_int(self._eval(expr.args[1], env, types), expr.line)
            return min(a, b) if name == "min" else max(a, b)
        if name in ("assert",):
            v = self._as_int(self._eval(expr.args[0], env, types), expr.line)
            if not v:
                raise CRuntimeError("assert", "assertion failed", expr.line)
            return 0
        if name == "exit":
            raise _Return(self._as_int(self._eval(expr.args[0], env, types),
                                       expr.line) if expr.args else 0)
        if name in self.program.functions:
            args = [self._eval(a, env, types) for a in expr.args]
            return self._call_function(self.program.functions[name], args)
        raise CRuntimeError("call", f"call to undefined function '{name}'",
                            expr.line)

    def _do_printf(self, args: tuple[CExpr, ...], env: dict, types: dict) -> None:
        if not args:
            return
        fmt = self._eval(args[0], env, types)
        if not isinstance(fmt, str):
            self.output.append(str(fmt))
            return
        values = [self._eval(a, env, types) for a in args[1:]]
        out: list[str] = []
        i = 0
        vi = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch == "%" and i + 1 < len(fmt):
                j = i + 1
                while j < len(fmt) and fmt[j] in "0123456789.-+l":
                    j += 1
                spec = fmt[j] if j < len(fmt) else "%"
                i = j + 1
                if spec == "%":
                    out.append("%")
                    continue
                value = values[vi] if vi < len(values) else 0
                vi += 1
                if isinstance(value, Pointer):
                    out.append(f"<ptr+{value.offset}>")
                elif spec in ("d", "i", "u", "ld"):
                    out.append(str(value))
                elif spec == "x":
                    out.append(f"{int(value) & 0xFFFFFFFF:x}")
                elif spec == "c":
                    out.append(chr(int(value) & 0xFF))
                elif spec == "s":
                    out.append(str(value))
                else:
                    out.append(str(value))
            else:
                out.append(ch)
                i += 1
        text = "".join(out)
        for line in text.split("\n"):
            if line:
                self.output.append(line)


class _HazardEnv(dict):
    """Environment overlay: reads of stale vars see previous-iteration values,
    writes land in the real environment."""

    def __init__(self, real: dict, stale: dict):
        super().__init__()
        self.real = real
        self.stale = stale

    def __getitem__(self, key):
        if key in self.stale:
            return self.stale[key]
        return self.real[key]

    def __setitem__(self, key, value):
        self.real[key] = value

    def store(self, key, value):
        self.real[key] = value

    def __contains__(self, key):
        return key in self.real or key in self.stale

    def get(self, key, default=None):
        if key in self:
            return self[key]
        return default
