"""Analytic HLS scheduling and resource model.

Estimates latency (cycles), initiation intervals and resource usage for a
mini-C kernel under its pragmas — the QoR numbers the PPA-optimization stage
iterates on.  The model is a classical list-scheduling approximation:

* every operation class has a latency and a resource kind,
* an unpragma'd loop runs its body sequentially every iteration,
* ``unroll factor=F`` divides trip count and multiplies resources,
* ``pipeline II=k`` overlaps iterations: ``fill + (trips-1) * II`` cycles,
  with II inflated to the loop-carried dependency distance when the body
  has a feedback chain (the same dependency HLSTester later exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cast import (CAssign, CBinary, CBlock, CCall, CDecl, CExpr, CExprStmt,
                   CFor, CFunction, CIf, CIndex, CProgram, CReturn, CStmt,
                   CTernary, CUnary, CWhile)
from .compat import loop_bound
from .pragmas import pipeline_ii, unroll_factor

# Operation latencies in cycles (loosely Vitis-like defaults).
_OP_LATENCY = {"add": 1, "mul": 3, "div": 18, "mem": 2, "logic": 1, "cmp": 1}

_WHILE_ASSUMED_TRIPS = 64


@dataclass
class OpCounts:
    add: int = 0
    mul: int = 0
    div: int = 0
    mem: int = 0
    logic: int = 0
    cmp: int = 0

    def merged(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(*(getattr(self, f) + getattr(other, f)
                          for f in ("add", "mul", "div", "mem", "logic", "cmp")))

    def scaled(self, factor: int) -> "OpCounts":
        return OpCounts(*(getattr(self, f) * factor
                          for f in ("add", "mul", "div", "mem", "logic", "cmp")))

    @property
    def total(self) -> int:
        return self.add + self.mul + self.div + self.mem + self.logic + self.cmp

    def body_latency(self) -> int:
        """Approximate critical-path latency of one body execution."""
        weighted = (self.add * _OP_LATENCY["add"] + self.mul * _OP_LATENCY["mul"]
                    + self.div * _OP_LATENCY["div"] + self.mem * _OP_LATENCY["mem"]
                    + self.logic * _OP_LATENCY["logic"]
                    + self.cmp * _OP_LATENCY["cmp"])
        # Roughly half the ops are on the critical path.
        return max(1, weighted // 2 + 1)


@dataclass
class ScheduleReport:
    function: str
    latency_cycles: int
    ops: OpCounts
    resources: dict[str, int] = field(default_factory=dict)
    loop_details: list[dict] = field(default_factory=list)
    clock_ns: float = 10.0

    @property
    def runtime_us(self) -> float:
        return self.latency_cycles * self.clock_ns / 1000.0

    @property
    def dsp_count(self) -> int:
        return self.resources.get("mul", 0) * 1 + self.resources.get("div", 0) * 4

    @property
    def area_score(self) -> float:
        r = self.resources
        return (r.get("add", 0) * 1.0 + r.get("mul", 0) * 6.0
                + r.get("div", 0) * 24.0 + r.get("mem", 0) * 2.0
                + r.get("logic", 0) * 0.5)

    def summary(self) -> str:
        return (f"{self.function}: latency={self.latency_cycles} cycles "
                f"({self.runtime_us:.2f}us @ {self.clock_ns}ns) "
                f"area={self.area_score:.0f} dsp={self.dsp_count}")


def _count_expr(expr: CExpr, counts: OpCounts) -> None:
    if isinstance(expr, CBinary):
        if expr.op in ("+", "-"):
            counts.add += 1
        elif expr.op == "*":
            counts.mul += 1
        elif expr.op in ("/", "%"):
            counts.div += 1
        elif expr.op in ("==", "!=", "<", "<=", ">", ">="):
            counts.cmp += 1
        else:
            counts.logic += 1
        _count_expr(expr.left, counts)
        _count_expr(expr.right, counts)
    elif isinstance(expr, CUnary):
        if expr.op in ("++", "--"):
            counts.add += 1
        elif expr.op in ("~", "!"):
            counts.logic += 1
        _count_expr(expr.operand, counts)
    elif isinstance(expr, CTernary):
        counts.logic += 1
        for e in (expr.cond, expr.if_true, expr.if_false):
            _count_expr(e, counts)
    elif isinstance(expr, CAssign):
        if expr.op != "=":
            _count_expr(CBinary(expr.op[:-1], expr.target, expr.value), counts)
        else:
            _count_expr(expr.value, counts)
        if isinstance(expr.target, CIndex):
            counts.mem += 1
            _count_expr(expr.target.index, counts)
    elif isinstance(expr, CIndex):
        counts.mem += 1
        _count_expr(expr.index, counts)
    elif isinstance(expr, CCall):
        for a in expr.args:
            _count_expr(a, counts)


@dataclass
class _LoopModel:
    trips: int
    body: OpCounts
    ii: int | None
    unroll: int
    latency: int
    carried_dependency: bool


class Scheduler:
    def __init__(self, program: CProgram, clock_ns: float = 10.0):
        self.program = program
        self.clock_ns = clock_ns
        self.loop_details: list[dict] = []
        self.resources: dict[str, int] = {}

    def schedule(self, function: str) -> ScheduleReport:
        func = self.program.function(function)
        self.loop_details = []
        self.resources = {}
        total_ops = OpCounts()
        latency = self._stmt_latency(func.body, total_ops, depth=0)
        self._bump_resources(total_ops, 1)
        return ScheduleReport(function, max(1, latency), total_ops,
                              dict(self.resources), list(self.loop_details),
                              self.clock_ns)

    def _bump_resources(self, ops: OpCounts, parallelism: int) -> None:
        for kind in ("add", "mul", "div", "mem", "logic"):
            needed = min(getattr(ops, kind), max(1, parallelism))
            if getattr(ops, kind) > 0:
                needed = max(1, needed)
            self.resources[kind] = max(self.resources.get(kind, 0), needed)

    def _stmt_latency(self, stmt: CStmt, ops: OpCounts, depth: int) -> int:
        if isinstance(stmt, CBlock):
            return sum(self._stmt_latency(s, ops, depth) for s in stmt.stmts)
        if isinstance(stmt, (CDecl,)):
            if stmt.init is not None:
                local = OpCounts()
                _count_expr(stmt.init, local)
                for f in ("add", "mul", "div", "mem", "logic", "cmp"):
                    setattr(ops, f, getattr(ops, f) + getattr(local, f))
                return local.body_latency()
            return 0
        if isinstance(stmt, CExprStmt):
            local = OpCounts()
            _count_expr(stmt.expr, local)
            for f in ("add", "mul", "div", "mem", "logic", "cmp"):
                setattr(ops, f, getattr(ops, f) + getattr(local, f))
            return local.body_latency()
        if isinstance(stmt, CIf):
            local = OpCounts()
            _count_expr(stmt.cond, local)
            ops.cmp += local.cmp
            then = self._stmt_latency(stmt.then, ops, depth)
            other = self._stmt_latency(stmt.other, ops, depth) \
                if stmt.other is not None else 0
            return 1 + max(then, other)
        if isinstance(stmt, CFor):
            return self._loop_latency(stmt, ops, depth,
                                      loop_bound(stmt) or _WHILE_ASSUMED_TRIPS)
        if isinstance(stmt, CWhile):
            return self._loop_latency(stmt, ops, depth, _WHILE_ASSUMED_TRIPS)
        if isinstance(stmt, CReturn):
            if stmt.value is not None:
                local = OpCounts()
                _count_expr(stmt.value, local)
                for f in ("add", "mul", "div", "mem", "logic", "cmp"):
                    setattr(ops, f, getattr(ops, f) + getattr(local, f))
                return local.body_latency()
            return 0
        return 0

    def _loop_latency(self, stmt, ops: OpCounts, depth: int, trips: int) -> int:
        body_ops = OpCounts()
        body_latency = self._stmt_latency(stmt.body, body_ops, depth + 1)
        body_latency = max(body_latency, body_ops.body_latency())
        ii = pipeline_ii(stmt.pragmas)
        factor = min(unroll_factor(stmt.pragmas), max(1, trips))
        carried = self._has_carried_dependency(stmt)

        effective_trips = max(1, -(-trips // factor))
        self._bump_resources(body_ops.scaled(factor), factor)
        for f in ("add", "mul", "div", "mem", "logic", "cmp"):
            setattr(ops, f, getattr(ops, f) + getattr(body_ops, f) * trips)

        if ii is not None:
            # Loop-carried dependencies force the II up to the body latency.
            achieved_ii = max(ii, body_latency if carried else ii)
            latency = body_latency + max(0, effective_trips - 1) * achieved_ii
            self.loop_details.append({
                "line": stmt.line, "trips": trips, "unroll": factor,
                "requested_ii": ii, "achieved_ii": achieved_ii,
                "body_latency": body_latency, "latency": latency,
                "carried_dependency": carried})
            return latency + 2  # loop entry/exit overhead
        latency = effective_trips * (body_latency + 1)
        self.loop_details.append({
            "line": stmt.line, "trips": trips, "unroll": factor,
            "requested_ii": None, "achieved_ii": None,
            "body_latency": body_latency, "latency": latency,
            "carried_dependency": carried})
        return latency + 2

    def _has_carried_dependency(self, stmt) -> bool:
        from .interp import Machine
        # Reuse the interpreter's read/write analysis on scalars.
        reads: set[str] = set()
        writes: set[str] = set()
        Machine.__new__(Machine)._collect_rw(stmt.body, reads, writes)
        loop_var: set[str] = set()
        if isinstance(stmt, CFor) and isinstance(stmt.init, CDecl):
            loop_var.add(stmt.init.name)
        return bool((reads & writes) - loop_var)


def estimate_schedule(program: CProgram, function: str,
                      clock_ns: float = 10.0) -> ScheduleReport:
    """Latency/resource estimate for one kernel under its current pragmas."""
    return Scheduler(program, clock_ns).schedule(function)
