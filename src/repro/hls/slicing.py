"""Backward slicing on mini-C kernels — stage 2 of HLSTester (Fig. 3).

Computes the set of *key variables* that can influence the slicing criterion
(the return value and any array parameters written by the kernel), via a
fixed-point over data and control dependencies.  Instrumentation (stage 3)
then only monitors these variables, keeping spectra small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cast import (CAssign, CBinary, CBlock, CCall, CCast, CDecl, CExpr,
                   CExprStmt, CFor, CFunction, CIf, CIndex, CProgram,
                   CReturn, CStmt, CTernary, CUnary, CVar, CWhile)


@dataclass
class SliceResult:
    criterion: set[str]
    key_variables: set[str] = field(default_factory=set)
    relevant_lines: set[int] = field(default_factory=set)

    def is_key(self, name: str) -> bool:
        return name in self.key_variables


def _expr_vars(expr: CExpr | None, out: set[str]) -> None:
    if expr is None:
        return
    if isinstance(expr, CVar):
        out.add(expr.name)
    elif isinstance(expr, CBinary):
        _expr_vars(expr.left, out)
        _expr_vars(expr.right, out)
    elif isinstance(expr, CUnary):
        _expr_vars(expr.operand, out)
    elif isinstance(expr, CTernary):
        for e in (expr.cond, expr.if_true, expr.if_false):
            _expr_vars(e, out)
    elif isinstance(expr, CAssign):
        _expr_vars(expr.target, out)
        _expr_vars(expr.value, out)
    elif isinstance(expr, CIndex):
        _expr_vars(expr.base, out)
        _expr_vars(expr.index, out)
    elif isinstance(expr, CCall):
        for a in expr.args:
            _expr_vars(a, out)
    elif isinstance(expr, CCast):
        _expr_vars(expr.operand, out)


@dataclass
class _Assignment:
    target: str
    sources: set[str]
    controls: set[str]   # variables in enclosing branch/loop conditions
    line: int


def _collect_assignments(stmt: CStmt, controls: set[str],
                         out: list[_Assignment]) -> None:
    if isinstance(stmt, CBlock):
        for s in stmt.stmts:
            _collect_assignments(s, controls, out)
    elif isinstance(stmt, CDecl):
        if stmt.init is not None:
            sources: set[str] = set()
            _expr_vars(stmt.init, sources)
            out.append(_Assignment(stmt.name, sources, set(controls), stmt.line))
    elif isinstance(stmt, CExprStmt):
        _collect_expr_assignments(stmt.expr, controls, out, stmt.line)
    elif isinstance(stmt, CIf):
        cond_vars: set[str] = set()
        _expr_vars(stmt.cond, cond_vars)
        inner = controls | cond_vars
        _collect_assignments(stmt.then, inner, out)
        if stmt.other is not None:
            _collect_assignments(stmt.other, inner, out)
    elif isinstance(stmt, CFor):
        cond_vars = set()
        _expr_vars(stmt.cond, cond_vars)
        inner = controls | cond_vars
        if stmt.init is not None:
            _collect_assignments(stmt.init, controls, out)
        if stmt.step is not None:
            _collect_expr_assignments(stmt.step, inner, out, stmt.line)
        _collect_assignments(stmt.body, inner, out)
    elif isinstance(stmt, CWhile):
        cond_vars = set()
        _expr_vars(stmt.cond, cond_vars)
        _collect_assignments(stmt.body, controls | cond_vars, out)


def _collect_expr_assignments(expr: CExpr, controls: set[str],
                              out: list[_Assignment], line: int) -> None:
    if isinstance(expr, CAssign):
        sources: set[str] = set()
        _expr_vars(expr.value, sources)
        if expr.op != "=":
            _expr_vars(expr.target, sources)
        if isinstance(expr.target, CVar):
            out.append(_Assignment(expr.target.name, sources, set(controls),
                                   line))
        elif isinstance(expr.target, CIndex) and isinstance(expr.target.base,
                                                            CVar):
            idx_vars: set[str] = set()
            _expr_vars(expr.target.index, idx_vars)
            out.append(_Assignment(expr.target.base.name,
                                   sources | idx_vars, set(controls), line))
        _collect_expr_assignments(expr.value, controls, out, line)
    elif isinstance(expr, CUnary) and expr.op in ("++", "--"):
        if isinstance(expr.operand, CVar):
            out.append(_Assignment(expr.operand.name, {expr.operand.name},
                                   set(controls), line))
    elif isinstance(expr, CBinary):
        _collect_expr_assignments(expr.left, controls, out, line)
        _collect_expr_assignments(expr.right, controls, out, line)
    elif isinstance(expr, CCall):
        for a in expr.args:
            _collect_expr_assignments(a, controls, out, line)


def _collect_returns(stmt: CStmt, out: set[str]) -> None:
    if isinstance(stmt, CBlock):
        for s in stmt.stmts:
            _collect_returns(s, out)
    elif isinstance(stmt, CReturn):
        _expr_vars(stmt.value, out)
    elif isinstance(stmt, CIf):
        _collect_returns(stmt.then, out)
        if stmt.other is not None:
            _collect_returns(stmt.other, out)
    elif isinstance(stmt, (CFor, CWhile)):
        _collect_returns(stmt.body, out)


def backward_slice(program: CProgram, function: str,
                   criterion: set[str] | None = None) -> SliceResult:
    """Key variables influencing the kernel's observable outputs."""
    func = program.function(function)
    if criterion is None:
        criterion = set()
        _collect_returns(func.body, criterion)
        # Output arrays: any array/pointer parameter counts as observable.
        for param in func.params:
            if param.ctype.is_array or param.ctype.is_pointer:
                criterion.add(param.name)

    assignments: list[_Assignment] = []
    _collect_assignments(func.body, set(), assignments)

    key = set(criterion)
    lines: set[int] = set()
    changed = True
    while changed:
        changed = False
        for assign in assignments:
            if assign.target in key:
                new = (assign.sources | assign.controls) - key
                if new:
                    key |= new
                    changed = True
                if assign.line not in lines:
                    lines.add(assign.line)
                    changed = True
    result = SliceResult(criterion=set(criterion), key_variables=key,
                         relevant_lines=lines)
    return result
