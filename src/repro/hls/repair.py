"""The LLM-aided HLS program-repair framework of Fig. 2.

Four stages, exactly as the paper lays them out:

1. **Preprocessing** — compile with the (simulated) HLS tool; it reports a
   subset of the incompatibilities.  The LLM scans for *latent* issues the
   compiler misses; its hit rate depends on the capability profile.
2. **Repair with RAG** — for each detected issue, retrieve a correction
   template from the external library and apply it.  Without RAG, the model
   picks templates from parametric memory and often picks wrong.
3. **Equivalence verification** — interpreter-vs-interpreter check on random
   vectors (plus C-to-RTL co-simulation when the kernel is synthesizable).
4. **PPA optimization** — the LLM adjusts loop pragmas on the hottest loops
   and keeps configurations that improve estimated latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..llm.model import SimulatedLLM, _stable_seed
from ..llm.rag import VectorIndex, build_template_index
from ..obs import get_tracer
from .cast import CProgram
from .compat import CompatReport, HlsIssue, check_compatibility
from .cosim import CosimReport, c_rtl_cosim, cpu_fpga_cosim, _random_args
from .cparser import CParseError, cparse
from .cprinter import program_str
from .interp import CRuntimeError, Machine
from .pragmas import find_loops, set_loop_pragmas
from .schedule import ScheduleReport, estimate_schedule
from .transforms import TEMPLATES, RepairTemplate, templates_for


@dataclass
class StageLog:
    stage: str
    detail: str


@dataclass
class RepairResult:
    success: bool
    original_source: str
    repaired_source: str
    issues_found: list[HlsIssue] = field(default_factory=list)
    issues_fixed: list[str] = field(default_factory=list)
    issues_remaining: list[str] = field(default_factory=list)
    latent_missed: int = 0
    equivalence: CosimReport | None = None
    schedule_before: ScheduleReport | None = None
    schedule_after: ScheduleReport | None = None
    log: list[StageLog] = field(default_factory=list)
    rounds: int = 0

    @property
    def latency_improvement(self) -> float:
        if not self.schedule_before or not self.schedule_after:
            return 0.0
        before = self.schedule_before.latency_cycles
        after = self.schedule_after.latency_cycles
        if before <= 0:
            return 0.0
        return (before - after) / before

    def report(self) -> str:
        lines = [f"repair {'SUCCEEDED' if self.success else 'FAILED'} "
                 f"after {self.rounds} round(s)"]
        lines.append(f"  issues: {len(self.issues_found)} found, "
                     f"{len(self.issues_fixed)} fixed, "
                     f"{len(self.issues_remaining)} remaining, "
                     f"{self.latent_missed} latent missed")
        if self.equivalence is not None:
            lines.append(f"  {self.equivalence.summary()}")
        if self.schedule_before and self.schedule_after:
            lines.append(
                f"  latency: {self.schedule_before.latency_cycles} -> "
                f"{self.schedule_after.latency_cycles} cycles "
                f"({self.latency_improvement:+.0%})")
        return "\n".join(lines)


# Pragma configurations the optimizer tries on the hottest loop.
_PRAGMA_MOVES: tuple[tuple[str, ...], ...] = (
    ("#pragma HLS pipeline II=1",),
    ("#pragma HLS pipeline II=2",),
    ("#pragma HLS unroll factor=2",),
    ("#pragma HLS unroll factor=4",),
    ("#pragma HLS pipeline II=1", "#pragma HLS unroll factor=2"),
)


class HlsRepairEngine:
    """Drives the four-stage repair loop for one kernel."""

    def __init__(self, llm: SimulatedLLM, use_rag: bool = True,
                 max_rounds: int = 3, seed: int = 0,
                 optimize_ppa: bool = True):
        self.llm = llm
        self.use_rag = use_rag
        self.max_rounds = max_rounds
        self.seed = seed
        self.optimize_ppa = optimize_ppa
        self.template_index: VectorIndex = build_template_index(TEMPLATES)

    # -- stage 1: preprocessing ------------------------------------------------

    def _detect_issues(self, report: CompatReport,
                       rng: random.Random) -> tuple[list[HlsIssue], int]:
        """Tool-visible issues plus LLM-detected latent issues."""
        detected = list(report.tool_visible)
        missed = 0
        detect_p = (0.35 + 0.55 * self.llm.profile.semantic_reliability
                    * self.llm.profile.c_strength)
        for issue in report.latent:
            if rng.random() < detect_p:
                detected.append(issue)
            else:
                missed += 1
        return detected, missed

    # -- stage 2: template selection -----------------------------------------------

    def _choose_template(self, issue: HlsIssue,
                         rng: random.Random) -> RepairTemplate | None:
        correct = templates_for(issue.code)
        if self.use_rag:
            hits = self.template_index.query(
                f"{issue.code} {issue.message}", top_k=1)
            if hits and rng.random() < 0.95:
                template = hits[0].document.payload
                assert isinstance(template, RepairTemplate)
                return template
            return correct[0] if correct else None
        # Parametric memory: often grabs a plausible-but-wrong template.
        p_correct = 0.30 + 0.45 * self.llm.profile.c_strength
        if correct and rng.random() < p_correct:
            return correct[0]
        return rng.choice(TEMPLATES)

    # -- main entry ---------------------------------------------------------------------

    def repair(self, source: str, top: str, clock_ns: float = 10.0,
               budget: Budget | None = None) -> RepairResult:
        tracer = get_tracer()
        with tracer.span("hls.repair", top=top,
                         model=self.llm.profile.name,
                         use_rag=self.use_rag) as repair_span:
            result = self._repair_impl(source, top, clock_ns, tracer, budget)
            repair_span.set(success=result.success, rounds=result.rounds,
                            issues_found=len(result.issues_found),
                            issues_fixed=len(result.issues_fixed))
        return result

    def _repair_impl(self, source: str, top: str, clock_ns: float,
                     tracer, budget: Budget | None = None) -> RepairResult:
        rng = random.Random(_stable_seed(self.seed, self.llm.profile.name,
                                         top, len(source), self.use_rag))
        result = RepairResult(success=False, original_source=source,
                              repaired_source=source)
        record = RunRecord(flow="hls.repair", problem_id=top,
                           model=self.llm.profile.name)
        result.run_record = record
        try:
            program = cparse(source)
        except CParseError as exc:
            result.log.append(StageLog("preprocess", f"parse failed: {exc}"))
            return result

        original_program = program
        fixed_ids: list[str] = []
        # The repair rounds run on the LoopKernel with ``span_name=None``:
        # the ``hls.repair.round`` span below keeps its round_no creation
        # attribute and stays a direct child of ``hls.repair``.
        st = {"program": program}

        def step(state: RoundState, _sp) -> str | None:
            round_no = state.round_no
            result.rounds = round_no
            with tracer.span("hls.repair.round", round_no=round_no) as sp:
                report = check_compatibility(st["program"], top)
                record.tool_evaluations += 1
                result.log.append(StageLog(
                    "preprocess", f"round {round_no}: {report.error_log()}"))
                detected, missed = self._detect_issues(report, rng)
                if round_no == 1:
                    result.issues_found = list(detected)
                    result.latent_missed = missed
                sp.set(issues=len(report.issues), detected=len(detected),
                       latent_missed=missed)
                if not report.issues:
                    return "clean"
                if not detected:
                    result.log.append(StageLog(
                        "repair",
                        "issues remain but none detected this round"))
                    return "undetected"
                progress = False
                fixed_this_round = 0
                for issue in detected:
                    template = self._choose_template(issue, rng)
                    if template is None:
                        result.log.append(StageLog(
                            "repair", f"no template for {issue.code}"))
                        continue
                    # Application success depends on model capability.
                    apply_p = 0.55 \
                        + 0.4 * self.llm.profile.semantic_reliability
                    if rng.random() > apply_p:
                        result.log.append(StageLog(
                            "repair", f"{template.template_id}: model "
                                      f"application failed for {issue.code}"))
                        continue
                    record.generations += 1
                    outcome = template.apply(st["program"], issue)
                    if outcome.applied:
                        st["program"] = outcome.program
                        progress = True
                        fixed_this_round += 1
                        fixed_ids.append(
                            f"{issue.code}:{template.template_id}")
                        result.log.append(StageLog(
                            "repair",
                            f"{template.template_id}: {outcome.note}"))
                    else:
                        result.log.append(StageLog(
                            "repair", f"{template.template_id}: not "
                                      f"applicable ({outcome.note})"))
                sp.set(fixed=fixed_this_round)
                if not progress:
                    return "no-progress"
            return None

        LoopKernel(step=step, record=record, budget=budget,
                   max_rounds=self.max_rounds, span_name=None).run()
        program = st["program"]

        final_report = check_compatibility(program, top)
        result.issues_fixed = fixed_ids
        result.issues_remaining = [str(i) for i in final_report.issues]
        result.repaired_source = program_str(program)

        # Stage 3: equivalence verification.
        with tracer.span("hls.verify") as sp:
            result.equivalence = self._verify_equivalence(
                original_program, program, top, rng)
            sp.set(equivalent=result.equivalence.equivalent,
                   vectors=result.equivalence.vectors_run)
        result.log.append(StageLog("verify", result.equivalence.summary()))

        compatible = final_report.compatible
        equivalent = result.equivalence.equivalent \
            or bool(result.equivalence.skipped_reason)
        result.success = compatible and equivalent

        # Stage 4: PPA optimization (only for successfully repaired kernels).
        if result.success and self.optimize_ppa:
            with tracer.span("hls.ppa") as sp:
                program, before, after = self._optimize_ppa(
                    program, top, clock_ns, rng, result)
                sp.set(latency_before=before.latency_cycles,
                       latency_after=after.latency_cycles)
            result.schedule_before = before
            result.schedule_after = after
            result.repaired_source = program_str(program)
        return result

    # -- stage 3 ------------------------------------------------------------------------------

    def _verify_equivalence(self, original: CProgram, repaired: CProgram,
                            top: str, rng: random.Random) -> CosimReport:
        report = CosimReport()
        if top not in original.functions or top not in repaired.functions:
            report.skipped_reason = "kernel function missing"
            return report
        func = original.functions[top]
        # Stimulus must satisfy both signatures: the repair may have bound
        # pointer parameters to explicit array sizes, so size arrays to the
        # larger of the two declarations.
        repaired_func = repaired.functions[top]
        import dataclasses as _dc
        merged_params = []
        for old_p, new_p in zip(func.params, repaired_func.params):
            old_size = old_p.ctype.array_size or 0
            new_size = new_p.ctype.array_size or 0
            size = max(old_size, new_size)
            if size > 0:
                merged_params.append(_dc.replace(
                    old_p, ctype=_dc.replace(old_p.ctype, array_size=size,
                                             is_pointer=False)))
            else:
                merged_params.append(old_p)
        sized_func = _dc.replace(func, params=tuple(merged_params))
        cpu_old = Machine(original, mode="cpu")
        cpu_new = Machine(repaired, mode="cpu")
        for _ in range(24):
            args = _random_args(sized_func, rng)
            import copy
            try:
                expected = cpu_old.call(top, *copy.deepcopy(args)).value
            except CRuntimeError:
                report.runtime_errors += 1
                continue
            try:
                actual = cpu_new.call(top, *copy.deepcopy(args)).value
            except CRuntimeError as exc:
                report.vectors_run += 1
                from .cosim import CosimMismatch
                report.mismatches.append(CosimMismatch(
                    inputs={}, expected=expected, actual=None,
                    note=f"repaired kernel error: {exc.kind}"))
                continue
            report.vectors_run += 1
            if expected != actual:
                from .cosim import CosimMismatch
                report.mismatches.append(CosimMismatch(
                    inputs={p.name: a for p, a in zip(func.params, args)},
                    expected=expected, actual=actual))
        # Optional C-RTL leg when the repaired kernel is synthesizable.
        rtl_leg = c_rtl_cosim(repaired, top, vectors=16,
                              seed=rng.randrange(1 << 30))
        if not rtl_leg.skipped_reason:
            report.vectors_run += rtl_leg.vectors_run
            report.mismatches.extend(rtl_leg.mismatches)
        return report

    # -- stage 4 --------------------------------------------------------------------------------

    def _optimize_ppa(self, program: CProgram, top: str, clock_ns: float,
                      rng: random.Random, result: RepairResult):
        before = estimate_schedule(program, top, clock_ns)
        func = program.function(top)
        loops = find_loops(func)
        if not loops:
            return program, before, before
        # Hottest loop = largest contribution per the schedule loop details.
        details = sorted(before.loop_details, key=lambda d: -d["latency"])
        hottest_line = details[0]["line"] if details else loops[0][1].line
        target_site = None
        for site, loop in loops:
            if loop.line == hottest_line:
                target_site = site
                break
        if target_site is None:
            target_site = loops[0][0]

        best_program = program
        best = before
        # The LLM proposes pragma moves; capability gates how many it tries.
        n_moves = max(1, round(len(_PRAGMA_MOVES)
                               * self.llm.profile.semantic_reliability))
        moves = list(_PRAGMA_MOVES)
        rng.shuffle(moves)
        for pragmas in moves[:n_moves]:
            candidate = set_loop_pragmas(best_program if best is before
                                         else program, target_site, pragmas)
            try:
                candidate_sched = estimate_schedule(candidate, top, clock_ns)
            except Exception:
                continue
            area_budget = before.area_score * 3.0 + 10
            if candidate_sched.latency_cycles < best.latency_cycles \
                    and candidate_sched.area_score <= area_budget:
                best = candidate_sched
                best_program = candidate
                result.log.append(StageLog(
                    "ppa", f"accepted {'; '.join(pragmas)} -> "
                           f"{candidate_sched.latency_cycles} cycles"))
            else:
                result.log.append(StageLog(
                    "ppa", f"rejected {'; '.join(pragmas)} "
                           f"({candidate_sched.latency_cycles} cycles, "
                           f"area {candidate_sched.area_score:.0f})"))
        return best_program, before, best


def repair_source(source: str, top: str, model: str = "gpt-4",
                  use_rag: bool = True, seed: int = 0) -> RepairResult:
    """One-call convenience wrapper around :class:`HlsRepairEngine`."""
    engine = HlsRepairEngine(SimulatedLLM(model, seed=seed), use_rag=use_rag,
                             seed=seed)
    return engine.repair(source, top)
