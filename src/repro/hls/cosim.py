"""Co-simulation: C interpreter vs generated RTL, and CPU vs FPGA modes.

Two equivalence oracles:

* :func:`c_rtl_cosim` — the "Equivalence Verification" stage of the repair
  loop (Fig. 2 stage 3): run the repaired C through the interpreter and its
  generated RTL through the mini-Verilog simulator on shared random vectors.
* :func:`cpu_fpga_cosim` — the discrepancy oracle HLSTester uses (Fig. 3):
  CPU-mode interpretation vs FPGA-mode interpretation (custom bit widths +
  pipeline hazards) of the *same* program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl.testbench import StimulusRunner
from .cast import CProgram
from .interp import CRuntimeError, Machine
from .rtlgen import GeneratedRtl, RtlGenError, generate_rtl


@dataclass
class CosimMismatch:
    inputs: dict
    expected: int | None
    actual: int | None
    note: str = ""


@dataclass
class CosimReport:
    vectors_run: int = 0
    mismatches: list[CosimMismatch] = field(default_factory=list)
    runtime_errors: int = 0
    skipped_reason: str = ""

    @property
    def equivalent(self) -> bool:
        return not self.mismatches and not self.skipped_reason \
            and self.vectors_run > 0

    def summary(self) -> str:
        if self.skipped_reason:
            return f"cosim skipped: {self.skipped_reason}"
        status = "PASS" if self.equivalent else "FAIL"
        return (f"cosim {status}: {self.vectors_run} vectors, "
                f"{len(self.mismatches)} mismatches, "
                f"{self.runtime_errors} runtime errors")


def _random_args(func, rng: random.Random, max_value: int = 255):
    """Random non-negative arguments matching a kernel signature."""
    args = []
    for param in func.params:
        if param.ctype.is_array or param.ctype.is_pointer:
            size = param.ctype.array_size
            size = size if size and size > 0 else 8
            args.append([rng.randrange(max_value + 1) for _ in range(size)])
        else:
            args.append(rng.randrange(max_value + 1))
    return args


def c_rtl_cosim(program: CProgram, function: str, vectors: int = 32,
                seed: int = 21,
                width_overrides: dict[str, int] | None = None) -> CosimReport:
    """Interpret the C kernel and simulate its generated RTL on shared vectors."""
    report = CosimReport()
    func = program.function(function)
    try:
        rtl: GeneratedRtl = generate_rtl(program, function, width_overrides)
    except RtlGenError as exc:
        report.skipped_reason = f"RTL generation: {exc}"
        return report
    try:
        runner = StimulusRunner(rtl.source, rtl.module_name)
    except Exception as exc:  # generated RTL failed to compile: real bug signal
        report.skipped_reason = f"generated RTL failed to elaborate: {exc}"
        return report

    rng = random.Random(seed)
    machine = Machine(program, mode="cpu")
    for _ in range(vectors):
        args = _random_args(rng=rng, func=func)
        try:
            expected = machine.call(function, *args).value
        except CRuntimeError:
            report.runtime_errors += 1
            continue
        stimulus: dict[str, int] = {}
        for param, arg in zip(func.params, args):
            if isinstance(arg, list):
                for i, value in enumerate(arg):
                    stimulus[f"{param.name}_{i}"] = value
            else:
                stimulus[param.name] = arg
        outs = runner.apply(stimulus)
        actual_logic = outs[rtl.output_name]
        actual = None if actual_logic.has_x else actual_logic.to_int()
        expected_wrapped = (expected or 0) & 0xFFFFFFFF
        report.vectors_run += 1
        if actual != expected_wrapped:
            report.mismatches.append(CosimMismatch(
                inputs={p.name: a for p, a in zip(func.params, args)},
                expected=expected_wrapped, actual=actual))
    return report


def cpu_fpga_cosim(program: CProgram, function: str,
                   inputs: list[list], width_overrides: dict[str, int],
                   pipeline_hazard: bool = False) -> CosimReport:
    """Diff CPU-mode vs FPGA-mode interpretation on explicit input vectors."""
    report = CosimReport()
    cpu = Machine(program, mode="cpu")
    fpga = Machine(program, mode="fpga", width_overrides=width_overrides,
                   pipeline_hazard=pipeline_hazard)
    func = program.function(function)
    for args in inputs:
        import copy
        try:
            cpu_result = cpu.call(function, *copy.deepcopy(args))
        except CRuntimeError:
            report.runtime_errors += 1
            continue
        try:
            fpga_result = fpga.call(function, *copy.deepcopy(args))
        except CRuntimeError as exc:
            report.vectors_run += 1
            report.mismatches.append(CosimMismatch(
                inputs={p.name: a for p, a in zip(func.params, args)},
                expected=cpu_result.value, actual=None,
                note=f"FPGA-mode runtime error: {exc.kind}"))
            continue
        report.vectors_run += 1
        if cpu_result.value != fpga_result.value:
            report.mismatches.append(CosimMismatch(
                inputs={p.name: a for p, a in zip(func.params, args)},
                expected=cpu_result.value, actual=fpga_result.value))
    return report
