"""HLSTester — behavioural-discrepancy testing for HLS (Fig. 3).

The five stages of the paper's flow map to:

1. testbench adaptation — reuse the repair templates to strip non-HLS
   constructs from the harness (``adapt_testbench``),
2. backward slicing — :mod:`repro.hls.slicing` identifies key variables,
3. instrumentation — the interpreter's trace restricted to key variables
   (:mod:`repro.hls.spectra`),
4. test-input generation — dynamic mutation plus an LLM reasoning chain
   that proposes boundary values targeted at the FPGA bit widths,
5. redundancy filtering — inputs whose spectrum was already observed skip
   the (expensive) FPGA-mode simulation.

A discrepancy is a CPU-mode vs FPGA-mode output difference on the same
input (custom bit widths and/or pipeline hazards).
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from ..llm.model import SimulatedLLM, _stable_seed
from .cast import CProgram
from .compat import check_compatibility
from .cosim import CosimMismatch
from .cparser import cparse
from .interp import CRuntimeError, Machine
from .slicing import SliceResult, backward_slice
from .spectra import CoverageMap, spectrum_of
from .transforms import TEMPLATES


@dataclass
class Discrepancy:
    inputs: list
    cpu_value: int | None
    fpga_value: int | None
    note: str = ""


@dataclass
class TesterReport:
    candidates_generated: int = 0
    sims_run: int = 0
    sims_skipped: int = 0
    discrepancies: list[Discrepancy] = field(default_factory=list)
    coverage: int = 0
    llm_guided_hits: int = 0

    @property
    def skip_rate(self) -> float:
        total = self.sims_run + self.sims_skipped
        return self.sims_skipped / total if total else 0.0

    def summary(self) -> str:
        return (f"{self.candidates_generated} candidates -> {self.sims_run} "
                f"simulated, {self.sims_skipped} skipped "
                f"({self.skip_rate:.0%}); {len(self.discrepancies)} "
                f"discrepancies; coverage={self.coverage}")


def adapt_testbench(source: str, top: str, llm: SimulatedLLM,
                    seed: int = 0) -> tuple[str, list[str]]:
    """Stage 1: make a C testbench HLS-compatible by applying templates.

    Returns the adapted source and a log of applied template ids.
    """
    from .cprinter import program_str
    program = cparse(source)
    rng = random.Random(_stable_seed(seed, llm.profile.name, top, "adapt"))
    applied: list[str] = []
    for _ in range(4):
        report = check_compatibility(program, top)
        if report.compatible:
            break
        progress = False
        for issue in report.issues:
            for template in TEMPLATES:
                if issue.code not in template.issue_codes:
                    continue
                if rng.random() > 0.5 + 0.45 * llm.profile.c_strength:
                    continue
                outcome = template.apply(program, issue)
                if outcome.applied:
                    program = outcome.program
                    applied.append(template.template_id)
                    progress = True
                break
        if not progress:
            break
    return program_str(program), applied


@dataclass
class MutationConfig:
    bit_flip_p: float = 0.3
    delta_p: float = 0.4
    boundary_p: float = 0.3
    array_element_p: float = 0.5


class HlsTester:
    """Runs the full discrepancy-testing campaign for one kernel."""

    def __init__(self, program: CProgram | str, function: str,
                 width_overrides: dict[str, int] | None = None,
                 pipeline_hazard: bool = True,
                 llm: SimulatedLLM | None = None,
                 seed: int = 0,
                 use_redundancy_filter: bool = True,
                 use_llm_guidance: bool = True,
                 use_slicing: bool = True):
        self.program = cparse(program) if isinstance(program, str) else program
        self.function = function
        self.width_overrides = width_overrides or {}
        self.pipeline_hazard = pipeline_hazard
        self.llm = llm or SimulatedLLM("gpt-4", seed=seed)
        self.seed = seed
        self.use_redundancy_filter = use_redundancy_filter
        self.use_llm_guidance = use_llm_guidance
        self.use_slicing = use_slicing
        self.func = self.program.function(function)
        self.slice: SliceResult = backward_slice(self.program, function) \
            if use_slicing else SliceResult(criterion=set(), key_variables=set())

    # -- input generation ---------------------------------------------------------

    def _random_input(self, rng: random.Random) -> list:
        args = []
        for param in self.func.params:
            if param.ctype.is_array or param.ctype.is_pointer:
                size = param.ctype.array_size
                size = size if size and size > 0 else 8
                args.append([rng.randrange(256) for _ in range(size)])
            else:
                args.append(rng.randrange(256))
        return args

    def _boundary_values(self) -> list[int]:
        """LLM reasoning chain: values that straddle the FPGA bit widths."""
        values = [0, 1]
        for width in set(self.width_overrides.values()) or {8, 16}:
            values.extend([(1 << width) - 1, 1 << width, (1 << width) + 1,
                           (1 << (width - 1)), (1 << (width - 1)) - 1])
        return values

    def _mutate(self, parent: list, rng: random.Random,
                llm_guided: bool) -> list:
        child = copy.deepcopy(parent)
        boundary = self._boundary_values()
        for i, arg in enumerate(child):
            if isinstance(arg, list):
                for j in range(len(arg)):
                    if rng.random() < 0.35:
                        arg[j] = self._mutate_scalar(arg[j], rng, boundary,
                                                     llm_guided)
            else:
                if rng.random() < 0.6:
                    child[i] = self._mutate_scalar(arg, rng, boundary,
                                                   llm_guided)
        return child

    def _mutate_scalar(self, value: int, rng: random.Random,
                       boundary: list[int], llm_guided: bool) -> int:
        if llm_guided and rng.random() < 0.6:
            return rng.choice(boundary)
        roll = rng.random()
        if roll < 0.33:
            return value ^ (1 << rng.randrange(16))
        if roll < 0.66:
            return max(0, value + rng.choice([-3, -1, 1, 3, 17]))
        return rng.randrange(1 << 16)

    # -- campaign -------------------------------------------------------------------

    def run(self, budget: int = 200) -> TesterReport:
        """Generate/evaluate up to ``budget`` test inputs."""
        rng = random.Random(_stable_seed(self.seed, self.function,
                                         self.llm.profile.name))
        report = TesterReport()
        coverage = CoverageMap()
        key_vars = self.slice.key_variables if self.use_slicing else None

        cpu_probe = Machine(self.program, mode="cpu", trace=True)
        cpu = Machine(self.program, mode="cpu")
        fpga = Machine(self.program, mode="fpga",
                       width_overrides=self.width_overrides,
                       pipeline_hazard=self.pipeline_hazard)

        corpus: list[list] = [self._random_input(rng) for _ in range(4)]
        for args in corpus:
            self._evaluate(args, cpu_probe, cpu, fpga, coverage, key_vars,
                           report, llm_guided=False)
            report.candidates_generated += 1

        while report.candidates_generated < budget:
            llm_guided = self.use_llm_guidance and rng.random() \
                < 0.3 + 0.5 * self.llm.profile.c_strength
            parent = rng.choice(corpus)
            child = self._mutate(parent, rng, llm_guided)
            report.candidates_generated += 1
            added = self._evaluate(child, cpu_probe, cpu, fpga, coverage,
                                   key_vars, report, llm_guided)
            if added:
                corpus.append(child)
                if len(corpus) > 64:
                    corpus.pop(0)
        report.coverage = coverage.size
        return report

    def _evaluate(self, args: list, cpu_probe: Machine, cpu: Machine,
                  fpga: Machine, coverage: CoverageMap,
                  key_vars: set[str] | None, report: TesterReport,
                  llm_guided: bool) -> bool:
        # Cheap instrumented CPU run for the spectrum.
        try:
            probe = cpu_probe.call(self.function, *copy.deepcopy(args))
        except CRuntimeError:
            return False
        spectrum = spectrum_of(probe, key_vars)
        if self.use_redundancy_filter and coverage.is_redundant(spectrum):
            report.sims_skipped += 1
            return False
        added = coverage.observe(spectrum)

        # Expensive leg: FPGA-mode simulation + comparison.
        report.sims_run += 1
        cpu_args = copy.deepcopy(args)
        try:
            cpu_out = cpu.call(self.function, *cpu_args)
        except CRuntimeError:
            return added
        fpga_args = copy.deepcopy(args)
        try:
            fpga_out = fpga.call(self.function, *fpga_args)
        except CRuntimeError as exc:
            report.discrepancies.append(Discrepancy(
                args, cpu_out.value, None, f"fpga runtime error: {exc.kind}"))
            if llm_guided:
                report.llm_guided_hits += 1
            return added
        cpu_value = self._observable(cpu_out.value, cpu_args, cpu)
        fpga_value = self._observable(fpga_out.value, fpga_args, fpga)
        if cpu_value != fpga_value:
            report.discrepancies.append(Discrepancy(args, cpu_out.value,
                                                    fpga_out.value))
            if llm_guided:
                report.llm_guided_hits += 1
        return added

    def _observable(self, value, args, machine) -> tuple:
        # Return value plus array contents (arrays are in-out observable).
        arrays = tuple(tuple(a) for a in args if isinstance(a, list))
        return (value, arrays)


def test_kernel(source: str, function: str,
                width_overrides: dict[str, int] | None = None,
                budget: int = 200, seed: int = 0,
                model: str = "gpt-4") -> TesterReport:
    """One-call convenience wrapper around :class:`HlsTester`."""
    tester = HlsTester(source, function, width_overrides,
                       llm=SimulatedLLM(model, seed=seed), seed=seed)
    return tester.run(budget)
