"""Tokenizer for the mini-C subset consumed by the HLS frontend.

Preprocessor handling is minimal but real: ``#include`` lines are skipped,
object-like ``#define`` macros are substituted, and ``#pragma HLS ...``
lines are preserved as first-class tokens — pragmas are the paper's main
optimization lever (Fig. 2 stage 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class CTokKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    CHAR = auto()
    STRING = auto()
    OP = auto()
    PRAGMA = auto()   # one token per '#pragma' line, text = full directive
    EOF = auto()


CKEYWORDS = {
    "int", "unsigned", "char", "short", "long", "void", "float", "double",
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "const", "static", "struct", "union", "typedef", "sizeof", "goto",
    "switch", "case", "default", "enum", "extern", "volatile", "bool",
}


@dataclass(frozen=True)
class CToken:
    kind: CTokKind
    text: str
    line: int
    value: object = None

    def __repr__(self) -> str:
        return f"CToken({self.kind.name}, {self.text!r})"


class CLexError(Exception):
    def __init__(self, message: str, line: int):
        self.line = line
        super().__init__(f"[C-LEX] {message} (line {line})")


_MULTI = ["<<=", ">>=", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
          "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->"]
_SINGLE = "+-*/%&|^~!<>=?:;,.(){}[]"


def _strip_preprocessor(source: str) -> tuple[str, list[tuple[int, str]]]:
    """Remove preprocessor lines; apply #define; collect #pragma directives."""
    defines: dict[str, str] = {}
    pragmas: list[tuple[int, str]] = []
    out_lines: list[str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#pragma"):
            pragmas.append((lineno, stripped))
            out_lines.append(f"\0PRAGMA{len(pragmas) - 1}\0")
            continue
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) >= 2 and "(" not in parts[1]:
                defines[parts[1]] = parts[2] if len(parts) == 3 else "1"
            out_lines.append("")
            continue
        if stripped.startswith("#"):
            out_lines.append("")
            continue
        out_lines.append(line)
    text = "\n".join(out_lines)
    # Whole-word macro substitution (iterate to allow simple chains).
    import re
    for _ in range(4):
        changed = False
        for name, body in defines.items():
            new = re.sub(rf"\b{re.escape(name)}\b", body, text)
            if new != text:
                text = new
                changed = True
        if not changed:
            break
    return text, pragmas


class CLexer:
    def __init__(self, source: str):
        self.text, self.pragmas = _strip_preprocessor(source)
        self.pos = 0
        self.line = 1

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                self.pos += 1

    def tokens(self) -> list[CToken]:
        out: list[CToken] = []
        while True:
            tok = self._next()
            out.append(tok)
            if tok.kind is CTokKind.EOF:
                return out

    def _next(self) -> CToken:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                self._advance(2)
            else:
                break
        if self.pos >= len(self.text):
            return CToken(CTokKind.EOF, "", self.line)
        line = self.line
        ch = self._peek()

        if ch == "\0":  # pragma placeholder
            self._advance()
            digits = []
            while self._peek().isalnum():
                digits.append(self._peek())
                self._advance()
            self._advance()  # trailing \0
            idx = int("".join(d for d in digits if d.isdigit()))
            pline, ptext = self.pragmas[idx]
            return CToken(CTokKind.PRAGMA, ptext, pline)

        if ch == '"':
            self._advance()
            chars: list[str] = []
            while self.pos < len(self.text) and self._peek() != '"':
                c = self._peek()
                if c == "\\":
                    self._advance()
                    esc = self._peek()
                    chars.append({"n": "\n", "t": "\t", "0": "\0",
                                  '"': '"', "\\": "\\"}.get(esc, esc))
                    self._advance()
                else:
                    chars.append(c)
                    self._advance()
            if self.pos >= len(self.text):
                raise CLexError("unterminated string", line)
            self._advance()
            return CToken(CTokKind.STRING, "".join(chars), line, "".join(chars))

        if ch == "'":
            self._advance()
            c = self._peek()
            if c == "\\":
                self._advance()
                c = {"n": "\n", "t": "\t", "0": "\0", "'": "'",
                     "\\": "\\"}.get(self._peek(), self._peek())
            self._advance()
            if self._peek() != "'":
                raise CLexError("unterminated char literal", line)
            self._advance()
            return CToken(CTokKind.CHAR, c, line, ord(c) if c else 0)

        if ch.isdigit():
            start = self.pos
            is_hex = ch == "0" and self._peek(1).lower() == "x"
            if is_hex:
                self._advance(2)
                while self._peek() and self._peek().lower() in "0123456789abcdef":
                    self._advance()
                value = int(self.text[start:self.pos], 16)
            else:
                while self._peek().isdigit():
                    self._advance()
                if self._peek() == "." and self._peek(1).isdigit():
                    raise CLexError("floating-point literals are not supported "
                                    "by the mini-C subset", line)
                value = int(self.text[start:self.pos])
            while self._peek() and self._peek().lower() in "ul":  # suffixes
                self._advance()
            return CToken(CTokKind.NUMBER, self.text[start:self.pos], line, value)

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.text[start:self.pos]
            return CToken(CTokKind.IDENT, text, line)

        for op in _MULTI:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return CToken(CTokKind.OP, op, line)
        if ch in _SINGLE:
            self._advance()
            return CToken(CTokKind.OP, ch, line)
        raise CLexError(f"unexpected character '{ch}'", line)


def ctokenize(source: str) -> list[CToken]:
    return CLexer(source).tokens()
