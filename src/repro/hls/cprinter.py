"""Pretty-printer: mini-C AST back to compilable source text.

Round-tripping matters because the repair loop is source-to-source: the
(simulated) LLM edits the AST via repair templates, and the result must be
re-parseable by the same frontend, exactly like real LLM output would be.
"""

from __future__ import annotations

from .cast import (CAssign, CBinary, CBlock, CBreak, CCall, CCast, CContinue,
                   CDecl, CExpr, CExprStmt, CFor, CFunction, CIf, CIndex,
                   CNum, CParam, CPragmaStmt, CProgram, CReturn, CSizeof,
                   CStmt, CStr, CTernary, CType, CUnary, CVar, CWhile)

_INDENT = "    "


def type_str(ctype: CType) -> str:
    base = {"unsigned": "unsigned int"}.get(ctype.base, ctype.base)
    return base + ("*" if ctype.is_pointer else "")


def _param_str(param: CParam) -> str:
    if param.ctype.is_array:
        size = param.ctype.array_size
        suffix = f"[{size}]" if size is not None and size >= 0 else "[]"
        return f"{type_str(CType(param.ctype.base))} {param.name}{suffix}"
    return f"{type_str(param.ctype)} {param.name}"


def expr_str(expr: CExpr) -> str:
    if isinstance(expr, CNum):
        return str(expr.value)
    if isinstance(expr, CStr):
        escaped = expr.text.replace("\\", "\\\\").replace('"', '\\"') \
            .replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, CVar):
        return expr.name
    if isinstance(expr, CUnary):
        inner = expr_str(expr.operand)
        if expr.op in ("++", "--"):
            return f"{inner}{expr.op}" if expr.postfix else f"{expr.op}{inner}"
        return f"{expr.op}({inner})" if isinstance(
            expr.operand, (CBinary, CTernary, CAssign)) else f"{expr.op}{inner}"
    if isinstance(expr, CBinary):
        return f"({expr_str(expr.left)} {expr.op} {expr_str(expr.right)})"
    if isinstance(expr, CTernary):
        return (f"({expr_str(expr.cond)} ? {expr_str(expr.if_true)} : "
                f"{expr_str(expr.if_false)})")
    if isinstance(expr, CAssign):
        return f"{expr_str(expr.target)} {expr.op} {expr_str(expr.value)}"
    if isinstance(expr, CIndex):
        return f"{expr_str(expr.base)}[{expr_str(expr.index)}]"
    if isinstance(expr, CCall):
        args = ", ".join(expr_str(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, CCast):
        return f"({type_str(expr.ctype)})({expr_str(expr.operand)})"
    if isinstance(expr, CSizeof):
        return f"sizeof({type_str(expr.ctype)})"
    raise TypeError(f"cannot print {type(expr).__name__}")


def stmt_lines(stmt: CStmt, depth: int = 0) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, CBlock):
        lines = [pad + "{"]
        for s in stmt.stmts:
            lines.extend(stmt_lines(s, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, CDecl):
        if stmt.ctype.is_array:
            size = stmt.ctype.array_size
            suffix = f"[{size}]" if size is not None and size >= 0 else "[]"
            return [f"{pad}{type_str(CType(stmt.ctype.base))} {stmt.name}{suffix};"]
        init = f" = {expr_str(stmt.init)}" if stmt.init is not None else ""
        return [f"{pad}{type_str(stmt.ctype)} {stmt.name}{init};"]
    if isinstance(stmt, CExprStmt):
        return [f"{pad}{expr_str(stmt.expr)};"]
    if isinstance(stmt, CIf):
        lines = [f"{pad}if ({expr_str(stmt.cond)})"]
        lines.extend(_branch_lines(stmt.then, depth))
        if stmt.other is not None:
            lines.append(f"{pad}else")
            lines.extend(_branch_lines(stmt.other, depth))
        return lines
    if isinstance(stmt, CFor):
        init = ""
        if isinstance(stmt.init, CDecl):
            init = stmt_lines(stmt.init, 0)[0].rstrip(";")
        elif isinstance(stmt.init, CExprStmt):
            init = expr_str(stmt.init.expr)
        cond = expr_str(stmt.cond) if stmt.cond is not None else ""
        step = expr_str(stmt.step) if stmt.step is not None else ""
        lines = [f"{pad}for ({init}; {cond}; {step})", pad + "{"]
        for pragma in stmt.pragmas:
            lines.append(f"{_INDENT * (depth + 1)}{pragma}")
        body = stmt.body
        inner = body.stmts if isinstance(body, CBlock) else (body,)
        for s in inner:
            lines.extend(stmt_lines(s, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, CWhile):
        if stmt.do_while:
            lines = [pad + "do", pad + "{"]
            inner = stmt.body.stmts if isinstance(stmt.body, CBlock) else (stmt.body,)
            for s in inner:
                lines.extend(stmt_lines(s, depth + 1))
            lines.append(f"{pad}}} while ({expr_str(stmt.cond)});")
            return lines
        lines = [f"{pad}while ({expr_str(stmt.cond)})", pad + "{"]
        for pragma in stmt.pragmas:
            lines.append(f"{_INDENT * (depth + 1)}{pragma}")
        inner = stmt.body.stmts if isinstance(stmt.body, CBlock) else (stmt.body,)
        for s in inner:
            lines.extend(stmt_lines(s, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, CReturn):
        if stmt.value is None:
            return [pad + "return;"]
        return [f"{pad}return {expr_str(stmt.value)};"]
    if isinstance(stmt, CBreak):
        return [pad + "break;"]
    if isinstance(stmt, CContinue):
        return [pad + "continue;"]
    if isinstance(stmt, CPragmaStmt):
        return [pad + stmt.text]
    raise TypeError(f"cannot print {type(stmt).__name__}")


def _branch_lines(stmt: CStmt, depth: int) -> list[str]:
    if isinstance(stmt, CBlock):
        return stmt_lines(stmt, depth)
    return stmt_lines(stmt, depth + 1)


def function_str(func: CFunction) -> str:
    params = ", ".join(_param_str(p) for p in func.params) or "void"
    lines: list[str] = []
    for pragma in func.pragmas:
        lines.append(pragma)
    lines.append(f"{type_str(func.ret)} {func.name}({params})")
    lines.extend(stmt_lines(func.body, 0))
    return "\n".join(lines)


def program_str(program: CProgram) -> str:
    parts: list[str] = []
    for decl in program.globals:
        parts.extend(stmt_lines(decl, 0))
    for func in program.functions.values():
        parts.append(function_str(func))
        parts.append("")
    return "\n".join(parts)
