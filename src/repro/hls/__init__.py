"""``repro.hls`` — the high-level-synthesis substrate and the paper's two
HLS case studies.

* mini-C frontend (lexer/parser/AST/printer) and interpreter with CPU/FPGA
  execution modes,
* HLS compatibility checking, repair templates, and the four-stage
  LLM repair loop of Fig. 2 (:mod:`repro.hls.repair`),
* analytic scheduling/pragma model and C-to-RTL generation,
* HLSTester, the behavioural-discrepancy testing flow of Fig. 3
  (:mod:`repro.hls.tester`).
"""

from .cast import CFunction, CProgram, CType
from .clexer import CLexError, ctokenize
from .compat import (CompatChecker, CompatReport, HlsIssue,
                     check_compatibility, loop_bound)
from .cosim import (CosimMismatch, CosimReport, c_rtl_cosim, cpu_fpga_cosim)
from .cparser import CParseError, cparse
from .cprinter import function_str, program_str
from .interp import CRuntimeError, ExecutionResult, Machine, TraceEvent
from .kernels import (AcceleratorPlan, ExtractionReport, KernelProfile,
                      extract_kernels, plan_accelerator, profile_kernels)
from .pragmas import (HlsPragma, LoopSite, find_loops, loop_pragmas,
                      parse_pragma, pipeline_ii, set_loop_pragmas,
                      unroll_factor)
from .repair import HlsRepairEngine, RepairResult, StageLog, repair_source
from .rtlgen import GeneratedRtl, RtlGenError, generate_rtl
from .schedule import OpCounts, ScheduleReport, estimate_schedule
from .slicing import SliceResult, backward_slice
from .spectra import CoverageMap, Spectrum, spectrum_of
from .tester import (Discrepancy, HlsTester, TesterReport, adapt_testbench,
                     test_kernel)
from .transforms import TEMPLATES, RepairTemplate, TransformOutcome, templates_for

__all__ = [
    "AcceleratorPlan", "ExtractionReport", "KernelProfile",
    "extract_kernels", "plan_accelerator", "profile_kernels",
    "CFunction", "CLexError", "CParseError", "CProgram", "CRuntimeError",
    "CType", "CompatChecker", "CompatReport", "CosimMismatch", "CosimReport",
    "CoverageMap", "Discrepancy", "ExecutionResult", "GeneratedRtl",
    "HlsIssue", "HlsPragma", "HlsRepairEngine", "HlsTester", "LoopSite",
    "Machine", "OpCounts", "RepairResult", "RepairTemplate", "RtlGenError",
    "ScheduleReport", "SliceResult", "Spectrum", "StageLog", "TEMPLATES",
    "TesterReport", "TraceEvent", "TransformOutcome", "adapt_testbench",
    "backward_slice", "c_rtl_cosim", "check_compatibility", "cparse",
    "cpu_fpga_cosim", "ctokenize", "estimate_schedule", "find_loops",
    "function_str", "generate_rtl", "loop_bound", "loop_pragmas",
    "parse_pragma", "pipeline_ii", "program_str", "repair_source",
    "set_loop_pragmas", "spectrum_of", "templates_for", "test_kernel",
    "unroll_factor",
]
