"""C-to-RTL generation for HLS-compatible kernels.

Generates a combinational mini-Verilog module from a fully-unrollable scalar
kernel by symbolic execution: every C assignment becomes a fresh wire, ``if``
becomes a mux merge, constant-bound loops unroll, and the return value (or
output array) becomes output ports.

Custom bit widths (``width_overrides``) narrow the generated wires — this is
the mechanism by which FPGA deployment diverges from CPU execution, the
behavioural-discrepancy source HLSTester hunts (Fig. 3).

Scope: unsigned/non-negative data paths (documented in DESIGN.md).  Kernels
outside the subset raise :class:`RtlGenError`; callers fall back to the
analytic schedule model for QoR and to interpreter-vs-interpreter cosim for
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cast import (CAssign, CBinary, CBlock, CBreak, CCall, CCast, CContinue,
                   CDecl, CExpr, CExprStmt, CFor, CFunction, CIf, CIndex,
                   CNum, CPragmaStmt, CProgram, CReturn, CStmt, CTernary,
                   CUnary, CVar, CWhile)
from .compat import loop_bound

_MAX_UNROLL = 1024
_DEFAULT_WIDTH = 32
_MAX_ARRAY_PORT = 32


class RtlGenError(Exception):
    """Kernel falls outside the RTL-generatable subset."""


@dataclass
class GeneratedRtl:
    module_name: str
    source: str
    scalar_inputs: list[str]
    array_inputs: dict[str, int]       # name -> element count
    output_name: str
    output_width: int


@dataclass
class _Value:
    """A symbolic value: a Verilog expression string plus width."""

    expr: str
    width: int = _DEFAULT_WIDTH


class _ReturnHit(Exception):
    def __init__(self, value: _Value):
        self.value = value


class RtlGenerator:
    def __init__(self, program: CProgram, function: str,
                 width_overrides: dict[str, int] | None = None):
        self.program = program
        self.func = program.function(function)
        self.width_overrides = width_overrides or {}
        self.wires: list[str] = []
        self.counter = 0

    # -- helpers -------------------------------------------------------------

    def _fresh(self, value: _Value, hint: str = "t") -> _Value:
        """Materialize an expression into a named wire (keeps output readable
        and applies width truncation — the discrepancy mechanism)."""
        self.counter += 1
        name = f"{hint}_{self.counter}"
        self.wires.append(
            f"  wire [{value.width - 1}:0] {name} = {value.expr};")
        return _Value(name, value.width)

    def _var_width(self, name: str) -> int:
        return self.width_overrides.get(name, _DEFAULT_WIDTH)

    # -- entry ------------------------------------------------------------------

    def generate(self) -> GeneratedRtl:
        func = self.func
        if func.ret.base == "void":
            raise RtlGenError("void kernels need output-array ports; use the "
                              "schedule model instead")
        env: dict[str, object] = {}
        scalar_inputs: list[str] = []
        array_inputs: dict[str, int] = {}
        port_decls: list[str] = []
        for param in func.params:
            if param.ctype.is_array:
                size = param.ctype.array_size or 0
                if size <= 0 or size > _MAX_ARRAY_PORT:
                    raise RtlGenError(
                        f"array parameter '{param.name}' too large/unsized for "
                        f"RTL ports ({size})")
                elems = []
                for i in range(size):
                    pname = f"{param.name}_{i}"
                    port_decls.append(f"input [{_DEFAULT_WIDTH - 1}:0] {pname}")
                    elems.append(_Value(pname))
                env[param.name] = elems
                array_inputs[param.name] = size
            elif param.ctype.is_pointer:
                raise RtlGenError(f"pointer parameter '{param.name}' is not "
                                  f"RTL-generatable")
            else:
                width = self._var_width(param.name)
                port_decls.append(f"input [{width - 1}:0] {param.name}")
                env[param.name] = _Value(param.name, width)
                scalar_inputs.append(param.name)

        try:
            self._exec_block(func.body, env)
            raise RtlGenError(f"kernel '{func.name}' has a path with no return")
        except _ReturnHit as hit:
            result = hit.value

        out_width = _DEFAULT_WIDTH
        ports = ", ".join(port_decls + [f"output [{out_width - 1}:0] out"])
        body = "\n".join(self.wires)
        source = (f"module {func.name}({ports});\n"
                  f"{body}\n"
                  f"  assign out = {result.expr};\n"
                  f"endmodule\n")
        return GeneratedRtl(func.name, source, scalar_inputs, array_inputs,
                            "out", out_width)

    # -- statements ------------------------------------------------------------------

    def _exec_block(self, stmt: CStmt, env: dict) -> None:
        if isinstance(stmt, CBlock):
            for s in stmt.stmts:
                self._exec_block(s, env)
            return
        if isinstance(stmt, CPragmaStmt):
            return
        if isinstance(stmt, CDecl):
            if stmt.ctype.is_array:
                size = stmt.ctype.array_size or 0
                if size <= 0 or size > _MAX_ARRAY_PORT * 4:
                    raise RtlGenError(f"array '{stmt.name}' not RTL-generatable")
                env[stmt.name] = [_Value("32'd0") for _ in range(size)]
            elif stmt.init is not None:
                value = self._eval(stmt.init, env)
                width = self._var_width(stmt.name)
                env[stmt.name] = self._fresh(_Value(value.expr, width), stmt.name)
            else:
                env[stmt.name] = _Value("32'd0", self._var_width(stmt.name))
            return
        if isinstance(stmt, CExprStmt):
            self._eval(stmt.expr, env)
            return
        if isinstance(stmt, CReturn):
            if stmt.value is None:
                raise RtlGenError("bare return in value-returning kernel")
            raise _ReturnHit(self._eval(stmt.value, env))
        if isinstance(stmt, CIf):
            self._exec_if(stmt, env)
            return
        if isinstance(stmt, CFor):
            self._exec_for(stmt, env)
            return
        if isinstance(stmt, (CWhile,)):
            raise RtlGenError("while loops must be bounded before RTL generation")
        if isinstance(stmt, (CBreak, CContinue)):
            raise RtlGenError("break/continue are not supported in RTL generation")
        raise RtlGenError(f"cannot generate RTL for {type(stmt).__name__}")

    def _exec_if(self, stmt: CIf, env: dict) -> None:
        cond = self._eval(stmt.cond, env)
        then_env = self._copy_env(env)
        else_env = self._copy_env(env)
        then_ret: _Value | None = None
        else_ret: _Value | None = None
        try:
            self._exec_block(stmt.then, then_env)
        except _ReturnHit as hit:
            then_ret = hit.value
        if stmt.other is not None:
            try:
                self._exec_block(stmt.other, else_env)
            except _ReturnHit as hit:
                else_ret = hit.value

        if then_ret is not None and else_ret is not None:
            raise _ReturnHit(_Value(
                f"(({cond.expr}) != 0 ? ({then_ret.expr}) : ({else_ret.expr}))",
                max(then_ret.width, else_ret.width)))
        if then_ret is not None or else_ret is not None:
            raise RtlGenError("early return on only one branch is not "
                              "RTL-generatable; restructure the kernel")
        # Merge modified variables with muxes.
        for name in set(then_env) | set(else_env):
            tv = then_env.get(name)
            ev = else_env.get(name)
            if isinstance(tv, int) or isinstance(ev, int):
                continue  # loop-constant bookkeeping (__const_*) keys
            if isinstance(tv, list) or isinstance(ev, list):
                if tv is None or ev is None:
                    continue
                merged = []
                for a, b in zip(tv, ev):
                    if a.expr == b.expr:
                        merged.append(a)
                    else:
                        merged.append(self._fresh(_Value(
                            f"(({cond.expr}) != 0 ? ({a.expr}) : ({b.expr}))",
                            max(a.width, b.width)), "mux"))
                env[name] = merged
                continue
            if tv is None or ev is None:
                continue
            if tv.expr != ev.expr:
                env[name] = self._fresh(_Value(
                    f"(({cond.expr}) != 0 ? ({tv.expr}) : ({ev.expr}))",
                    max(tv.width, ev.width)), "mux")
            else:
                env[name] = tv

    def _copy_env(self, env: dict) -> dict:
        out: dict = {}
        for key, value in env.items():
            out[key] = list(value) if isinstance(value, list) else value
        return out

    def _exec_for(self, stmt: CFor, env: dict) -> None:
        trips = loop_bound(stmt)
        if trips is None:
            raise RtlGenError("loop bound is not a compile-time constant")
        if trips > _MAX_UNROLL:
            raise RtlGenError(f"loop unrolls to {trips} > {_MAX_UNROLL} iterations")
        # Track the induction variable as a Python int.
        if stmt.init is not None:
            if isinstance(stmt.init, CDecl) and isinstance(stmt.init.init, CNum):
                var = stmt.init.name
                current = stmt.init.init.value
            elif isinstance(stmt.init, CExprStmt) \
                    and isinstance(stmt.init.expr, CAssign) \
                    and isinstance(stmt.init.expr.target, CVar) \
                    and isinstance(stmt.init.expr.value, CNum):
                var = stmt.init.expr.target.name
                current = stmt.init.expr.value.value
            else:
                raise RtlGenError("loop init must bind a constant")
        else:
            raise RtlGenError("loop without init is not RTL-generatable")

        step_amount = self._step_amount(stmt, var)
        for _ in range(trips):
            env[var] = _Value(f"32'd{current & 0xFFFFFFFF}")
            env[f"__const_{var}"] = current
            self._exec_block(stmt.body, env)
            current += step_amount
        env[var] = _Value(f"32'd{current & 0xFFFFFFFF}")
        env[f"__const_{var}"] = current

    @staticmethod
    def _step_amount(stmt: CFor, var: str) -> int:
        step = stmt.step
        if isinstance(step, CUnary) and step.op in ("++", "--"):
            return 1 if step.op == "++" else -1
        if isinstance(step, CAssign) and isinstance(step.target, CVar) \
                and step.target.name == var:
            if step.op in ("+=", "-=") and isinstance(step.value, CNum):
                return step.value.value * (1 if step.op == "+=" else -1)
            if step.op == "=" and isinstance(step.value, CBinary) \
                    and isinstance(step.value.right, CNum):
                return step.value.right.value * \
                    (1 if step.value.op == "+" else -1)
        raise RtlGenError("loop step must be a constant increment")

    # -- expressions --------------------------------------------------------------------

    def _const_index(self, expr: CExpr, env: dict) -> int:
        if isinstance(expr, CNum):
            return expr.value
        if isinstance(expr, CVar):
            key = f"__const_{expr.name}"
            if key in env:
                return env[key]
        if isinstance(expr, CBinary):
            left = self._const_index(expr.left, env)
            right = self._const_index(expr.right, env)
            ops = {"+": left + right, "-": left - right, "*": left * right,
                   "/": left // right if right else 0,
                   "%": left % right if right else 0}
            if expr.op in ops:
                return ops[expr.op]
        raise RtlGenError("array index must be loop-constant for RTL generation")

    def _eval(self, expr: CExpr, env: dict) -> _Value:
        if isinstance(expr, CNum):
            return _Value(f"32'd{expr.value & 0xFFFFFFFF}")
        if isinstance(expr, CVar):
            value = env.get(expr.name)
            if value is None:
                raise RtlGenError(f"undefined variable '{expr.name}'")
            if isinstance(value, list):
                raise RtlGenError(f"array '{expr.name}' used as a scalar")
            return value
        if isinstance(expr, CIndex):
            if not isinstance(expr.base, CVar):
                raise RtlGenError("nested indexing is not RTL-generatable")
            array = env.get(expr.base.name)
            if not isinstance(array, list):
                raise RtlGenError(f"'{expr.base.name}' is not an array")
            idx = self._const_index(expr.index, env)
            if not 0 <= idx < len(array):
                raise RtlGenError(f"index {idx} out of range for "
                                  f"'{expr.base.name}[{len(array)}]'")
            return array[idx]
        if isinstance(expr, CUnary):
            if expr.op in ("++", "--"):
                if not isinstance(expr.operand, CVar):
                    raise RtlGenError("++/-- target must be a variable")
                old = self._eval(expr.operand, env)
                op = "+" if expr.op == "++" else "-"
                new = self._fresh(_Value(f"({old.expr} {op} 32'd1)", old.width),
                                  expr.operand.name)
                env[expr.operand.name] = new
                return old if expr.postfix else new
            inner = self._eval(expr.operand, env)
            if expr.op == "-":
                return _Value(f"(32'd0 - {inner.expr})", inner.width)
            if expr.op == "~":
                return _Value(f"(~{inner.expr})", inner.width)
            if expr.op == "!":
                return _Value(f"({inner.expr} == 0 ? 32'd1 : 32'd0)")
            raise RtlGenError(f"unary '{expr.op}' is not RTL-generatable")
        if isinstance(expr, CBinary):
            return self._eval_binary(expr, env)
        if isinstance(expr, CTernary):
            cond = self._eval(expr.cond, env)
            a = self._eval(expr.if_true, env)
            b = self._eval(expr.if_false, env)
            return _Value(f"(({cond.expr}) != 0 ? ({a.expr}) : ({b.expr}))",
                          max(a.width, b.width))
        if isinstance(expr, CAssign):
            return self._eval_assign(expr, env)
        if isinstance(expr, CCall):
            return self._eval_call(expr, env)
        if isinstance(expr, CCast):
            return self._eval(expr.operand, env)
        raise RtlGenError(f"cannot generate RTL for {type(expr).__name__}")

    def _eval_binary(self, expr: CBinary, env: dict) -> _Value:
        if expr.op in ("&&", "||"):
            a = self._eval(expr.left, env)
            b = self._eval(expr.right, env)
            op = "&&" if expr.op == "&&" else "||"
            return _Value(f"(({a.expr} != 0) {op} ({b.expr} != 0) ? 32'd1 : 32'd0)")
        a = self._eval(expr.left, env)
        b = self._eval(expr.right, env)
        width = max(a.width, b.width)
        if expr.op in ("+", "-", "*", "&", "|", "^", "<<", ">>"):
            return _Value(f"({a.expr} {expr.op} {b.expr})", width)
        if expr.op in ("/", "%"):
            if not isinstance(expr.right, CNum) or expr.right.value <= 0 \
                    or expr.right.value & (expr.right.value - 1):
                raise RtlGenError("division only by constant powers of two")
            shift = expr.right.value.bit_length() - 1
            if expr.op == "/":
                return _Value(f"({a.expr} >> {shift})", width)
            return _Value(f"({a.expr} & 32'd{expr.right.value - 1})", width)
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return _Value(f"(({a.expr} {expr.op} {b.expr}) ? 32'd1 : 32'd0)")
        raise RtlGenError(f"binary '{expr.op}' is not RTL-generatable")

    def _eval_assign(self, expr: CAssign, env: dict) -> _Value:
        value = self._eval(expr.value, env)
        if expr.op != "=":
            current = self._eval(expr.target, env)
            op = expr.op[:-1]
            if op in ("/", "%"):
                raise RtlGenError("compound division is not RTL-generatable")
            value = _Value(f"({current.expr} {op} {value.expr})",
                           max(current.width, value.width))
        if isinstance(expr.target, CVar):
            width = self._var_width(expr.target.name)
            stored = self._fresh(_Value(value.expr, width), expr.target.name)
            env[expr.target.name] = stored
            return stored
        if isinstance(expr.target, CIndex) and isinstance(expr.target.base, CVar):
            array = env.get(expr.target.base.name)
            if not isinstance(array, list):
                raise RtlGenError(f"'{expr.target.base.name}' is not an array")
            idx = self._const_index(expr.target.index, env)
            if not 0 <= idx < len(array):
                raise RtlGenError("array store out of range")
            stored = self._fresh(value, f"{expr.target.base.name}{idx}")
            array[idx] = stored
            return stored
        raise RtlGenError("unsupported assignment target for RTL generation")

    def _eval_call(self, expr: CCall, env: dict) -> _Value:
        if expr.func in ("min", "max"):
            a = self._eval(expr.args[0], env)
            b = self._eval(expr.args[1], env)
            op = "<" if expr.func == "min" else ">"
            return _Value(f"(({a.expr} {op} {b.expr}) ? ({a.expr}) : ({b.expr}))",
                          max(a.width, b.width))
        if expr.func == "abs":
            a = self._eval(expr.args[0], env)
            return a  # non-negative datapath assumption
        raise RtlGenError(f"call to '{expr.func}' is not RTL-generatable "
                          f"(inline it first)")


def generate_rtl(program: CProgram, function: str,
                 width_overrides: dict[str, int] | None = None) -> GeneratedRtl:
    """Generate a combinational mini-Verilog module from a C kernel."""
    return RtlGenerator(program, function, width_overrides).generate()
