"""Source-to-source repair templates for HLS incompatibilities.

This is the "external correction-template library" of the paper's Fig. 2:
each template carries retrieval text (what the RAG index embeds), an
applicability predicate keyed on :class:`HlsIssue` codes, and an AST
transformation.  The simulated LLM *applies* templates; whether the right
template is retrieved (RAG on/off) and whether the application succeeds
(model capability) are controlled upstream in ``repro.hls.repair``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from .cast import (CAssign, CBinary, CBlock, CBreak, CCall, CCast, CContinue,
                   CDecl, CExpr, CExprStmt, CFor, CFunction, CIf, CIndex,
                   CNum, CParam, CPragmaStmt, CProgram, CReturn, CStmt,
                   CTernary, CType, CUnary, CVar, CWhile)
from .compat import HlsIssue

DEFAULT_ARRAY_DEPTH = 64
WHILE_LOOP_BUDGET = 1024


@dataclass
class TransformOutcome:
    applied: bool
    program: CProgram
    note: str = ""


Transform = Callable[[CProgram, HlsIssue], TransformOutcome]


@dataclass(frozen=True)
class RepairTemplate:
    """One entry of the correction-template library."""

    template_id: str
    issue_codes: tuple[str, ...]
    retrieval_text: str          # embedded by the RAG retriever
    description: str
    apply: Transform


# --------------------------------------------------------------------------
# Generic AST rewriting helpers
# --------------------------------------------------------------------------


def map_stmt(stmt: CStmt, fn: Callable[[CStmt], CStmt | None]) -> CStmt | None:
    """Bottom-up statement rewrite; fn returning None deletes the statement."""
    if isinstance(stmt, CBlock):
        new_stmts = []
        for s in stmt.stmts:
            mapped = map_stmt(s, fn)
            if mapped is not None:
                new_stmts.append(mapped)
        stmt = CBlock(tuple(new_stmts))
    elif isinstance(stmt, CIf):
        then = map_stmt(stmt.then, fn) or CBlock(())
        other = map_stmt(stmt.other, fn) if stmt.other is not None else None
        stmt = dataclasses.replace(stmt, then=then, other=other)
    elif isinstance(stmt, CFor):
        body = map_stmt(stmt.body, fn) or CBlock(())
        init = map_stmt(stmt.init, fn) if stmt.init is not None else None
        stmt = dataclasses.replace(stmt, body=body, init=init)
    elif isinstance(stmt, CWhile):
        body = map_stmt(stmt.body, fn) or CBlock(())
        stmt = dataclasses.replace(stmt, body=body)
    return fn(stmt)


def rewrite_function(program: CProgram, name: str,
                     fn: Callable[[CFunction], CFunction]) -> CProgram:
    out = CProgram()
    out.globals = list(program.globals)
    for fname, func in program.functions.items():
        out.add(fn(func) if fname == name else func)
    return out


def _const_malloc_size(expr: CExpr) -> int | None:
    """Extract N from malloc(N * sizeof(int)) / malloc(CONST)."""
    if not (isinstance(expr, CCall) and expr.func in ("malloc", "calloc")):
        return None
    arg = expr.args[0]
    if isinstance(arg, CNum):
        return max(1, arg.value // 4) if expr.func == "malloc" else arg.value
    if isinstance(arg, CBinary) and arg.op == "*":
        sides = [arg.left, arg.right]
        nums = [s.value for s in sides if isinstance(s, CNum)]
        if len(nums) == 2:
            return nums[0]  # N * sizeof-ish constant
        if len(nums) == 1:
            return nums[0]
    return None


# --------------------------------------------------------------------------
# Template: malloc -> static array
# --------------------------------------------------------------------------


def _apply_malloc_to_static(program: CProgram, issue: HlsIssue) -> TransformOutcome:
    changed = False
    converted: set[str] = set()

    def rewrite(func: CFunction) -> CFunction:
        nonlocal changed

        def visit(stmt: CStmt) -> CStmt | None:
            nonlocal changed
            if isinstance(stmt, CDecl) and stmt.ctype.is_pointer \
                    and stmt.init is not None:
                size = _const_malloc_size(stmt.init)
                if size is not None:
                    changed = True
                    converted.add(stmt.name)
                    return CDecl(CType(stmt.ctype.base, False, size),
                                 stmt.name, None, stmt.line)
            if isinstance(stmt, CExprStmt) and isinstance(stmt.expr, CAssign) \
                    and isinstance(stmt.expr.target, CVar):
                size = _const_malloc_size(stmt.expr.value)
                if size is not None:
                    changed = True
                    converted.add(stmt.expr.target.name)
                    return CDecl(CType("int", False, size),
                                 stmt.expr.target.name, None, stmt.line)
            if isinstance(stmt, CExprStmt) and isinstance(stmt.expr, CCall) \
                    and stmt.expr.func == "free":
                arg = stmt.expr.args[0] if stmt.expr.args else None
                if isinstance(arg, CVar) and arg.name in converted:
                    changed = True
                    return None  # free of a now-static array: delete
                changed = True
                return None  # any free in a kernel must go
            return stmt

        body = map_stmt(func.body, visit)
        assert isinstance(body, CBlock)
        return dataclasses.replace(func, body=body)

    new = rewrite_function(program, issue.function, rewrite)
    if not changed:
        return TransformOutcome(False, program,
                                "no statically-sized malloc found to convert")
    return TransformOutcome(True, new,
                            "converted dynamic allocation to static array")


# --------------------------------------------------------------------------
# Template: remove I/O calls
# --------------------------------------------------------------------------


def _apply_remove_io(program: CProgram, issue: HlsIssue) -> TransformOutcome:
    changed = False

    def rewrite(func: CFunction) -> CFunction:
        nonlocal changed

        def visit(stmt: CStmt) -> CStmt | None:
            nonlocal changed
            if isinstance(stmt, CExprStmt) and isinstance(stmt.expr, CCall) \
                    and stmt.expr.func in ("printf", "puts", "fprintf", "scanf"):
                changed = True
                return None
            return stmt

        body = map_stmt(func.body, visit)
        assert isinstance(body, CBlock)
        return dataclasses.replace(func, body=body)

    new = rewrite_function(program, issue.function, rewrite)
    if not changed:
        return TransformOutcome(False, program, "no I/O call found")
    return TransformOutcome(True, new, "removed I/O calls from kernel")


# --------------------------------------------------------------------------
# Template: while -> bounded for
# --------------------------------------------------------------------------


def _apply_while_to_bounded(program: CProgram, issue: HlsIssue) -> TransformOutcome:
    changed = False
    guard_counter = [0]

    def rewrite(func: CFunction) -> CFunction:
        nonlocal changed

        def visit(stmt: CStmt) -> CStmt | None:
            nonlocal changed
            if isinstance(stmt, CWhile) and not stmt.do_while:
                changed = True
                guard_counter[0] += 1
                guard = f"_hls_guard{guard_counter[0]}"
                exit_check = CIf(CUnary("!", stmt.cond), CBlock((CBreak(),)),
                                 None, stmt.line)
                inner = stmt.body.stmts if isinstance(stmt.body, CBlock) \
                    else (stmt.body,)
                body = CBlock((exit_check,) + tuple(inner))
                return CFor(
                    init=CDecl(CType("int"), guard, CNum(0), stmt.line),
                    cond=CBinary("<", CVar(guard), CNum(WHILE_LOOP_BUDGET)),
                    step=CAssign("+=", CVar(guard), CNum(1)),
                    body=body,
                    pragmas=stmt.pragmas,
                    line=stmt.line,
                )
            return stmt

        body = map_stmt(func.body, visit)
        assert isinstance(body, CBlock)
        return dataclasses.replace(func, body=body)

    new = rewrite_function(program, issue.function, rewrite)
    if not changed:
        return TransformOutcome(False, program, "no while loop found")
    return TransformOutcome(
        True, new, f"bounded while loop with a {WHILE_LOOP_BUDGET}-iteration budget")


# --------------------------------------------------------------------------
# Template: tail recursion -> loop
# --------------------------------------------------------------------------


def _apply_tail_recursion(program: CProgram, issue: HlsIssue) -> TransformOutcome:
    func = program.functions.get(issue.function)
    if func is None:
        return TransformOutcome(False, program, "function not found")
    # Recognize:  if (<cond>) return <base>;  ... return f(<args>);
    stmts = func.body.stmts
    if not stmts or not isinstance(stmts[-1], CReturn):
        return TransformOutcome(False, program, "no trailing return")
    tail = stmts[-1]
    if not (isinstance(tail.value, CCall) and tail.value.func == func.name):
        return TransformOutcome(
            False, program,
            "recursive call is not in tail position; template does not apply")
    if len(tail.value.args) != len(func.params):
        return TransformOutcome(False, program, "arity mismatch in tail call")

    # Loop: while (1) { <body without tail>; <params = new args>; }
    rebind: list[CStmt] = []
    temps: list[CStmt] = []
    for i, (param, arg) in enumerate(zip(func.params, tail.value.args)):
        tmp = f"_t{i}"
        temps.append(CDecl(param.ctype, tmp, arg, tail.line))
        rebind.append(CExprStmt(CAssign("=", CVar(param.name), CVar(tmp)),
                                tail.line))
    loop_body = CBlock(tuple(stmts[:-1]) + tuple(temps) + tuple(rebind))
    guard = "_hls_iter"
    loop = CFor(
        init=CDecl(CType("int"), guard, CNum(0), func.line),
        cond=CBinary("<", CVar(guard), CNum(WHILE_LOOP_BUDGET)),
        step=CAssign("+=", CVar(guard), CNum(1)),
        body=loop_body,
        line=func.line,
    )
    new_body = CBlock((loop, CReturn(CNum(0), func.line)))
    new_func = dataclasses.replace(func, body=new_body)
    return TransformOutcome(
        True, rewrite_function(program, func.name, lambda f: new_func),
        "converted tail recursion to an iteration-bounded loop")


# --------------------------------------------------------------------------
# Template: unsized pointer param -> sized array param
# --------------------------------------------------------------------------


def _apply_bound_pointer(program: CProgram, issue: HlsIssue) -> TransformOutcome:
    func = program.functions.get(issue.function)
    if func is None:
        return TransformOutcome(False, program, "function not found")
    depth = DEFAULT_ARRAY_DEPTH
    for pragma in func.pragmas:
        if "depth" in pragma:
            for token in pragma.replace("=", " ").split():
                if token.isdigit():
                    depth = int(token)
    changed = False
    new_params: list[CParam] = []
    for param in func.params:
        if param.ctype.is_pointer and not param.ctype.is_array:
            new_params.append(CParam(CType(param.ctype.base, False, depth),
                                     param.name))
            changed = True
        elif param.ctype.is_array and (param.ctype.array_size or 0) < 0:
            new_params.append(CParam(CType(param.ctype.base, False, depth),
                                     param.name))
            changed = True
        else:
            new_params.append(param)
    if not changed:
        return TransformOutcome(False, program, "no unsized pointer parameter")
    new_func = dataclasses.replace(func, params=tuple(new_params))
    return TransformOutcome(
        True, rewrite_function(program, func.name, lambda f: new_func),
        f"bounded pointer parameters to depth {depth}")


# --------------------------------------------------------------------------
# Template: dynamic division -> divider-core pragma
# --------------------------------------------------------------------------


def _apply_allow_divider(program: CProgram, issue: HlsIssue) -> TransformOutcome:
    func = program.functions.get(issue.function)
    if func is None:
        return TransformOutcome(False, program, "function not found")
    pragma = "#pragma HLS allocation operation instances=sdiv limit=1"
    if pragma in func.pragmas:
        return TransformOutcome(False, program, "divider pragma already present")
    new_func = dataclasses.replace(func, pragmas=func.pragmas + (pragma,))
    return TransformOutcome(
        True, rewrite_function(program, func.name, lambda f: new_func),
        "allocated an explicit divider core via pragma")


# --------------------------------------------------------------------------
# Template: pointer arithmetic -> explicit indexing (annotation only)
# --------------------------------------------------------------------------


def _apply_pointer_arith(program: CProgram, issue: HlsIssue) -> TransformOutcome:
    func = program.functions.get(issue.function)
    if func is None:
        return TransformOutcome(False, program, "function not found")

    changed = False

    def visit(stmt: CStmt) -> CStmt | None:
        nonlocal changed

        def fix_expr(expr: CExpr) -> CExpr:
            nonlocal changed
            if isinstance(expr, CUnary) and expr.op == "*" \
                    and isinstance(expr.operand, CBinary) \
                    and expr.operand.op == "+":
                changed = True
                return CIndex(fix_expr(expr.operand.left),
                              fix_expr(expr.operand.right))
            if isinstance(expr, CBinary):
                return dataclasses.replace(expr, left=fix_expr(expr.left),
                                           right=fix_expr(expr.right))
            if isinstance(expr, CAssign):
                return dataclasses.replace(expr, target=fix_expr(expr.target),
                                           value=fix_expr(expr.value))
            if isinstance(expr, CUnary):
                return dataclasses.replace(expr, operand=fix_expr(expr.operand))
            if isinstance(expr, CIndex):
                return dataclasses.replace(expr, base=fix_expr(expr.base),
                                           index=fix_expr(expr.index))
            if isinstance(expr, CCall):
                return dataclasses.replace(
                    expr, args=tuple(fix_expr(a) for a in expr.args))
            return expr

        if isinstance(stmt, CExprStmt):
            return dataclasses.replace(stmt, expr=fix_expr(stmt.expr))
        if isinstance(stmt, CDecl) and stmt.init is not None:
            return dataclasses.replace(stmt, init=fix_expr(stmt.init))
        if isinstance(stmt, CReturn) and stmt.value is not None:
            return dataclasses.replace(stmt, value=fix_expr(stmt.value))
        if isinstance(stmt, CIf):
            return dataclasses.replace(stmt, cond=fix_expr(stmt.cond))
        return stmt

    def rewrite(func_in: CFunction) -> CFunction:
        body = map_stmt(func_in.body, visit)
        assert isinstance(body, CBlock)
        return dataclasses.replace(func_in, body=body)

    new = rewrite_function(program, issue.function, rewrite)
    if not changed:
        return TransformOutcome(False, program,
                                "no *(p + i) pattern found to rewrite")
    return TransformOutcome(True, new,
                            "rewrote pointer arithmetic as array indexing")


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------


TEMPLATES: tuple[RepairTemplate, ...] = (
    RepairTemplate(
        "malloc_to_static", ("HLS001",),
        "dynamic memory allocation malloc calloc free heap replace with "
        "static fixed-size array on-chip BRAM buffer",
        "Replace malloc/calloc with a statically sized local array and drop free().",
        _apply_malloc_to_static),
    RepairTemplate(
        "remove_io", ("HLS005",),
        "printf puts standard output logging debug print statement remove "
        "from synthesizable kernel",
        "Delete printf/puts calls; hardware kernels have no stdout.",
        _apply_remove_io),
    RepairTemplate(
        "while_to_bounded_for", ("HLS003",),
        "while loop unbounded trip count convert to for loop static bound "
        "iteration budget latency analysis",
        "Rewrite while loops as for loops with a static iteration budget.",
        _apply_while_to_bounded),
    RepairTemplate(
        "tail_recursion_to_loop", ("HLS002",),
        "recursion recursive call stack convert tail call to iterative loop",
        "Convert tail-recursive functions into bounded loops.",
        _apply_tail_recursion),
    RepairTemplate(
        "bound_pointer_param", ("HLS004",),
        "pointer parameter unknown size interface depth array dimension "
        "specify bound memory port",
        "Give pointer parameters an explicit array bound (interface depth).",
        _apply_bound_pointer),
    RepairTemplate(
        "allow_divider", ("HLS009",),
        "division modulo runtime divisor divider core allocation pragma "
        "resource sharing",
        "Allocate an explicit divider core for runtime division.",
        _apply_allow_divider),
    RepairTemplate(
        "pointer_arith_to_index", ("HLS006",),
        "pointer arithmetic increment offset dereference rewrite as array "
        "index subscript",
        "Rewrite *(p + i) as p[i].",
        _apply_pointer_arith),
)


def templates_for(code: str) -> list[RepairTemplate]:
    return [t for t in TEMPLATES if code in t.issue_codes]
