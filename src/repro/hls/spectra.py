"""Execution spectra — stage 3 of HLSTester (Fig. 3).

A *spectrum* summarizes one execution: which branches fired, and which value
buckets each key variable visited.  Two test inputs with identical spectra
exercise the kernel identically, so running the second one through (slow)
hardware simulation is redundant — that is exactly the redundancy-filtering
insight of stage 5.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .interp import ExecutionResult, TraceEvent


def _bucket(value: int) -> str:
    """Coarse magnitude/sign bucket for a variable value.

    Buckets are chosen so width-overflow behaviour changes the bucket: values
    near power-of-two boundaries land in distinct buckets.
    """
    if value == 0:
        return "zero"
    sign = "n" if value < 0 else "p"
    magnitude = abs(value)
    bits = magnitude.bit_length()
    near_boundary = magnitude in ((1 << bits) - 1, 1 << (bits - 1))
    return f"{sign}{bits}{'b' if near_boundary else ''}"


@dataclass(frozen=True)
class Spectrum:
    """Canonical, hashable execution signature."""

    branch_profile: frozenset[tuple[int, int]]      # (line, outcome)
    value_profile: frozenset[tuple[str, str]]        # (var, bucket)
    line_profile: frozenset[int]

    def signature(self) -> str:
        payload = "|".join([
            ";".join(f"{l}:{o}" for l, o in sorted(self.branch_profile)),
            ";".join(f"{v}:{b}" for v, b in sorted(self.value_profile)),
            ";".join(str(l) for l in sorted(self.line_profile)),
        ])
        return hashlib.sha1(payload.encode()).hexdigest()[:16]


def spectrum_from_trace(trace: list[TraceEvent],
                        key_variables: set[str] | None = None) -> Spectrum:
    branches: set[tuple[int, int]] = set()
    values: set[tuple[str, str]] = set()
    lines: set[int] = set()
    for event in trace:
        lines.add(event.line)
        if event.kind == "branch" and event.value is not None:
            branches.add((event.line, event.value))
        elif event.kind == "assign" and event.value is not None:
            if key_variables is None or event.name in key_variables:
                values.add((event.name, _bucket(event.value)))
    return Spectrum(frozenset(branches), frozenset(values), frozenset(lines))


def spectrum_of(result: ExecutionResult,
                key_variables: set[str] | None = None) -> Spectrum:
    return spectrum_from_trace(result.trace, key_variables)


@dataclass
class CoverageMap:
    """Accumulates spectra across a test campaign."""

    seen_signatures: set[str] = field(default_factory=set)
    branches: set[tuple[int, int]] = field(default_factory=set)
    value_buckets: set[tuple[str, str]] = field(default_factory=set)

    def observe(self, spectrum: Spectrum) -> bool:
        """Record a spectrum; returns True if it added new coverage."""
        new_branch = not spectrum.branch_profile <= self.branches
        new_values = not spectrum.value_profile <= self.value_buckets
        sig = spectrum.signature()
        new_sig = sig not in self.seen_signatures
        self.seen_signatures.add(sig)
        self.branches |= spectrum.branch_profile
        self.value_buckets |= spectrum.value_profile
        return new_branch or new_values or new_sig

    def is_redundant(self, spectrum: Spectrum) -> bool:
        return spectrum.signature() in self.seen_signatures

    @property
    def size(self) -> int:
        return len(self.branches) + len(self.value_buckets)
