"""Seeded grammar-driven generation of mini-Verilog designs + testbenches.

Cases are built as ASTs and rendered through :mod:`repro.hdl.unparse`, so
a generated design is valid by construction and replayable from
``(campaign_seed, index)`` alone: the per-case RNG is
``random.Random(_stable_seed(campaign_seed, index))`` (SHA-256 based, so
identical across processes and ``PYTHONHASHSEED`` values).

The grammar deliberately stays inside the *synthesizable* subset for the
DUT (no ``/``/``%``/``**``, no X literals, constant in-range bit/part
selects, latch-free always blocks, single driver per signal) so the
synthesis-vs-simulation oracle retains full power — any divergence it
reports is a real toolchain bug, not a known semantic gap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl import ast as A
from ..hdl.unparse import unparse
from ..llm.model import _stable_seed

DUT_NAME = "fz_dut"
LEAF_NAME = "fz_leaf"
TB_NAME = "tb"

_BINOPS = ("&", "|", "^", "+", "-", "*", "<<", ">>",
           "==", "!=", "<", ">", "<=", ">=", "&&", "||")
_UNOPS = ("~", "!", "-", "&", "|", "^")


@dataclass(frozen=True)
class FuzzConfig:
    """Size/feature mix knobs for the generator."""

    max_inputs: int = 3
    max_outputs: int = 2
    max_width: int = 8
    max_depth: int = 3
    stimulus_steps: int = 4
    p_always: float = 0.35        # drive an output from always @* vs assign
    p_sequential: float = 0.20    # add a posedge-clocked output
    p_hierarchy: float = 0.25     # instantiate a leaf submodule
    p_ternary: float = 0.5
    p_concat: float = 0.4


@dataclass(frozen=True)
class FuzzCase:
    """One generated design + testbench, replayable from its seed."""

    index: int
    seed: int                     # derived per-case seed (for reporting)
    campaign_seed: int
    dut_name: str
    dut_source: str
    tb_source: str
    top: str = TB_NAME
    sequential: bool = False
    hierarchical: bool = False

    def combined_source(self) -> str:
        return self.dut_source + "\n" + self.tb_source


def _n(value: int, width: int = 32, sized: bool = False) -> A.Number:
    return A.Number(width, value, 0, sized)


class _ExprGen:
    """Random expression trees over a fixed signal environment."""

    def __init__(self, rng: random.Random, env: dict[str, int],
                 config: FuzzConfig):
        self.rng = rng
        self.env = env            # name -> width
        self.config = config

    def _leaf(self) -> A.Expr:
        rng = self.rng
        if self.env and rng.random() < 0.7:
            return A.Identifier(rng.choice(sorted(self.env)))
        width = rng.randint(1, self.config.max_width)
        return _n(rng.getrandbits(width), width, sized=True)

    def gen(self, depth: int) -> A.Expr:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.2:
            return self._leaf()
        roll = rng.random()
        if roll < 0.40:
            op = rng.choice(_BINOPS)
            right = self.gen(depth - 1)
            if op in ("<<", ">>") and rng.random() < 0.75:
                # Bias shift amounts toward small constants.
                right = _n(rng.randint(0, self.config.max_width),
                           4, sized=True)
            return A.Binary(op, self.gen(depth - 1), right)
        if roll < 0.52:
            return A.Unary(rng.choice(_UNOPS), self.gen(depth - 1))
        if roll < 0.52 + 0.16 * self.config.p_ternary:
            return A.Ternary(self.gen(depth - 1), self.gen(depth - 1),
                             self.gen(depth - 1))
        if roll < 0.52 + 0.16 * self.config.p_ternary \
                + 0.16 * self.config.p_concat:
            parts = tuple(self.gen(depth - 1)
                          for _ in range(rng.randint(2, 3)))
            if rng.random() < 0.3:
                return A.Replicate(_n(rng.randint(1, 3), 32),
                                   A.Concat(parts))
            return A.Concat(parts)
        if self.env:
            name = rng.choice(sorted(self.env))
            width = self.env[name]
            if width > 1 and rng.random() < 0.5:
                msb = rng.randint(0, width - 1)
                lsb = rng.randint(0, msb)
                return A.Slice(name, _n(msb), _n(lsb))
            return A.Index(name, _n(rng.randint(0, width - 1)))
        return self._leaf()


@dataclass
class _Signal:
    name: str
    width: int


def _rng_of(width: int) -> A.Range | None:
    if width == 1:
        return None
    return A.Range(_n(width - 1), _n(0))


def _build_leaf(rng: random.Random, config: FuzzConfig) -> A.Module:
    """A tiny combinational leaf module for hierarchy cases."""
    n_in = rng.randint(1, 2)
    inputs = [_Signal(f"li{i}", rng.randint(1, config.max_width))
              for i in range(n_in)]
    out = _Signal("lo", rng.randint(1, config.max_width))
    env = {s.name: s.width for s in inputs}
    gen = _ExprGen(rng, env, config)
    ports = tuple([A.Port(s.name, "input", _rng_of(s.width))
                   for s in inputs]
                  + [A.Port(out.name, "output", _rng_of(out.width))])
    assign = A.ContinuousAssign(A.LValue(out.name), gen.gen(2))
    return A.Module(LEAF_NAME, ports, assigns=(assign,))


def _comb_always(gen: _ExprGen, rng: random.Random,
                 out: _Signal) -> A.Always:
    """Latch-free ``always @*``: unconditional assign first, then maybe
    a conditional overwrite."""
    stmts: list[A.Stmt] = [
        A.Assign(A.LValue(out.name), gen.gen(2), blocking=True)]
    if rng.random() < 0.6:
        then = A.Assign(A.LValue(out.name), gen.gen(2), blocking=True)
        other = None
        if rng.random() < 0.5:
            other = A.Assign(A.LValue(out.name), gen.gen(1), blocking=True)
        stmts.append(A.If(gen.gen(1), then, other))
    return A.Always((), A.Block(tuple(stmts)))


def _build_dut(rng: random.Random, config: FuzzConfig
               ) -> tuple[A.SourceFile, list[_Signal], list[_Signal],
                          bool, bool]:
    """Returns (source file, inputs, outputs, sequential, hierarchical)."""
    n_in = rng.randint(1, config.max_inputs)
    n_out = rng.randint(1, config.max_outputs)
    inputs = [_Signal(f"in{i}", rng.randint(1, config.max_width))
              for i in range(n_in)]
    outputs = [_Signal(f"out{i}", rng.randint(1, config.max_width))
               for i in range(n_out)]

    sequential = rng.random() < config.p_sequential
    hierarchical = rng.random() < config.p_hierarchy
    if sequential:
        inputs.insert(0, _Signal("clk", 1))

    sf = A.SourceFile()
    env = {s.name: s.width for s in inputs if s.name != "clk"}

    nets: list[A.Net] = []
    assigns: list[A.ContinuousAssign] = []
    always_blocks: list[A.Always] = []
    instances: list[A.Instance] = []

    if hierarchical:
        leaf = _build_leaf(rng, config)
        sf.add(leaf)
        leaf_out_port = leaf.ports[-1]
        leaf_out_w = 1 if leaf_out_port.rng is None else \
            leaf_out_port.rng.msb.value + 1
        nets.append(A.Net("lw", "wire", _rng_of(leaf_out_w)))
        gen = _ExprGen(rng, env, config)
        conns = [(p.name, gen.gen(1)) for p in leaf.ports[:-1]]
        conns.append((leaf_out_port.name, A.Identifier("lw")))
        instances.append(A.Instance(LEAF_NAME, "u_leaf", tuple(conns)))
        env["lw"] = leaf_out_w

    ports: list[A.Port] = []
    for s in inputs:
        ports.append(A.Port(s.name, "input", _rng_of(s.width)))

    gen = _ExprGen(rng, env, config)
    for i, out in enumerate(outputs):
        if sequential and i == 0:
            ports.append(A.Port(out.name, "output", _rng_of(out.width),
                                is_reg=True))
            always_blocks.append(A.Always(
                (("posedge", "clk"),),
                A.Assign(A.LValue(out.name), gen.gen(config.max_depth),
                         blocking=False)))
        elif rng.random() < config.p_always:
            ports.append(A.Port(out.name, "output", _rng_of(out.width),
                                is_reg=True))
            always_blocks.append(_comb_always(gen, rng, out))
        else:
            ports.append(A.Port(out.name, "output", _rng_of(out.width)))
            assigns.append(A.ContinuousAssign(
                A.LValue(out.name), gen.gen(config.max_depth)))

    sf.add(A.Module(DUT_NAME, tuple(ports), nets=tuple(nets),
                    assigns=tuple(assigns),
                    always_blocks=tuple(always_blocks),
                    instances=tuple(instances)))
    return sf, inputs, outputs, sequential, hierarchical


def _build_tb(rng: random.Random, config: FuzzConfig,
              inputs: list[_Signal], outputs: list[_Signal],
              sequential: bool) -> A.SourceFile:
    nets: list[A.Net] = []
    for s in inputs:
        nets.append(A.Net(s.name, "reg", _rng_of(s.width)))
    for s in outputs:
        nets.append(A.Net(s.name, "wire", _rng_of(s.width)))

    conns = tuple((s.name, A.Identifier(s.name))
                  for s in inputs + outputs)
    inst = A.Instance(DUT_NAME, "u_dut", conns)

    stmts: list[A.Stmt] = []
    display_args = tuple(A.Identifier(s.name) for s in outputs)
    fmt_tail = " ".join(f"{s.name}=%b" for s in outputs)
    for step in range(config.stimulus_steps):
        for s in inputs:
            if s.name == "clk":
                continue
            stmts.append(A.Assign(
                A.LValue(s.name),
                _n(rng.getrandbits(s.width), s.width, sized=True),
                blocking=True))
        if sequential:
            stmts.append(A.Assign(A.LValue("clk"), _n(0, 1, sized=True),
                                  blocking=True))
            stmts.append(A.Delay(_n(1)))
            stmts.append(A.Assign(A.LValue("clk"), _n(1, 1, sized=True),
                                  blocking=True))
        stmts.append(A.Delay(_n(1)))
        stmts.append(A.SysTask(
            "$display",
            (A.StringLit(f"s{step} {fmt_tail}"),) + display_args))
    stmts.append(A.SysTask("$display", (A.StringLit("PASS: fuzz case"),)))
    stmts.append(A.SysTask("$finish"))

    tb = A.Module(TB_NAME, (), nets=tuple(nets), instances=(inst,),
                  initial_blocks=(A.Initial(A.Block(tuple(stmts))),))
    sf = A.SourceFile()
    sf.add(tb)
    return sf


def generate_case(campaign_seed: int, index: int,
                  config: FuzzConfig | None = None) -> FuzzCase:
    """Deterministically generate case ``index`` of a campaign."""
    config = config or FuzzConfig()
    case_seed = _stable_seed("fuzz", campaign_seed, index)
    rng = random.Random(case_seed)
    dut_sf, inputs, outputs, sequential, hierarchical = \
        _build_dut(rng, config)
    tb_sf = _build_tb(rng, config, inputs, outputs, sequential)
    return FuzzCase(index=index, seed=case_seed,
                    campaign_seed=campaign_seed, dut_name=DUT_NAME,
                    dut_source=unparse(dut_sf), tb_source=unparse(tb_sf),
                    sequential=sequential, hierarchical=hierarchical)


def generate_cases(campaign_seed: int, budget: int,
                   config: FuzzConfig | None = None):
    """Yield the campaign's case stream (index 0 .. budget-1)."""
    for index in range(budget):
        yield generate_case(campaign_seed, index, config)
