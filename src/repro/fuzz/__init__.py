"""``repro.fuzz`` — differential fuzzing of the mini-Verilog stack.

A seeded grammar generator (:mod:`repro.fuzz.grammar`) emits
random-but-valid designs plus matching testbenches; six differential
oracles (:mod:`repro.fuzz.oracles`) cross-check the toolchain against
itself — simulation vs synthesis, cached vs cold compiles, parallel vs
serial evaluation, brokered vs direct model clients, and parse/unparse
round trips.  Divergences are minimized by an AST delta-debugger
(:mod:`repro.fuzz.shrink`) and filed into ``tests/corpus/`` as permanent
regressions (:mod:`repro.fuzz.runner`).  ``python -m repro.fuzz`` drives a
campaign; every case replays from ``(campaign seed, index)`` alone.
"""

from __future__ import annotations

from .grammar import (DUT_NAME, LEAF_NAME, TB_NAME, FuzzCase, FuzzConfig,
                      generate_case, generate_cases)
from .oracles import ORACLES, OracleReport, run_oracles
from .runner import (DEFAULT_CORPUS_DIR, TB_SEPARATOR, CampaignResult,
                     FuzzFinding, corpus_entry, run_campaign,
                     write_corpus_entry)
from .shrink import ShrinkResult, oracle_predicate, shrink_case

__all__ = [
    "CampaignResult", "DEFAULT_CORPUS_DIR", "DUT_NAME", "FuzzCase",
    "FuzzConfig", "FuzzFinding", "LEAF_NAME", "ORACLES", "OracleReport",
    "ShrinkResult", "TB_NAME", "TB_SEPARATOR", "corpus_entry",
    "generate_case",
    "generate_cases", "oracle_predicate", "run_campaign", "run_oracles",
    "shrink_case", "write_corpus_entry",
]
