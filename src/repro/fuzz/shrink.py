"""Automatic shrinking of failing fuzz cases (delta debugging on the AST).

Given a case and the oracle that flagged it, the shrinker repeatedly tries
structure-removing rewrites — drop a module item, collapse a statement,
replace a subexpression with one of its operands or a constant — and keeps
any rewrite under which the *same class* of failure still reproduces.
Greedy first-improvement with restart, bounded by a predicate-evaluation
budget; every accepted candidate is strictly smaller (in rendered source
length), so the loop terminates.

Everything is derived from the AST generically: any dataclass field that
holds an AST node (or a tuple of them) is a reduction site, so new grammar
features shrink for free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace as _dc_replace
from typing import Callable, Iterator

from ..hdl import ast as A
from ..hdl import parse, unparse
from .grammar import FuzzCase

# Fields whose tuple elements may be deleted outright (vs only reduced).
_DELETABLE = {
    (A.Module, "assigns"), (A.Module, "always_blocks"),
    (A.Module, "initial_blocks"), (A.Module, "nets"),
    (A.Module, "instances"), (A.Module, "functions"),
    (A.Module, "parameters"),
    (A.Block, "stmts"), (A.Concat, "parts"), (A.Case, "items"),
}

_ZERO = A.Number(1, 0, 0, True)


def _is_ast(value: object) -> bool:
    return dataclasses.is_dataclass(value) and not isinstance(value, type)


def _direct_reductions(node: object) -> Iterator[object]:
    """Same-type-slot replacements for one node (no recursion)."""
    if isinstance(node, A.If):
        yield node.then
        if node.other is not None:
            yield node.other
            yield A.If(node.cond, node.then, None)
    elif isinstance(node, A.Case):
        for item in node.items:
            yield item.body
    elif isinstance(node, (A.For, A.While, A.Repeat)):
        yield node.body
    elif isinstance(node, A.Delay) and node.then is not None:
        yield node.then
        yield A.Delay(node.amount, None)
    elif isinstance(node, A.Block):
        if len(node.stmts) == 1:
            yield node.stmts[0]
    elif isinstance(node, A.Binary):
        yield node.left
        yield node.right
    elif isinstance(node, A.Ternary):
        yield node.if_true
        yield node.if_false
    elif isinstance(node, A.Unary):
        yield node.operand
    elif isinstance(node, A.Replicate):
        yield node.inner
    elif isinstance(node, A.Concat):
        yield from node.parts
    elif isinstance(node, (A.Index, A.Slice)):
        yield A.Identifier(node.target)
    if isinstance(node, A.Expr) and not isinstance(
            node, (A.Number, A.Identifier, A.StringLit)):
        yield _ZERO


def _variants(node: object) -> Iterator[object]:
    """All one-step reductions of ``node``, outermost first."""
    yield from _direct_reductions(node)
    if not _is_ast(node):
        return
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if _is_ast(value):
            for v in _variants(value):
                yield _dc_replace(node, **{f.name: v})
        elif isinstance(value, tuple):
            deletable = (type(node), f.name) in _DELETABLE
            for i, item in enumerate(value):
                if deletable and len(value) > (
                        1 if isinstance(node, (A.Concat, A.Case)) else 0):
                    yield _dc_replace(
                        node, **{f.name: value[:i] + value[i + 1:]})
                if _is_ast(item):
                    for v in _variants(item):
                        yield _dc_replace(
                            node, **{f.name: value[:i] + (v,) + value[i + 1:]})
                elif isinstance(item, tuple):
                    # Pairs like instance connections / param overrides.
                    for j, sub in enumerate(item):
                        if not _is_ast(sub):
                            continue
                        for v in _variants(sub):
                            new_item = item[:j] + (v,) + item[j + 1:]
                            yield _dc_replace(
                                node, **{f.name: value[:i] + (new_item,)
                                         + value[i + 1:]})


def _source_variants(sf: A.SourceFile) -> Iterator[A.SourceFile]:
    names = list(sf.modules)
    for name in names:
        if len(names) > 1:
            out = A.SourceFile()
            for other, mod in sf.modules.items():
                if other != name:
                    out.modules[other] = mod
            yield out
        for variant in _variants(sf.modules[name]):
            if not isinstance(variant, A.Module):
                continue
            out = A.SourceFile()
            for other, mod in sf.modules.items():
                out.modules[other] = variant if other == name else mod
            yield out


@dataclasses.dataclass
class ShrinkResult:
    dut_source: str
    tb_source: str
    checks: int                  # predicate evaluations spent
    rounds: int                  # accepted reductions
    exhausted: bool              # budget ran out before a fixpoint


def shrink_case(case: FuzzCase,
                predicate: Callable[[str, str], bool],
                max_checks: int = 400) -> ShrinkResult:
    """Minimize ``(dut_source, tb_source)`` while ``predicate`` holds.

    ``predicate(dut, tb)`` must return True when the original failure still
    reproduces; it is expected to swallow compile errors of broken
    candidates (returning False).  The original case must satisfy it.
    """
    current = [case.dut_source, case.tb_source]
    checks = 0
    rounds = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for which in (0, 1):
            try:
                sf = parse(current[which])
            except Exception:
                continue
            for variant in _source_variants(sf):
                if checks >= max_checks:
                    return ShrinkResult(current[0], current[1], checks,
                                        rounds, exhausted=True)
                try:
                    text = unparse(variant)
                except Exception:
                    continue
                if len(text) >= len(current[which]):
                    continue
                trial = list(current)
                trial[which] = text
                checks += 1
                try:
                    still_failing = predicate(trial[0], trial[1])
                except Exception:
                    still_failing = False
                if still_failing:
                    current = trial
                    rounds += 1
                    progress = True
                    break
            if progress:
                break
    return ShrinkResult(current[0], current[1], checks, rounds,
                        exhausted=False)


def oracle_predicate(case: FuzzCase, oracle, kind: str
                     ) -> Callable[[str, str], bool]:
    """Predicate: the given oracle still reports the same failure class."""

    def check(dut_source: str, tb_source: str) -> bool:
        trial = dataclasses.replace(case, dut_source=dut_source,
                                    tb_source=tb_source)
        report = oracle(trial)
        return report.divergence and report.kind == kind

    return check
