"""Campaign driver: generate cases, run oracles, shrink and file findings.

A campaign is fully determined by ``(seed, budget, config)``: the case
stream is byte-for-byte reproducible, and any finding's corpus entry
records the exact replay command.  Divergences are shrunk (unless
disabled) with the same oracle as the predicate and written to the
regression corpus, where ``tests/test_fuzz_corpus.py`` picks them up as
permanent tier-1 tests.

Checkpointing: given a :class:`~repro.store.CampaignJournal`, the runner
journals every completed case (reports digest + findings) to the artifact
store, and a ``--resume`` run replays the journaled prefix — including
re-materializing finding corpus files — so an interrupted campaign
restarted with the same seed/config produces the byte-identical
:class:`CampaignResult` an uninterrupted run would have.  Cases are
independent and keyed per index, so resuming with a *larger* budget
extends a finished campaign incrementally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..obs import get_metrics, get_tracer
from ..store import MISS, CampaignJournal
from .grammar import FuzzCase, FuzzConfig, generate_case
from .oracles import ORACLES, OracleReport, run_oracles
from .shrink import ShrinkResult, oracle_predicate, shrink_case

DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")

# Marks the design/testbench boundary inside a corpus file so the pytest
# bridge can rebuild the two-unit compile the fuzzer used.
TB_SEPARATOR = "// --- testbench ---\n"


@dataclass
class FuzzFinding:
    """One divergence: the case, the report, and its shrunk form."""

    case: FuzzCase
    report: OracleReport
    shrunk_dut: str
    shrunk_tb: str
    shrink_checks: int = 0
    corpus_path: str | None = None

    def describe(self) -> str:
        return (f"case {self.case.index} (seed {self.case.campaign_seed}) "
                f"[{self.report.name}/{self.report.kind}] "
                f"{self.report.detail}")


@dataclass
class CampaignResult:
    budget: int
    seed: int
    cases_run: int = 0
    oracle_runs: int = 0
    oracles_skipped: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> dict:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "cases_run": self.cases_run,
            "oracle_runs": self.oracle_runs,
            "oracles_skipped": self.oracles_skipped,
            "divergences": len(self.findings),
            "findings": [f.describe() for f in self.findings],
        }


def corpus_entry(finding: FuzzFinding) -> str:
    """Render a finding as a self-describing corpus ``.v`` file."""
    case = finding.case
    detail = " ".join(finding.report.detail.split())
    header = [
        f"// fuzz finding: oracle={finding.report.name} "
        f"kind={finding.report.kind}",
        f"// campaign seed={case.campaign_seed} case={case.index} "
        f"top={case.top} dut={case.dut_name}",
        f"// replay: python -m repro.fuzz --seed {case.campaign_seed} "
        f"--replay {case.index}",
        f"// detail: {detail[:200]}",
        "// expect: divergence",
    ]
    return "\n".join(header) + "\n" + finding.shrunk_dut \
        + TB_SEPARATOR + finding.shrunk_tb


def write_corpus_entry(finding: FuzzFinding, corpus_dir: str) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    name = (f"fuzz_seed{finding.case.campaign_seed}_"
            f"case{finding.case.index}_{finding.report.name}.v")
    path = os.path.join(corpus_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(corpus_entry(finding))
    return path


def campaign_fingerprint(seed: int, config: FuzzConfig | None,
                         oracle_names: tuple[str, ...] | None,
                         shrink: bool) -> tuple:
    """Everything that determines a campaign's per-case outcomes.

    The budget is deliberately excluded: cases are keyed per index, so a
    journal written at budget 50 seeds a resume at budget 100.
    """
    return ("fuzz", seed, config or FuzzConfig(), oracle_names, shrink)


def run_campaign(budget: int, seed: int,
                 config: FuzzConfig | None = None,
                 corpus_dir: str | None = DEFAULT_CORPUS_DIR,
                 shrink: bool = True,
                 oracle_names: tuple[str, ...] | None = None,
                 progress=None,
                 journal: CampaignJournal | None = None) -> CampaignResult:
    """Fuzz ``budget`` cases from ``seed``; returns the campaign record.

    ``corpus_dir=None`` disables writing finding files (used by tests);
    ``progress`` is an optional callable ``(index, n_findings)`` invoked
    after every case.  A ``journal`` checkpoints each completed case to
    the artifact store; with its ``resume`` flag set, journaled cases are
    replayed instead of re-run (byte-identical by construction — the
    checkpoint is the pickled outcome of the same pure case function).
    """
    config = config or FuzzConfig()
    tracer = get_tracer()
    result = CampaignResult(budget=budget, seed=seed)
    for index in range(budget):
        if journal is not None:
            snapshot = journal.lookup("case", index)
            if snapshot is not MISS:
                _restore_case(result, snapshot, corpus_dir)
                if progress is not None:
                    progress(index, len(result.findings))
                continue
        case = generate_case(seed, index, config)
        if tracer.enabled:
            span = tracer.span("fuzz.case", index=index,
                               sequential=case.sequential,
                               hierarchical=case.hierarchical)
        else:
            span = None
        with span if span is not None else _NULL_CTX:
            reports = run_oracles(case, oracle_names)
        result.cases_run += 1
        result.oracle_runs += len(reports)
        result.oracles_skipped += sum(1 for r in reports if r.skipped)
        if tracer.enabled:
            metrics = get_metrics()
            metrics.counter("fuzz.cases").add(1)
            metrics.counter("fuzz.oracle_runs").add(len(reports))
        case_findings: list[FuzzFinding] = []
        for report in reports:
            if not report.divergence:
                continue
            finding = _handle_divergence(case, report, shrink, corpus_dir,
                                         tracer)
            result.findings.append(finding)
            case_findings.append(finding)
        if journal is not None:
            journal.record(
                "case", index,
                {"oracle_runs": len(reports),
                 "oracles_skipped": sum(1 for r in reports if r.skipped),
                 "findings": case_findings})
        if progress is not None:
            progress(index, len(result.findings))
    return result


def _restore_case(result: CampaignResult, snapshot: dict,
                  corpus_dir: str | None) -> None:
    """Fold one journaled case back into the campaign record.

    Corpus files are re-materialized from the journaled findings —
    :func:`corpus_entry` is a pure render, so the rewritten file is
    byte-identical to the one the interrupted run produced.
    """
    result.cases_run += 1
    result.oracle_runs += snapshot["oracle_runs"]
    result.oracles_skipped += snapshot["oracles_skipped"]
    for finding in snapshot["findings"]:
        if corpus_dir is not None:
            finding.corpus_path = write_corpus_entry(finding, corpus_dir)
        else:
            finding.corpus_path = None
        result.findings.append(finding)


def _handle_divergence(case: FuzzCase, report: OracleReport, shrink: bool,
                       corpus_dir: str | None, tracer) -> FuzzFinding:
    shrunk = ShrinkResult(case.dut_source, case.tb_source, 0, 0, False)
    if shrink and report.kind and not report.kind.startswith("oracle-crash"):
        oracle = ORACLES[report.name]
        predicate = oracle_predicate(case, oracle, report.kind)
        shrunk = shrink_case(case, predicate)
    finding = FuzzFinding(case=case, report=report,
                          shrunk_dut=shrunk.dut_source,
                          shrunk_tb=shrunk.tb_source,
                          shrink_checks=shrunk.checks)
    if corpus_dir is not None:
        finding.corpus_path = write_corpus_entry(finding, corpus_dir)
    if tracer.enabled:
        metrics = get_metrics()
        metrics.counter("fuzz.divergences").add(1)
        metrics.counter("fuzz.shrink_checks").add(shrunk.checks)
    return finding


class _NullCtx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullCtx()
