"""Differential oracles: seven independent ways a fuzz case can disagree.

Each oracle compares two implementations that the repo *claims* are
equivalent (the PR 1–3 equivalence stories plus the core sim-vs-synth
semantic contract).  An oracle returns an :class:`OracleReport`; a report
with ``ok=False`` is a finding worth shrinking.

(a) ``synth``     — event-driven simulation vs bit-blasted AIG evaluation
(b) ``cache``     — cold-compile, warm-cache, and cache-free runs agree
(c) ``parallel``  — ``ParallelEvaluator.map`` vs a serial comprehension
(d) ``service``   — broker-mediated client vs direct ``SimulatedLLM``
(e) ``roundtrip`` — parse → unparse → reparse is a structural fixpoint
(f) ``compiled``  — compiled straight-line engine vs the event engine
(g) ``critic``    — trojan-mutated DUTs must be flagged by the critic
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec.parallel import ParallelEvaluator
from ..exec.tasks import run_testbench_task
from ..hdl import parse, run_testbench, strip_locations, unparse
from ..hdl.compile import CompileCache
from ..hdl.elaborate import elaborate
from ..hdl.errors import HdlError
from ..hdl.testbench import TestbenchResult, _simulate
from ..llm.model import GenerationTask
from ..service import resolve_client
from ..synth.cec import check_against_simulation
from ..synth.flatten import synthesize_source
from ..synth.synthesize import SynthesisError
from .grammar import FuzzCase

MAX_SIM_TIME = 10_000


def _error_slug(exc: BaseException) -> str:
    """Stable fingerprint of an error: type plus its message shape.

    Identifiers and numbers are stripped so the slug survives shrinking
    (signal names change), but two *different* rejection reasons — say
    "division not synthesizable" vs "no driver" — stay distinct, which
    keeps the shrinker from wandering onto an unrelated error.
    """
    words = []
    for token in str(exc).replace("'", " ").replace('"', " ").split():
        if any(ch.isdigit() for ch in token):
            continue
        if token.isidentifier() and token.lower() != token:
            continue
        words.append(token.lower())
        if len(words) >= 5:
            break
    return f"{type(exc).__name__}:{'-'.join(words)}"


@dataclass
class OracleReport:
    """Outcome of one oracle on one case."""

    name: str
    ok: bool
    skipped: bool = False
    kind: str = ""                # coarse failure class, stable under shrinking
    detail: str = ""

    @property
    def divergence(self) -> bool:
        return not self.ok and not self.skipped


def _result_fields(result: TestbenchResult) -> tuple:
    return (result.compiled, result.pass_count, result.fail_count,
            result.error_count, result.finished, result.sim_time,
            tuple(result.output), result.compile_error,
            result.runtime_error)


def _diff(label_a: str, a: tuple, label_b: str, b: tuple) -> str:
    names = ("compiled", "pass", "fail", "error", "finished", "sim_time",
             "output", "compile_error", "runtime_error")
    parts = [f"{n}: {label_a}={x!r} {label_b}={y!r}"
             for n, x, y in zip(names, a, b) if x != y]
    return "; ".join(parts)


# --------------------------------------------------------------------------
# (a) simulation vs synthesized netlist
# --------------------------------------------------------------------------


def oracle_synth(case: FuzzCase) -> OracleReport:
    if case.sequential:
        return OracleReport("synth", ok=True, skipped=True,
                            detail="sequential case (combinational CEC only)")
    try:
        synth = synthesize_source(case.dut_source, case.dut_name)
    except (SynthesisError, HdlError) as exc:
        # The grammar stays inside the synthesizable subset, so a refusal
        # to synthesize a generated design is itself a finding.
        return OracleReport(
            "synth", ok=False, kind=f"synth-error:{_error_slug(exc)}",
            detail=f"synthesis rejected in-subset design: {exc}")
    module = parse(case.dut_source).modules[case.dut_name]
    try:
        cec = check_against_simulation(synth, case.dut_source, module,
                                       vectors=16, seed=case.seed % 65_521)
    except HdlError as exc:
        return OracleReport(
            "synth", ok=False, kind=f"sim-error:{_error_slug(exc)}",
            detail=f"simulation failed during CEC: {exc}")
    if not cec.equivalent:
        return OracleReport(
            "synth", ok=False, kind="cec-mismatch",
            detail=f"outputs {cec.mismatched_outputs} diverge on "
                   f"{cec.counterexample} after {cec.vectors_checked} vectors")
    return OracleReport("synth", ok=True)


# --------------------------------------------------------------------------
# (b) compile cache: cold vs warm vs cache-free
# --------------------------------------------------------------------------


def oracle_cache(case: FuzzCase) -> OracleReport:
    cache = CompileCache()
    cold = run_testbench(case.dut_source, case.top, max_time=MAX_SIM_TIME,
                         seed=1, tb_source=case.tb_source, cache=cache)
    warm = run_testbench(case.dut_source, case.top, max_time=MAX_SIM_TIME,
                         seed=1, tb_source=case.tb_source, cache=cache)
    # Cache-free reference: straight parse → elaborate → simulate.
    try:
        design = elaborate(parse(case.combined_source()), case.top)
        ref = _simulate(design, MAX_SIM_TIME, 1)
    except HdlError as exc:
        ref = TestbenchResult(compiled=False, compile_error=str(exc))
    f_cold, f_warm, f_ref = (_result_fields(r) for r in (cold, warm, ref))
    if f_cold != f_warm:
        return OracleReport("cache", ok=False, kind="cold-vs-warm",
                            detail=_diff("cold", f_cold, "warm", f_warm))
    if f_cold != f_ref:
        return OracleReport("cache", ok=False, kind="cached-vs-direct",
                            detail=_diff("cached", f_cold, "direct", f_ref))
    return OracleReport("cache", ok=True)


# --------------------------------------------------------------------------
# (c) parallel vs serial evaluation
# --------------------------------------------------------------------------


def oracle_parallel(case: FuzzCase) -> OracleReport:
    payloads = [(case.dut_source, case.top, MAX_SIM_TIME, seed,
                 case.tb_source) for seed in (1, 2, 3)]
    evaluator = ParallelEvaluator(jobs=2, mode="thread")
    par = evaluator.map(run_testbench_task, payloads)
    ser = [run_testbench_task(p) for p in payloads]
    for i, (p, s) in enumerate(zip(par, ser)):
        fp, fs = _result_fields(p), _result_fields(s)
        if fp != fs:
            return OracleReport(
                "parallel", ok=False, kind="parallel-vs-serial",
                detail=f"payload {i}: " + _diff("parallel", fp, "serial", fs))
    return OracleReport("parallel", ok=True)


# --------------------------------------------------------------------------
# (d) broker-mediated vs direct model client
# --------------------------------------------------------------------------


def oracle_service(case: FuzzCase) -> OracleReport:
    task = GenerationTask(task_id=f"fuzz_{case.campaign_seed}_{case.index}",
                          spec="fuzz-generated design",
                          reference_source=case.dut_source, complexity=2)
    seed = case.seed % (2 ** 31)
    direct = resolve_client("gpt-4", seed=seed, service=False)
    brokered = resolve_client("gpt-4", seed=seed, service=True)
    g_direct = direct.generate(task)
    g_brokered = brokered.generate(task)
    if g_direct.text != g_brokered.text or \
            g_direct.faults != g_brokered.faults:
        return OracleReport("service", ok=False, kind="generate-mismatch",
                            detail="broker generate() differs from direct "
                                   f"(faults {g_direct.fault_ids} vs "
                                   f"{g_brokered.fault_ids})")
    feedback = "FAIL: output mismatch at t=1"
    r_direct = direct.refine(task, g_direct, feedback)
    r_brokered = brokered.refine(task, g_brokered, feedback)
    if r_direct.text != r_brokered.text:
        return OracleReport("service", ok=False, kind="refine-mismatch",
                            detail="broker refine() differs from direct")
    return OracleReport("service", ok=True)


# --------------------------------------------------------------------------
# (e) parse → unparse → reparse round trip
# --------------------------------------------------------------------------


def oracle_roundtrip(case: FuzzCase) -> OracleReport:
    for label, src in (("dut", case.dut_source), ("tb", case.tb_source)):
        try:
            first = strip_locations(parse(src))
            text = unparse(first)
            second = strip_locations(parse(text))
        except HdlError as exc:
            return OracleReport("roundtrip", ok=False, kind="reparse-error",
                                detail=f"{label}: {exc}")
        if first != second:
            return OracleReport("roundtrip", ok=False, kind="ast-mismatch",
                                detail=f"{label}: reparsed AST differs")
        if unparse(second) != text:
            return OracleReport("roundtrip", ok=False, kind="not-fixpoint",
                                detail=f"{label}: unparse is not a fixpoint")
    return OracleReport("roundtrip", ok=True)


# --------------------------------------------------------------------------
# (f) compiled engine vs event-driven engine
# --------------------------------------------------------------------------


def oracle_compiled(case: FuzzCase) -> OracleReport:
    """The compiled fast path must reproduce the event engine exactly.

    Ineligible designs and runtime bails are skips, not findings — the
    production selector falls back to the event engine for them — but any
    *completed* compiled run must match field-for-field.
    """
    from ..hdl.compiled import UnsupportedDesign, XBail, compile_program
    from ..hdl.testbench import _simulate_compiled
    try:
        design = elaborate(parse(case.combined_source()), case.top)
    except HdlError as exc:
        return OracleReport("compiled", ok=True, skipped=True,
                            detail=f"case does not compile: {exc}")
    try:
        program = compile_program(design)
    except UnsupportedDesign as exc:
        return OracleReport("compiled", ok=True, skipped=True,
                            detail=f"ineligible for compiled engine: {exc}")
    try:
        fast = _simulate_compiled(program, MAX_SIM_TIME, 1)
    except XBail as exc:
        return OracleReport("compiled", ok=True, skipped=True,
                            detail=f"compiled engine bailed: {exc}")
    ref = _simulate(design, MAX_SIM_TIME, 1)
    f_fast, f_ref = _result_fields(fast), _result_fields(ref)
    if f_fast != f_ref:
        return OracleReport(
            "compiled", ok=False, kind="compiled-vs-event",
            detail=_diff("compiled", f_fast, "event", f_ref))
    return OracleReport("compiled", ok=True)


def oracle_critic(case: FuzzCase) -> OracleReport:
    """A trojan-mutated DUT must be flagged by the critic's rule stage.

    The mutation mirrors :func:`repro.flows.security.insert_trojan`:
    redirect one combinational output through a rare-trigger corruption
    mux keyed on a multi-bit input.  The critic (`critic-flag` oracle)
    must label the mutant ``trojan``; a mutant the rules wave through is
    a finding.  Cases without an eligible port pair — or whose random
    logic already trips the trojan rule — are skips, not findings.
    """
    import re

    from ..critic.rules import validate_rtl
    from ..hdl.lint import _decl_widths
    from ..llm.model import _stable_seed

    if case.sequential:
        return OracleReport("critic", ok=True, skipped=True,
                            detail="sequential DUT: insertion pattern "
                                   "is combinational-only")
    try:
        source = parse(case.dut_source)
    except HdlError as exc:
        return OracleReport("critic", ok=True, skipped=True,
                            detail=f"DUT does not parse: {exc}")
    module = source.modules.get(case.dut_name)
    if module is None:
        return OracleReport("critic", ok=True, skipped=True,
                            detail=f"no module '{case.dut_name}'")
    widths = _decl_widths(module)
    triggers = sorted(p.name for p in module.ports
                      if p.direction == "input"
                      and widths.get(p.name, 1) >= 4)
    victims = sorted(p.name for p in module.ports
                     if p.direction == "output" and not p.is_reg)
    if not triggers or not victims:
        return OracleReport("critic", ok=True, skipped=True,
                            detail="no eligible trigger/victim port pair")
    if "trojan" in validate_rtl(case.dut_source).labels():
        return OracleReport("critic", ok=True, skipped=True,
                            detail="generated logic already matches the "
                                   "trojan shape")
    trigger, victim = triggers[0], victims[0]
    width = widths[trigger]
    value = _stable_seed(case.campaign_seed, case.index, "critic") \
        % (1 << width)
    shadow = f"{victim}_pre"
    mutant = re.sub(rf"\b{victim}\b", shadow, case.dut_source)
    mutant = re.sub(rf"\b{shadow}\b(?=\s*[,)])", victim, mutant, count=1)
    victim_width = widths.get(victim, 1)
    if victim_width > 1:
        shadow_decl = f"  wire [{victim_width - 1}:0] {shadow};"
        payload = f"({shadow} ^ 1)"
    else:
        shadow_decl = f"  wire {shadow};"
        payload = f"(~{shadow})"
    trojan_logic = (f"{shadow_decl}\n"
                    f"  assign {victim} = ({trigger} == {width}'d{value}) "
                    f"? {payload} : {shadow};\n")
    # The DUT is the last module in the source (leaf modules precede it
    # on hierarchical cases), so splice before the *last* endmodule.
    head, sep, tail = mutant.rpartition("endmodule")
    mutant = head + trojan_logic + sep + tail
    try:
        parse(mutant)
    except HdlError as exc:
        return OracleReport("critic", ok=True, skipped=True,
                            detail=f"mutant does not parse: {exc}")
    verdict = validate_rtl(mutant, case.dut_name)
    if "trojan" not in verdict.labels():
        return OracleReport(
            "critic", ok=False, kind="critic-missed-trojan",
            detail=f"mutant corrupts '{victim}' on {trigger}=="
                   f"{width}'d{value} but critic labels are "
                   f"{list(verdict.labels())}")
    return OracleReport("critic", ok=True)


ORACLES: dict[str, object] = {
    "synth": oracle_synth,
    "cache": oracle_cache,
    "parallel": oracle_parallel,
    "service": oracle_service,
    "roundtrip": oracle_roundtrip,
    "compiled": oracle_compiled,
    "critic": oracle_critic,
}


def run_oracles(case: FuzzCase,
                names: tuple[str, ...] | None = None) -> list[OracleReport]:
    """Run the selected (default: all) oracles against one case."""
    selected = names or tuple(ORACLES)
    reports = []
    for name in selected:
        try:
            reports.append(ORACLES[name](case))
        except Exception as exc:  # oracle itself crashed: still a finding
            reports.append(OracleReport(
                name, ok=False, kind=f"oracle-crash:{type(exc).__name__}",
                detail=f"{type(exc).__name__}: {exc}"))
    return reports
