"""Command-line fuzz driver.

Examples::

    python -m repro.fuzz --budget 200 --seed 4
    python -m repro.fuzz --budget 500 --seed 1 --corpus tests/corpus
    python -m repro.fuzz --seed 4 --replay 17          # re-run one case
    python -m repro.fuzz --seed 4 --show 17            # print its sources
    python -m repro.fuzz --budget 500 --store --resume # resume a campaign

Exit status: 0 when every oracle agreed on every case, 1 when any
divergence was found (shrunk findings are written to the corpus
directory), 2 on usage errors.
"""

from __future__ import annotations

import json
import sys

from ..cli import (CliError, activate_store, add_seed_argument,
                   add_store_arguments, build_parser, fail)
from ..store import CampaignJournal
from .grammar import FuzzConfig, generate_case
from .oracles import ORACLES, run_oracles
from .runner import DEFAULT_CORPUS_DIR, campaign_fingerprint, run_campaign


def _parse_oracles(raw: str | None) -> tuple[str, ...] | None:
    if not raw:
        return None
    names = tuple(n.strip() for n in raw.split(",") if n.strip())
    for name in names:
        if name not in ORACLES:
            raise CliError(
                f"unknown oracle '{name}' (known: {', '.join(ORACLES)})")
    return names


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the mini-Verilog toolchain.")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of cases to generate (default: 200)")
    add_seed_argument(parser, default=1)
    parser.add_argument("--corpus", default=DEFAULT_CORPUS_DIR,
                        help="directory for shrunk findings "
                             f"(default: {DEFAULT_CORPUS_DIR})")
    parser.add_argument("--no-corpus", action="store_true",
                        help="do not write finding files")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimizing them")
    parser.add_argument("--oracles", default=None,
                        help="comma-separated oracle subset "
                             f"(default: all of {', '.join(ORACLES)})")
    parser.add_argument("--replay", type=int, default=None, metavar="INDEX",
                        help="re-run the oracles for one case and exit")
    parser.add_argument("--show", type=int, default=None, metavar="INDEX",
                        help="print one case's sources and exit")
    parser.add_argument("--max-width", type=int, default=None,
                        help="override FuzzConfig.max_width")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-100-case progress line")
    add_store_arguments(parser)
    args = parser.parse_args(argv)

    config = FuzzConfig()
    if args.max_width is not None:
        if args.max_width < 1:
            parser.error("--max-width must be >= 1")
        config = FuzzConfig(max_width=args.max_width)
    try:
        oracle_names = _parse_oracles(args.oracles)
    except CliError as exc:
        parser.error(str(exc))

    if args.show is not None:
        case = generate_case(args.seed, args.show, config)
        print(f"// campaign seed={args.seed} case={args.show} "
              f"sequential={case.sequential} hierarchical={case.hierarchical}")
        print(case.dut_source)
        print(case.tb_source, end="")
        return 0

    if args.replay is not None:
        case = generate_case(args.seed, args.replay, config)
        reports = run_oracles(case, oracle_names)
        divergences = 0
        for report in reports:
            status = "skip" if report.skipped else \
                ("ok" if report.ok else "DIVERGENCE")
            line = f"{report.name:10s} {status}"
            if report.detail:
                line += f"  {report.detail}"
            print(line)
            divergences += report.divergence
        return 1 if divergences else 0

    if args.budget < 1:
        parser.error("--budget must be >= 1")

    try:
        store = activate_store(args)
    except CliError as exc:
        return fail(str(exc))
    journal = None
    if store is not None:
        shrink = not args.no_shrink
        journal = CampaignJournal(
            store,
            campaign_fingerprint(args.seed, config, oracle_names, shrink),
            resume=args.resume)

    def progress(index: int, findings: int) -> None:
        if not args.quiet and (index + 1) % 100 == 0:
            print(f"[fuzz] {index + 1}/{args.budget} cases, "
                  f"{findings} divergences", file=sys.stderr)

    result = run_campaign(
        args.budget, args.seed, config=config,
        corpus_dir=None if args.no_corpus else args.corpus,
        shrink=not args.no_shrink, oracle_names=oracle_names,
        progress=progress, journal=journal)

    print(json.dumps(result.summary(), indent=2))
    if not result.ok:
        for finding in result.findings:
            where = finding.corpus_path or "<not written>"
            print(f"divergence: {finding.describe()} -> {where}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
