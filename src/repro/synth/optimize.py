"""AIG optimization passes: sweep, algebraic rewrite, and balance.

These play the role ABC's ``strash; rewrite; balance`` script plays in the
paper's synthesis flows: reduce node count (area proxy) and logic depth
(delay proxy) before technology mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aig import FALSE, Aig, lit_compl, lit_node, negate


@dataclass
class OptResult:
    aig: Aig
    history: list[dict] = field(default_factory=list)


def sweep(aig: Aig) -> Aig:
    """Remove logic not reachable from any output."""
    return aig.cleanup()


def _collect_and_leaves(aig: Aig, literal: int, refcount: dict[int, int],
                        leaves: list[int], depth_budget: int = 64) -> None:
    """Flatten a single-fanout AND tree rooted at ``literal`` into its leaves."""
    node = lit_node(literal)
    if (lit_compl(literal) or aig.is_input(node) or node == 0
            or refcount.get(node, 0) > 1 or depth_budget == 0):
        leaves.append(literal)
        return
    a, b = aig.fanins(node)
    _collect_and_leaves(aig, a, refcount, leaves, depth_budget - 1)
    _collect_and_leaves(aig, b, refcount, leaves, depth_budget - 1)


def balance(aig: Aig) -> Aig:
    """Rebuild AND trees as balanced binary trees to reduce depth."""
    refcount: dict[int, int] = {}
    for node in aig.topological_order():
        if not aig.is_input(node) and node != 0:
            try:
                a, b = aig.fanins(node)
            except KeyError:
                continue
            refcount[lit_node(a)] = refcount.get(lit_node(a), 0) + 1
            refcount[lit_node(b)] = refcount.get(lit_node(b), 0) + 1
    for _, out in aig.outputs:
        refcount[lit_node(out)] = refcount.get(lit_node(out), 0) + 1

    out = Aig()
    node_map: dict[int, int] = {0: FALSE}
    for name, node in aig._input_ids.items():
        node_map[node] = out.add_input(name)

    def map_lit(literal: int) -> int:
        base = node_map[lit_node(literal)]
        return negate(base) if lit_compl(literal) else base

    def build_balanced(leaves: list[int]) -> int:
        mapped = sorted((map_lit(l) for l in leaves))
        while len(mapped) > 1:
            nxt: list[int] = []
            for i in range(0, len(mapped) - 1, 2):
                nxt.append(out.and_(mapped[i], mapped[i + 1]))
            if len(mapped) % 2:
                nxt.append(mapped[-1])
            mapped = nxt
        return mapped[0]

    for node in aig.topological_order():
        if aig.is_input(node) or node == 0:
            if node not in node_map:
                node_map[node] = FALSE
            continue
        leaves: list[int] = []
        a, b = aig.fanins(node)
        _collect_and_leaves(aig, a, refcount, leaves)
        _collect_and_leaves(aig, b, refcount, leaves)
        node_map[node] = build_balanced(leaves)
    for name, literal in aig.outputs:
        out.add_output(name, map_lit(literal))
    return out.cleanup()


def rewrite(aig: Aig) -> Aig:
    """Algebraic rewrite: rebuilds through the structural hasher, which
    folds constants, shares isomorphic cones, and cancels ``a & !a``."""
    out = Aig()
    node_map: dict[int, int] = {0: FALSE}
    for name, node in aig._input_ids.items():
        node_map[node] = out.add_input(name)

    def map_lit(literal: int) -> int:
        base = node_map[lit_node(literal)]
        return negate(base) if lit_compl(literal) else base

    for node in aig.topological_order():
        if aig.is_input(node) or node == 0:
            if node not in node_map:
                node_map[node] = FALSE
            continue
        a, b = aig.fanins(node)
        fa, fb = map_lit(a), map_lit(b)
        # Absorption: a & (a & b) == a & b ; a & !(a & b) == a & !b
        for x, y in ((fa, fb), (fb, fa)):
            inner = out._ands.get(lit_node(y))
            if inner is not None and not lit_compl(y):
                if x in inner:
                    fa, fb = y, y  # a & (a & b) -> (a & b)
                    break
        node_map[node] = out.and_(fa, fb)
    for name, literal in aig.outputs:
        out.add_output(name, map_lit(literal))
    return out.cleanup()


DEFAULT_SCRIPT = ("rewrite", "balance", "rewrite", "sweep")

_PASSES = {"rewrite": rewrite, "balance": balance, "sweep": sweep}


def optimize(aig: Aig, script: tuple[str, ...] = DEFAULT_SCRIPT) -> OptResult:
    """Run an ABC-style pass script; records stats after each pass."""
    result = OptResult(aig=aig)
    result.history.append({"pass": "initial", **aig.stats()})
    current = aig
    for name in script:
        fn = _PASSES.get(name)
        if fn is None:
            raise ValueError(f"unknown optimization pass '{name}'")
        current = fn(current)
        result.history.append({"pass": name, **current.stats()})
    result.aig = current
    return result
