"""``repro.synth`` — logic synthesis: AIG construction, optimization,
technology mapping, PPA estimation, and equivalence checking.

Substitutes for the ABC-class logic synthesis and PPA reporting the paper's
flows consume (LLSM context, MCP4EDA's PPA-driven iteration, HLS pragma
optimization).
"""

from .aig import Aig, FALSE, TRUE, lit, lit_compl, lit_node, negate
from .cec import CecResult, check_against_simulation, check_aigs
from .flatten import flatten, synthesize_source
from .optimize import DEFAULT_SCRIPT, OptResult, balance, optimize, rewrite, sweep
from .ppa import PpaReport, estimate_activity, estimate_ppa
from .synthesize import (FlopSpec, SynthesisError, SynthesizedModule,
                         synthesize_module)
from .techmap import CellMapping, LutMapping, map_to_cells, map_to_luts

__all__ = [
    "Aig", "CecResult", "CellMapping", "DEFAULT_SCRIPT", "FALSE", "FlopSpec",
    "LutMapping", "OptResult", "PpaReport", "SynthesisError",
    "SynthesizedModule", "TRUE", "balance", "check_against_simulation",
    "check_aigs", "estimate_activity", "estimate_ppa", "flatten",
    "synthesize_source", "lit", "lit_compl",
    "lit_node", "map_to_cells", "map_to_luts", "negate", "optimize",
    "rewrite", "sweep", "synthesize_module",
]
