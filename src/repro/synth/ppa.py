"""Power / performance / area estimation for synthesized modules.

The PPA model is deliberately simple but *structural*: area tracks mapped
cell count, delay tracks mapped depth, and dynamic power tracks measured
switching activity from bit-parallel random simulation of the AIG — so the
pragma-optimization loops in ``repro.hls`` see a real design-dependent
objective, not a constant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .aig import Aig, lit_node
from .synthesize import SynthesizedModule
from .techmap import map_to_cells, map_to_luts

# Calibration constants (arbitrary but fixed units).
_GATE_DELAY_NS = 0.08          # per AND2 level
_LUT_DELAY_NS = 0.35           # per LUT level
_AREA_PER_NAND2_UM2 = 0.8
_FLOP_AREA_UM2 = 4.5
_DYN_POWER_PER_TOGGLE_UW = 0.9
_FLOP_POWER_UW = 1.4
_LEAKAGE_PER_GATE_NW = 2.1


@dataclass
class PpaReport:
    area_um2: float
    delay_ns: float
    power_uw: float
    gate_count: int
    lut_count: int
    logic_depth: int
    lut_depth: int
    flop_count: int
    activity: float

    @property
    def max_frequency_mhz(self) -> float:
        if self.delay_ns <= 0:
            return float("inf")
        return 1000.0 / self.delay_ns

    def summary(self) -> str:
        return (f"area={self.area_um2:.1f}um2 delay={self.delay_ns:.2f}ns "
                f"power={self.power_uw:.1f}uW gates={self.gate_count} "
                f"luts={self.lut_count} flops={self.flop_count}")


def estimate_activity(aig: Aig, patterns: int = 128, seed: int = 7) -> float:
    """Average toggle probability per AND node under random stimulus."""
    if aig.num_ands == 0:
        return 0.0
    rng = random.Random(seed)
    bits = min(patterns, 63)
    assignment = {name: rng.getrandbits(bits) for name in aig.inputs}
    shifted = {name: ((v << 1) | (v >> (bits - 1))) & ((1 << bits) - 1)
               for name, v in assignment.items()}

    def node_values(assign: dict[str, int]) -> dict[int, int]:
        mask = (1 << bits) - 1
        value: dict[int, int] = {0: 0}
        for name in aig.inputs:
            value[aig._input_ids[name]] = assign.get(name, 0) & mask
        for node in aig.topological_order():
            if node in aig._ands:
                a, b = aig.fanins(node)
                va = value[lit_node(a)]
                vb = value[lit_node(b)]
                if a & 1:
                    va = ~va & mask
                if b & 1:
                    vb = ~vb & mask
                value[node] = va & vb
            elif node not in value:
                value[node] = 0
        return value

    base = node_values(assignment)
    moved = node_values(shifted)
    toggles = 0
    count = 0
    for node in aig._ands:
        if node in base and node in moved:
            toggles += bin(base[node] ^ moved[node]).count("1")
            count += bits
    return toggles / count if count else 0.0


def estimate_ppa(synth: SynthesizedModule, lut_k: int = 4,
                 clock_ns: float | None = None, seed: int = 7) -> PpaReport:
    """Estimate power/performance/area for a synthesized module."""
    aig = synth.aig
    cells = map_to_cells(aig)
    luts = map_to_luts(aig, k=lut_k)
    depth = aig.depth()
    activity = estimate_activity(aig, seed=seed)
    flop_bits = sum(f.width for f in synth.flops)

    delay = max(depth * _GATE_DELAY_NS, 0.05)
    area = cells.area * _AREA_PER_NAND2_UM2 + flop_bits * _FLOP_AREA_UM2
    clock_factor = 1.0
    if clock_ns is not None and clock_ns > 0:
        clock_factor = max(0.25, min(4.0, 1.0 / clock_ns))
    dynamic = (aig.num_ands * activity * _DYN_POWER_PER_TOGGLE_UW
               + flop_bits * _FLOP_POWER_UW) * clock_factor
    leakage = cells.gate_count * _LEAKAGE_PER_GATE_NW / 1000.0
    return PpaReport(
        area_um2=area,
        delay_ns=delay,
        power_uw=dynamic + leakage,
        gate_count=cells.gate_count,
        lut_count=luts.lut_count,
        logic_depth=depth,
        lut_depth=luts.depth,
        flop_count=flop_bits,
        activity=activity,
    )
