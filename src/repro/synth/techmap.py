"""Technology mapping: k-LUT covering (FPGA) and a simple standard-cell map.

The LUT mapper computes k-feasible cuts greedily in topological order and
covers the network from the outputs — a simplified FlowMap-style heuristic
minimizing mapped depth first, then cut size.
"""

from __future__ import annotations

from dataclasses import dataclass

from .aig import Aig, lit_compl, lit_node


@dataclass
class LutMapping:
    k: int
    luts: dict[int, frozenset[int]]  # root node -> leaf node set
    depth: int

    @property
    def lut_count(self) -> int:
        return len(self.luts)


def map_to_luts(aig: Aig, k: int = 4) -> LutMapping:
    """Cover the AIG with k-input LUTs."""
    if k < 2:
        raise ValueError("LUT size must be at least 2")
    levels: dict[int, int] = {0: 0}
    best_cut: dict[int, frozenset[int]] = {0: frozenset()}

    for node in aig.topological_order():
        if node == 0:
            continue
        if aig.is_input(node):
            levels[node] = 0
            best_cut[node] = frozenset({node})
            continue
        a, b = aig.fanins(node)
        na, nb = lit_node(a), lit_node(b)
        trivial = frozenset(n for n in (na, nb) if n != 0)
        options = [trivial]
        merged = best_cut.get(na, frozenset()) | best_cut.get(nb, frozenset())
        if merged and len(merged) <= k and merged != trivial:
            options.append(merged)

        def lvl(cut: frozenset[int]) -> int:
            return 1 + max((levels.get(leaf, 0) for leaf in cut), default=0)

        chosen = min(options, key=lambda c: (lvl(c), len(c)))
        best_cut[node] = chosen if chosen else frozenset({na, nb} - {0})
        levels[node] = lvl(best_cut[node])

    # Cover from outputs.
    luts: dict[int, frozenset[int]] = {}
    frontier = [lit_node(literal) for _, literal in aig.outputs]
    while frontier:
        node = frontier.pop()
        if node == 0 or aig.is_input(node) or node in luts:
            continue
        cut = best_cut.get(node, frozenset())
        luts[node] = cut
        frontier.extend(cut)
    depth = max((levels.get(lit_node(l), 0) for _, l in aig.outputs), default=0)
    return LutMapping(k=k, luts=luts, depth=depth)


@dataclass
class CellMapping:
    """Standard-cell statistics from a naive AND2/INV covering."""

    and2_count: int
    inv_count: int

    @property
    def area(self) -> float:
        # NAND2-equivalent areas: AND2 = 1.5, INV = 0.67.
        return 1.5 * self.and2_count + 0.67 * self.inv_count

    @property
    def gate_count(self) -> int:
        return self.and2_count + self.inv_count


def map_to_cells(aig: Aig) -> CellMapping:
    """Count AND2 cells plus inverters implied by complemented edges."""
    inverters = 0
    seen_inverted: set[int] = set()
    reachable = aig.reachable()
    for node in reachable:
        if aig.is_input(node):
            continue
        for fan in aig.fanins(node):
            if lit_compl(fan) and lit_node(fan) not in seen_inverted:
                seen_inverted.add(lit_node(fan))
                inverters += 1
    for _, literal in aig.outputs:
        if lit_compl(literal) and lit_node(literal) not in seen_inverted:
            seen_inverted.add(lit_node(literal))
            inverters += 1
    and2 = sum(1 for n in reachable if not aig.is_input(n))
    return CellMapping(and2_count=and2, inv_count=inverters)
