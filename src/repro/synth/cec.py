"""Combinational equivalence checking.

Two modes:

* AIG vs AIG — exhaustive for small input counts, random-vector otherwise.
* AIG vs behavioural simulation — validates the synthesizer itself against
  the event-driven simulator (the same cross-check the paper's repair loop
  calls "C-RTL co-simulation", one level down).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from ..hdl import ast as A
from ..hdl.testbench import StimulusRunner
from .aig import Aig
from .synthesize import SynthesizedModule


@dataclass
class CecResult:
    equivalent: bool
    counterexample: dict[str, int] | None = None
    mismatched_outputs: list[str] = field(default_factory=list)
    vectors_checked: int = 0
    exhaustive: bool = False


def check_aigs(a: Aig, b: Aig, max_exhaustive_inputs: int = 12,
               random_vectors: int = 256, seed: int = 11) -> CecResult:
    """Compare two AIGs on their shared outputs."""
    inputs = sorted(set(a.inputs) | set(b.inputs))
    outs_a = {name for name, _ in a.outputs}
    outs_b = {name for name, _ in b.outputs}
    shared = sorted(outs_a & outs_b)
    if not shared:
        return CecResult(equivalent=False, mismatched_outputs=["<no shared outputs>"])

    def compare(assignment: dict[str, bool]) -> list[str]:
        full = {name: assignment.get(name, False) for name in inputs}
        va = a.evaluate({n: full.get(n, False) for n in a.inputs})
        vb = b.evaluate({n: full.get(n, False) for n in b.inputs})
        return [name for name in shared if va[name] != vb[name]]

    if len(inputs) <= max_exhaustive_inputs:
        count = 0
        for bits in itertools.product([False, True], repeat=len(inputs)):
            assignment = dict(zip(inputs, bits))
            bad = compare(assignment)
            count += 1
            if bad:
                return CecResult(False, {k: int(v) for k, v in assignment.items()},
                                 bad, count, exhaustive=True)
        return CecResult(True, None, [], count, exhaustive=True)

    rng = random.Random(seed)
    for i in range(random_vectors):
        assignment = {name: bool(rng.getrandbits(1)) for name in inputs}
        bad = compare(assignment)
        if bad:
            return CecResult(False, {k: int(v) for k, v in assignment.items()},
                             bad, i + 1)
    return CecResult(True, None, [], random_vectors)


def check_against_simulation(synth: SynthesizedModule, source: str,
                             module: A.Module, vectors: int = 64,
                             seed: int = 13) -> CecResult:
    """Random-vector check: synthesized AIG vs behavioural simulation.

    Only valid for purely combinational modules (no flops).
    """
    if synth.is_sequential:
        raise ValueError("check_against_simulation only handles combinational modules")
    rng = random.Random(seed)
    runner = StimulusRunner(source, module.name)
    in_widths = {name: runner.width_of(name) for name in runner.inputs}

    for i in range(vectors):
        stimulus = {name: rng.getrandbits(w) for name, w in in_widths.items()}
        sim_out = runner.apply(stimulus)
        aig_assign: dict[str, bool] = {}
        for name, value in stimulus.items():
            for bit in range(in_widths[name]):
                aig_assign[f"{name}[{bit}]"] = bool((value >> bit) & 1)
        aig_out = synth.aig.evaluate(
            {n: aig_assign.get(n, False) for n in synth.aig.inputs})
        bad: list[str] = []
        for out_name in runner.outputs:
            sim_val = sim_out[out_name]
            if sim_val.has_x:
                continue  # X from simulation can't be compared bitwise
            width = runner.width_of(out_name)
            aig_val = 0
            for bit in range(width):
                key = f"{out_name}[{bit}]"
                if aig_out.get(key, False):
                    aig_val |= 1 << bit
            if aig_val != sim_val.to_int():
                bad.append(out_name)
        if bad:
            return CecResult(False, stimulus, bad, i + 1)
    return CecResult(True, None, [], vectors)
