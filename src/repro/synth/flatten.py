"""Hierarchy flattening for synthesis.

``synthesize_module`` is a leaf-module synthesizer; this pass inlines module
instances into their parent (with per-instance renaming and port-stitching
assigns) so hierarchical designs — like the crypto-round benchmark with its
s-box submodules — synthesize to one AIG.
"""

from __future__ import annotations

import dataclasses

from ..hdl import ast as A
from ..hdl.elaborate import eval_const
from .synthesize import SynthesisError

_MAX_DEPTH = 16


def _rename_expr(expr: A.Expr, mapping: dict[str, str],
                 params: dict[str, int]) -> A.Expr:
    if isinstance(expr, A.Identifier):
        if expr.name in params:
            return A.Number(32, params[expr.name])
        return A.Identifier(mapping.get(expr.name, expr.name), expr.loc)
    if isinstance(expr, A.Unary):
        return A.Unary(expr.op, _rename_expr(expr.operand, mapping, params))
    if isinstance(expr, A.Binary):
        return A.Binary(expr.op, _rename_expr(expr.left, mapping, params),
                        _rename_expr(expr.right, mapping, params))
    if isinstance(expr, A.Ternary):
        return A.Ternary(_rename_expr(expr.cond, mapping, params),
                         _rename_expr(expr.if_true, mapping, params),
                         _rename_expr(expr.if_false, mapping, params))
    if isinstance(expr, A.Concat):
        return A.Concat(tuple(_rename_expr(p, mapping, params)
                              for p in expr.parts))
    if isinstance(expr, A.Replicate):
        return A.Replicate(_rename_expr(expr.count, mapping, params),
                           _rename_expr(expr.inner, mapping, params))
    if isinstance(expr, A.Index):
        return A.Index(mapping.get(expr.target, expr.target),
                       _rename_expr(expr.index, mapping, params), expr.loc)
    if isinstance(expr, A.Slice):
        return A.Slice(mapping.get(expr.target, expr.target),
                       _rename_expr(expr.msb, mapping, params),
                       _rename_expr(expr.lsb, mapping, params), expr.loc)
    if isinstance(expr, A.FunctionCall):
        return A.FunctionCall(mapping.get(expr.name, expr.name),
                              tuple(_rename_expr(a, mapping, params)
                                    for a in expr.args), expr.loc)
    if isinstance(expr, A.SystemCall):
        return A.SystemCall(expr.name,
                            tuple(_rename_expr(a, mapping, params)
                                  for a in expr.args))
    return expr


def _rename_stmt(stmt: A.Stmt, mapping: dict[str, str],
                 params: dict[str, int]) -> A.Stmt:
    if isinstance(stmt, A.Assign):
        target = dataclasses.replace(
            stmt.target, name=mapping.get(stmt.target.name, stmt.target.name),
            index=_rename_expr(stmt.target.index, mapping, params)
            if stmt.target.index is not None else None,
            msb=_rename_expr(stmt.target.msb, mapping, params)
            if stmt.target.msb is not None else None,
            lsb=_rename_expr(stmt.target.lsb, mapping, params)
            if stmt.target.lsb is not None else None)
        return A.Assign(target, _rename_expr(stmt.expr, mapping, params),
                        stmt.blocking, stmt.loc)
    if isinstance(stmt, A.Block):
        return A.Block(tuple(_rename_stmt(s, mapping, params)
                             for s in stmt.stmts))
    if isinstance(stmt, A.If):
        return A.If(_rename_expr(stmt.cond, mapping, params),
                    _rename_stmt(stmt.then, mapping, params),
                    _rename_stmt(stmt.other, mapping, params)
                    if stmt.other is not None else None)
    if isinstance(stmt, A.Case):
        return A.Case(_rename_expr(stmt.subject, mapping, params),
                      tuple(A.CaseItem(
                          tuple(_rename_expr(l, mapping, params)
                                for l in item.labels)
                          if item.labels is not None else None,
                          _rename_stmt(item.body, mapping, params))
                          for item in stmt.items), stmt.wildcard)
    if isinstance(stmt, A.For):
        return A.For(_rename_stmt(stmt.init, mapping, params),
                     _rename_expr(stmt.cond, mapping, params),
                     _rename_stmt(stmt.step, mapping, params),
                     _rename_stmt(stmt.body, mapping, params))
    if isinstance(stmt, A.SysTask):
        return A.SysTask(stmt.name, tuple(_rename_expr(a, mapping, params)
                                          for a in stmt.args), stmt.loc)
    return stmt


def _resolve_range(rng: A.Range | None, params: dict[str, int]) -> A.Range | None:
    if rng is None:
        return None
    return A.Range(A.Number(32, eval_const(rng.msb, params)),
                   A.Number(32, eval_const(rng.lsb, params)))


def flatten(source: A.SourceFile, top: str, _depth: int = 0) -> A.Module:
    """Inline every instance of ``top`` recursively; returns a leaf module."""
    if _depth > _MAX_DEPTH:
        raise SynthesisError(f"hierarchy deeper than {_MAX_DEPTH} under '{top}'")
    if top not in source.modules:
        raise SynthesisError(f"module '{top}' not found for flattening")
    module = source.modules[top]
    if not module.instances:
        return module

    parent_params: dict[str, int] = {}
    for p in module.parameters:
        parent_params[p.name] = eval_const(p.default, parent_params)

    nets = list(module.nets)
    assigns = list(module.assigns)
    always_blocks = list(module.always_blocks)
    functions = list(module.functions)

    for inst in module.instances:
        if inst.module not in source.modules:
            raise SynthesisError(f"instance '{inst.name}' references unknown "
                                 f"module '{inst.module}'")
        child = flatten(source, inst.module, _depth + 1)

        # Child parameters with overrides become constants.
        child_params: dict[str, int] = {}
        nonlocal_params = [p for p in child.parameters if not p.local]
        overrides: dict[str, int] = {}
        for pos, (pname, pexpr) in enumerate(inst.param_overrides):
            value = eval_const(pexpr, parent_params)
            if pname is None:
                overrides[nonlocal_params[pos].name] = value
            else:
                overrides[pname] = value
        for p in child.parameters:
            child_params[p.name] = overrides.get(
                p.name, eval_const(p.default, child_params))

        prefix = f"u_{inst.name}_"
        mapping: dict[str, str] = {}
        for port in child.ports:
            mapping[port.name] = prefix + port.name
        for net in child.nets:
            mapping[net.name] = prefix + net.name
        for func in child.functions:
            mapping[func.name] = prefix + func.name

        # Declare port shadow nets and internal nets.
        for port in child.ports:
            kind = "reg" if port.is_reg else "wire"
            nets.append(A.Net(prefix + port.name, kind,
                              _resolve_range(port.rng, child_params)))
        for net in child.nets:
            nets.append(A.Net(prefix + net.name, net.kind,
                              _resolve_range(net.rng, child_params),
                              _rename_expr(net.init, mapping, child_params)
                              if net.init is not None else None))

        # Inline child logic.
        for ca in child.assigns:
            target = dataclasses.replace(
                ca.target, name=mapping.get(ca.target.name, ca.target.name))
            assigns.append(A.ContinuousAssign(
                target, _rename_expr(ca.expr, mapping, child_params), ca.loc))
        for alw in child.always_blocks:
            edges = tuple((kind, mapping.get(sig, sig))
                          for kind, sig in alw.edges)
            always_blocks.append(A.Always(
                edges, _rename_stmt(alw.body, mapping, child_params), alw.loc))
        for func in child.functions:
            functions.append(dataclasses.replace(
                func, name=prefix + func.name,
                body=_rename_stmt(func.body, mapping, child_params)))

        # Stitch ports.
        conns: list[tuple[A.Port, A.Expr | None]] = []
        if inst.connections and inst.connections[0][0] is None:
            for port, (_, expr) in zip(child.ports, inst.connections):
                conns.append((port, expr))
        else:
            by_name = {p.name: p for p in child.ports}
            for pname, expr in inst.connections:
                if pname not in by_name:
                    raise SynthesisError(f"module '{child.name}' has no "
                                         f"port '{pname}'")
                conns.append((by_name[pname], expr))
        for port, expr in conns:
            if expr is None:
                continue
            shadow = prefix + port.name
            if port.direction == "input":
                assigns.append(A.ContinuousAssign(
                    A.LValue(shadow), expr, inst.loc))
            elif port.direction == "output":
                if isinstance(expr, A.Identifier):
                    assigns.append(A.ContinuousAssign(
                        A.LValue(expr.name), A.Identifier(shadow), inst.loc))
                elif isinstance(expr, A.Slice):
                    assigns.append(A.ContinuousAssign(
                        A.LValue(expr.target, None, expr.msb, expr.lsb),
                        A.Identifier(shadow), inst.loc))
                elif isinstance(expr, A.Index):
                    assigns.append(A.ContinuousAssign(
                        A.LValue(expr.target, expr.index),
                        A.Identifier(shadow), inst.loc))
                else:
                    raise SynthesisError(
                        f"output port '{port.name}' of '{inst.name}' must "
                        f"connect to a signal, bit-select, or part-select")
            else:
                raise SynthesisError("inout ports are not synthesizable")

    return dataclasses.replace(
        module, nets=tuple(nets), assigns=tuple(assigns),
        always_blocks=tuple(always_blocks), functions=tuple(functions),
        instances=())


def synthesize_source(source_text: str, top: str):
    """Parse, flatten and synthesize a (possibly hierarchical) design."""
    from ..hdl import parse
    from .synthesize import synthesize_module

    sf = parse(source_text)
    flat = flatten(sf, top)
    return synthesize_module(flat)
