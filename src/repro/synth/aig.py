"""And-Inverter Graphs (AIGs) — the synthesis engine's internal netlist form.

Literals follow the AIGER convention: literal ``2*n`` is node ``n`` plain,
``2*n + 1`` is node ``n`` complemented.  Node 0 is constant false, so literal
``0`` is FALSE and literal ``1`` is TRUE.  AND nodes are structurally hashed
at construction, which deduplicates isomorphic subgraphs for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

FALSE = 0
TRUE = 1


def lit(node: int, complemented: bool = False) -> int:
    return 2 * node + (1 if complemented else 0)


def lit_node(literal: int) -> int:
    return literal >> 1


def lit_compl(literal: int) -> bool:
    return bool(literal & 1)


def negate(literal: int) -> int:
    return literal ^ 1


@dataclass
class Aig:
    """A combinational AND-inverter graph with named inputs and outputs."""

    # node id -> (fanin0 literal, fanin1 literal); inputs/const have no entry.
    _ands: dict[int, tuple[int, int]] = field(default_factory=dict)
    _inputs: list[str] = field(default_factory=list)
    _input_ids: dict[str, int] = field(default_factory=dict)
    _outputs: list[tuple[str, int]] = field(default_factory=list)
    _strash: dict[tuple[int, int], int] = field(default_factory=dict)
    _next_id: int = 1

    # -- construction --------------------------------------------------------

    def add_input(self, name: str) -> int:
        """Declare a primary input; returns its (plain) literal."""
        if name in self._input_ids:
            return lit(self._input_ids[name])
        node = self._next_id
        self._next_id += 1
        self._input_ids[name] = node
        self._inputs.append(name)
        return lit(node)

    def add_output(self, name: str, literal: int) -> None:
        self._outputs.append((name, literal))

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with constant folding and structural hashing."""
        if a > b:
            a, b = b, a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a == negate(b):
            return FALSE
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return lit(existing)
        node = self._next_id
        self._next_id += 1
        self._ands[node] = key
        self._strash[key] = node
        return lit(node)

    def or_(self, a: int, b: int) -> int:
        return negate(self.and_(negate(a), negate(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, negate(b)), self.and_(negate(a), b))

    def mux(self, sel: int, if_true: int, if_false: int) -> int:
        return self.or_(self.and_(sel, if_true), self.and_(negate(sel), if_false))

    # -- inspection ------------------------------------------------------------

    @property
    def inputs(self) -> list[str]:
        return list(self._inputs)

    @property
    def outputs(self) -> list[tuple[str, int]]:
        return list(self._outputs)

    @property
    def num_ands(self) -> int:
        return len(self._ands)

    def fanins(self, node: int) -> tuple[int, int]:
        return self._ands[node]

    def is_input(self, node: int) -> bool:
        return node != 0 and node not in self._ands

    def reachable(self) -> set[int]:
        """Nodes in the transitive fanin of any output."""
        seen: set[int] = set()
        stack = [lit_node(l) for _, l in self._outputs]
        while stack:
            node = stack.pop()
            if node in seen or node == 0:
                continue
            seen.add(node)
            pair = self._ands.get(node)
            if pair:
                stack.append(lit_node(pair[0]))
                stack.append(lit_node(pair[1]))
        return seen

    def levels(self) -> dict[int, int]:
        """Logic depth of every reachable node (inputs are level 0)."""
        depth: dict[int, int] = {0: 0}
        order = self.topological_order()
        for node in order:
            if node in self._ands:
                a, b = self._ands[node]
                depth[node] = 1 + max(depth.get(lit_node(a), 0),
                                      depth.get(lit_node(b), 0))
            else:
                depth[node] = 0
        return depth

    def depth(self) -> int:
        levels = self.levels()
        if not self._outputs:
            return 0
        return max(levels.get(lit_node(l), 0) for _, l in self._outputs)

    def topological_order(self) -> list[int]:
        """Reachable nodes, fanins before fanouts."""
        order: list[int] = []
        state: dict[int, int] = {}
        for _, out in self._outputs:
            stack = [(lit_node(out), False)]
            while stack:
                node, processed = stack.pop()
                if node == 0 or state.get(node) == 2:
                    continue
                if processed:
                    state[node] = 2
                    order.append(node)
                    continue
                state[node] = 1
                stack.append((node, True))
                pair = self._ands.get(node)
                if pair:
                    for fan in pair:
                        if state.get(lit_node(fan)) != 2:
                            stack.append((lit_node(fan), False))
        return order

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """Evaluate outputs for one complete input assignment."""
        value: dict[int, bool] = {0: False}
        for name in self._inputs:
            if name not in assignment:
                raise KeyError(f"missing input '{name}'")
            value[self._input_ids[name]] = bool(assignment[name])

        def lit_val(literal: int) -> bool:
            v = value[lit_node(literal)]
            return (not v) if lit_compl(literal) else v

        for node in self.topological_order():
            if node in self._ands:
                a, b = self._ands[node]
                value[node] = lit_val(a) and lit_val(b)
            elif node not in value:
                value[node] = False  # dangling input not in inputs list
        return {name: lit_val(out) for name, out in self._outputs}

    def evaluate_words(self, assignment: dict[str, int], bits: int = 64) -> dict[str, int]:
        """Bit-parallel evaluation: each input carries ``bits`` patterns."""
        mask = (1 << bits) - 1
        value: dict[int, int] = {0: 0}
        for name in self._inputs:
            value[self._input_ids[name]] = assignment.get(name, 0) & mask

        def lit_val(literal: int) -> int:
            v = value[lit_node(literal)]
            return (~v & mask) if lit_compl(literal) else v

        for node in self.topological_order():
            if node in self._ands:
                a, b = self._ands[node]
                value[node] = lit_val(a) & lit_val(b)
            elif node not in value:
                value[node] = 0
        return {name: lit_val(out) for name, out in self._outputs}

    # -- maintenance -----------------------------------------------------------------

    def cleanup(self) -> "Aig":
        """Return a copy with dangling AND nodes removed (inputs preserved)."""
        out = Aig()
        for name in self._inputs:
            out.add_input(name)
        mapping: dict[int, int] = {0: FALSE}
        for name, node in self._input_ids.items():
            mapping[node] = out.add_input(name)

        def map_lit(literal: int) -> int:
            base = mapping[lit_node(literal)]
            return negate(base) if lit_compl(literal) else base

        for node in self.topological_order():
            if node in self._ands:
                a, b = self._ands[node]
                mapping[node] = out.and_(map_lit(a), map_lit(b))
            elif node not in mapping:
                # Unreached input already added above; constants handled.
                mapping[node] = FALSE
        for name, literal in self._outputs:
            out.add_output(name, map_lit(literal))
        return out

    def stats(self) -> dict[str, int]:
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "ands": self.num_ands,
            "depth": self.depth(),
        }
