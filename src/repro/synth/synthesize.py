"""RTL-to-AIG synthesis: bit-blast a mini-Verilog module into an AIG.

Sequential logic is cut at the flop boundary: each register bit becomes an
AIG input (its Q pin) and a corresponding ``<name>$next`` output (its D pin),
recorded in :class:`SynthesizedModule.flops`.  The result feeds the
optimizer, technology mapper and PPA model, and can be checked against the
behavioural simulator by random-vector equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import ast as A
from ..hdl.elaborate import eval_const
from .aig import FALSE, TRUE, Aig, negate


class SynthesisError(Exception):
    """Raised when a construct falls outside the synthesizable subset."""


BitVec = list  # list[int] of AIG literals, LSB first


@dataclass
class FlopSpec:
    name: str
    width: int
    has_async_reset: bool = False
    reset_value: int = 0


@dataclass
class SynthesizedModule:
    name: str
    aig: Aig
    flops: list[FlopSpec] = field(default_factory=list)
    port_widths: dict[str, int] = field(default_factory=dict)

    @property
    def is_sequential(self) -> bool:
        return bool(self.flops)


def _const_vec(value: int, width: int) -> BitVec:
    return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]


class ModuleSynthesizer:
    def __init__(self, module: A.Module):
        self.module = module
        self.aig = Aig()
        self.params: dict[str, int] = {}
        for p in module.parameters:
            self.params[p.name] = eval_const(p.default, self.params)
        self.widths: dict[str, int] = {}
        self.kinds: dict[str, str] = {}
        self._declare(module)
        self.drivers: dict[str, tuple] = {}
        self._index_drivers(module)
        self.cache: dict[str, BitVec] = {}
        self._resolving: set[str] = set()
        self.flops: list[FlopSpec] = []
        self.functions = {f.name: f for f in module.functions}

    # -- declarations -----------------------------------------------------------

    def _width_of_range(self, rng: A.Range | None) -> int:
        if rng is None:
            return 1
        msb = eval_const(rng.msb, self.params)
        lsb = eval_const(rng.lsb, self.params)
        if lsb != 0:
            raise SynthesisError("only [msb:0] ranges are synthesizable")
        return msb + 1

    def _declare(self, module: A.Module) -> None:
        for port in module.ports:
            self.widths[port.name] = self._width_of_range(port.rng)
            self.kinds[port.name] = port.direction
        for net in module.nets:
            if net.name in self.widths:
                continue
            if net.kind == "integer":
                self.widths[net.name] = 32
                self.kinds[net.name] = "integer"
            else:
                self.widths[net.name] = self._width_of_range(net.rng)
                self.kinds[net.name] = net.kind

    def _index_drivers(self, module: A.Module) -> None:
        if module.instances:
            raise SynthesisError(
                "hierarchical synthesis requires flattening; synthesize leaf modules")
        if module.initial_blocks:
            # Testbench-only construct; ignored for synthesis (initial values
            # on regs are honoured via Net.init during simulation only).
            pass
        for net in module.nets:
            if net.init is not None and net.kind == "wire":
                # 'wire x = expr;' is a continuous assignment.
                self.drivers[net.name] = ("assign", net.init)
        for ca in module.assigns:
            if ca.target.index is not None or ca.target.msb is not None:
                # Partial drivers (bit/part-select assigns) accumulate; the
                # pieces are stitched together in bits().
                existing = self.drivers.get(ca.target.name)
                if existing is None:
                    self.drivers[ca.target.name] = ("partial", [ca])
                elif existing[0] == "partial":
                    existing[1].append(ca)
                else:
                    raise SynthesisError(
                        f"mixed full and partial drivers for '{ca.target.name}'")
                continue
            if ca.target.name in self.drivers:
                raise SynthesisError(f"multiple drivers for '{ca.target.name}'")
            self.drivers[ca.target.name] = ("assign", ca.expr)
        for alw in module.always_blocks:
            clocked = alw.edges and any(k in ("posedge", "negedge") for k, _ in alw.edges)
            written: set[str] = set()
            from ..hdl.elaborate import stmt_writes
            stmt_writes(alw.body, written)
            tag = "ff" if clocked else "comb"
            for name in written:
                if self.kinds.get(name) == "integer":
                    continue  # loop variables live only inside the block
                if name in self.drivers:
                    raise SynthesisError(f"multiple drivers for '{name}'")
                self.drivers[name] = (tag, alw)

    # -- public ---------------------------------------------------------------------

    def synthesize(self) -> SynthesizedModule:
        port_widths = {}
        for port in self.module.ports:
            port_widths[port.name] = self.widths[port.name]
        # Resolve every output port.
        for port in self.module.ports:
            if port.direction != "output":
                continue
            vec = self.bits(port.name)
            for i, literal in enumerate(vec):
                self.aig.add_output(f"{port.name}[{i}]", literal)
        result = SynthesizedModule(self.module.name, self.aig.cleanup(),
                                   self.flops, port_widths)
        return result

    # -- signal resolution -------------------------------------------------------------

    def bits(self, name: str) -> BitVec:
        if name in self.cache:
            return self.cache[name]
        if name in self._resolving:
            raise SynthesisError(f"combinational loop through '{name}'")
        if name in self.params:
            vec = _const_vec(self.params[name], 32)
            self.cache[name] = vec
            return vec
        if name not in self.widths:
            raise SynthesisError(f"undeclared signal '{name}'")
        width = self.widths[name]
        kind = self.kinds.get(name)
        if kind == "input":
            vec = [self.aig.add_input(f"{name}[{i}]") for i in range(width)]
            self.cache[name] = vec
            return vec

        driver = self.drivers.get(name)
        if driver is None:
            raise SynthesisError(f"signal '{name}' has no driver")
        self._resolving.add(name)
        try:
            if driver[0] == "assign":
                vec = self.lower_expr(driver[1], width)
                vec = self._fit(vec, width)
                self.cache[name] = vec
                return vec
            if driver[0] == "partial":
                vec: BitVec = [None] * width  # type: ignore[list-item]
                for ca in driver[1]:
                    value = self.lower_expr(ca.expr, None)
                    if ca.target.index is not None:
                        pos = self._require_const(ca.target.index, {})
                        if 0 <= pos < width:
                            vec[pos] = value[0]
                        continue
                    msb = self._require_const(ca.target.msb, {})
                    lsb = self._require_const(ca.target.lsb, {})
                    if msb < lsb:
                        msb, lsb = lsb, msb
                    part = self._fit(value, msb - lsb + 1)
                    for i in range(lsb, min(msb + 1, width)):
                        vec[i] = part[i - lsb]
                missing = [i for i, b in enumerate(vec) if b is None]
                if missing:
                    raise SynthesisError(
                        f"bits {missing} of '{name}' have no driver")
                self.cache[name] = vec
                return vec
            if driver[0] == "comb":
                self._lower_comb_block(driver[1])
                if name not in self.cache:
                    raise SynthesisError(
                        f"'{name}' not assigned by its combinational block")
                return self.cache[name]
            # Flop: Q bits become AIG inputs; D computed lazily afterwards.
            vec = [self.aig.add_input(f"{name}[{i}]") for i in range(width)]
            self.cache[name] = vec
            self._lower_ff_block(driver[1])
            return vec
        finally:
            self._resolving.discard(name)

    def _fit(self, vec: BitVec, width: int) -> BitVec:
        if len(vec) >= width:
            return vec[:width]
        return vec + [FALSE] * (width - len(vec))

    # -- always blocks ---------------------------------------------------------------------

    def _lower_comb_block(self, alw: A.Always) -> None:
        env: dict[str, BitVec] = {}
        from ..hdl.elaborate import stmt_writes
        written: set[str] = set()
        stmt_writes(alw.body, written)
        int_env: dict[str, int] = {}
        self._exec_stmt(alw.body, env, int_env, in_ff=False)
        for name in written:
            if self.kinds.get(name) == "integer":
                continue
            if name not in env:
                raise SynthesisError(
                    f"latch inferred: '{name}' not assigned on all paths")
            self.cache[name] = self._fit(env[name], self.widths[name])

    def _lower_ff_block(self, alw: A.Always) -> None:
        # Async reset pattern: if (rst) q <= CONST; else ...
        reset_sig: str | None = None
        for kind, sig in alw.edges:
            if kind in ("posedge", "negedge") and sig.lower() in (
                    "rst", "reset", "rst_n", "resetn", "arst", "rstn"):
                reset_sig = sig
        env: dict[str, BitVec] = {}
        int_env: dict[str, int] = {}
        from ..hdl.elaborate import stmt_writes
        written: set[str] = set()
        stmt_writes(alw.body, written)
        # Seed env with current Q values so partial updates hold state.
        for name in written:
            if self.kinds.get(name) == "integer":
                continue
            env[name] = list(self.cache.get(name) or self.bits(name))
        self._exec_stmt(alw.body, env, int_env, in_ff=True)
        for name in written:
            if self.kinds.get(name) == "integer":
                continue
            width = self.widths[name]
            vec = self._fit(env[name], width)
            for i, literal in enumerate(vec):
                self.aig.add_output(f"{name}$next[{i}]", literal)
            self.flops.append(FlopSpec(name, width,
                                       has_async_reset=reset_sig is not None))

    # -- statement lowering (symbolic execution) ----------------------------------------------

    def _exec_stmt(self, stmt: A.Stmt, env: dict[str, BitVec],
                   int_env: dict[str, int], in_ff: bool) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                self._exec_stmt(s, env, int_env, in_ff)
        elif isinstance(stmt, A.Assign):
            self._exec_assign(stmt, env, int_env)
        elif isinstance(stmt, A.If):
            self._exec_if(stmt, env, int_env, in_ff)
        elif isinstance(stmt, A.Case):
            self._exec_case(stmt, env, int_env, in_ff)
        elif isinstance(stmt, A.For):
            self._exec_for(stmt, env, int_env, in_ff)
        elif isinstance(stmt, A.SysTask):
            pass  # $display etc. have no hardware meaning
        elif isinstance(stmt, (A.Delay, A.EventWait, A.While, A.Repeat)):
            raise SynthesisError(
                f"{type(stmt).__name__} is not synthesizable")
        else:
            raise SynthesisError(f"cannot synthesize {type(stmt).__name__}")

    def _exec_assign(self, stmt: A.Assign, env: dict[str, BitVec],
                     int_env: dict[str, int]) -> None:
        name = stmt.target.name
        if self.kinds.get(name) == "integer":
            int_env[name] = self._eval_int(stmt.expr, env, int_env)
            return
        width = self.widths.get(name)
        if width is None:
            raise SynthesisError(f"assignment to undeclared '{name}'")
        value = self.lower_expr(stmt.expr, width, env, int_env)
        old = env.get(name)
        if stmt.target.index is None and stmt.target.msb is None:
            env[name] = self._fit(value, width)
            return
        if old is None:
            old = list(self.cache.get(name) or [FALSE] * width)
            old = self._fit(old, width)
        if stmt.target.index is not None:
            idx = self._try_const(stmt.target.index, int_env)
            new = list(old)
            if idx is not None:
                if 0 <= idx < width:
                    new[idx] = value[0]
            else:
                sel_vec = self.lower_expr(stmt.target.index, max(1, width.bit_length()),
                                          env, int_env)
                for i in range(width):
                    is_i = self._equals_const(sel_vec, i)
                    new[i] = self.aig.mux(is_i, value[0], old[i])
            env[name] = new
            return
        msb = self._require_const(stmt.target.msb, int_env)
        lsb = self._require_const(stmt.target.lsb, int_env)
        if msb < lsb:
            msb, lsb = lsb, msb
        new = list(old)
        part = self._fit(value, msb - lsb + 1)
        for i in range(lsb, min(msb + 1, width)):
            new[i] = part[i - lsb]
        env[name] = new

    def _exec_if(self, stmt: A.If, env: dict[str, BitVec],
                 int_env: dict[str, int], in_ff: bool) -> None:
        const_cond = self._try_const(stmt.cond, int_env)
        if const_cond is not None:
            branch = stmt.then if const_cond else stmt.other
            if branch is not None:
                self._exec_stmt(branch, env, int_env, in_ff)
            return
        cond = self._reduce_or_vec(self.lower_expr(stmt.cond, None, env, int_env))
        then_env = {k: list(v) for k, v in env.items()}
        else_env = {k: list(v) for k, v in env.items()}
        then_ints = dict(int_env)
        else_ints = dict(int_env)
        self._exec_stmt(stmt.then, then_env, then_ints, in_ff)
        if stmt.other is not None:
            self._exec_stmt(stmt.other, else_env, else_ints, in_ff)
        self._merge_env(cond, then_env, else_env, env, in_ff)
        int_env.update({k: v for k, v in then_ints.items() if else_ints.get(k) == v})

    def _exec_case(self, stmt: A.Case, env: dict[str, BitVec],
                   int_env: dict[str, int], in_ff: bool) -> None:
        subject = self.lower_expr(stmt.subject, None, env, int_env)
        default_item: A.CaseItem | None = None
        arms: list[tuple[int, A.CaseItem]] = []
        for item in stmt.items:
            if item.labels is None:
                default_item = item
                continue
            conds = []
            for label in item.labels:
                conds.append(self._match_label(subject, label, stmt.wildcard, int_env))
            cond = conds[0]
            for c in conds[1:]:
                cond = self.aig.or_(cond, c)
            arms.append((cond, item))
        # Build nested if-else from the bottom up.
        base_env = {k: list(v) for k, v in env.items()}
        if default_item is not None:
            self._exec_stmt(default_item.body, base_env, dict(int_env), in_ff)
        result_env = base_env
        for cond, item in reversed(arms):
            arm_env = {k: list(v) for k, v in env.items()}
            self._exec_stmt(item.body, arm_env, dict(int_env), in_ff)
            merged: dict[str, BitVec] = {}
            self._merge_env(cond, arm_env, result_env, merged, in_ff,
                            base=env)
            result_env = merged
        env.clear()
        env.update(result_env)

    def _match_label(self, subject: BitVec, label: A.Expr, wildcard: bool,
                     int_env: dict[str, int]) -> int:
        if wildcard and isinstance(label, A.Number) and label.xmask:
            acc = TRUE
            for i in range(min(len(subject), label.width)):
                if (label.xmask >> i) & 1:
                    continue
                bit = subject[i] if (label.value >> i) & 1 else negate(subject[i])
                acc = self.aig.and_(acc, bit)
            return acc
        value = self.lower_expr(label, len(subject), {}, int_env)
        acc = TRUE
        for i in range(len(subject)):
            want = value[i] if i < len(value) else FALSE
            acc = self.aig.and_(acc, negate(self.aig.xor_(subject[i], want)))
        return acc

    def _merge_env(self, cond: int, then_env: dict, else_env: dict,
                   out_env: dict, in_ff: bool, base: dict | None = None) -> None:
        base = base if base is not None else {}
        names = set(then_env) | set(else_env)
        for name in names:
            width = self.widths.get(name, 32)
            t = then_env.get(name)
            e = else_env.get(name)
            if t is None or e is None:
                prev = base.get(name)
                if prev is None:
                    prev = self.cache.get(name)
                if prev is None:
                    if in_ff:
                        prev = self.bits(name)
                    else:
                        raise SynthesisError(
                            f"latch inferred: '{name}' assigned on only one branch")
                t = t if t is not None else list(prev)
                e = e if e is not None else list(prev)
            t = self._fit(t, width)
            e = self._fit(e, width)
            out_env[name] = [self.aig.mux(cond, t[i], e[i]) for i in range(width)]

    def _exec_for(self, stmt: A.For, env: dict[str, BitVec],
                  int_env: dict[str, int], in_ff: bool) -> None:
        self._exec_stmt(stmt.init, env, int_env, in_ff)
        guard = 0
        while True:
            cond = self._try_const(stmt.cond, int_env)
            if cond is None:
                raise SynthesisError("for-loop bound must be a compile-time constant")
            if not cond:
                return
            guard += 1
            if guard > 4096:
                raise SynthesisError("for-loop unrolling exceeded 4096 iterations")
            self._exec_stmt(stmt.body, env, int_env, in_ff)
            self._exec_stmt(stmt.step, env, int_env, in_ff)

    # -- constant helpers --------------------------------------------------------------------------

    def _try_const(self, expr: A.Expr, int_env: dict[str, int]) -> int | None:
        try:
            scope = dict(self.params)
            scope.update(int_env)
            return eval_const(expr, scope)
        except Exception:
            return None

    def _require_const(self, expr: A.Expr, int_env: dict[str, int]) -> int:
        value = self._try_const(expr, int_env)
        if value is None:
            raise SynthesisError("expression must be a compile-time constant")
        return value

    def _eval_int(self, expr: A.Expr, env: dict[str, BitVec],
                  int_env: dict[str, int]) -> int:
        value = self._try_const(expr, int_env)
        if value is None:
            raise SynthesisError(
                "integer variables must hold compile-time constants in synthesis")
        return value

    def _equals_const(self, vec: BitVec, value: int) -> int:
        acc = TRUE
        for i, literal in enumerate(vec):
            want_one = (value >> i) & 1
            acc = self.aig.and_(acc, literal if want_one else negate(literal))
        return acc

    def _reduce_or_vec(self, vec: BitVec) -> int:
        acc = FALSE
        for literal in vec:
            acc = self.aig.or_(acc, literal)
        return acc

    # -- expression lowering ------------------------------------------------------------------------

    def lower_expr(self, expr: A.Expr, width: int | None,
                   env: dict[str, BitVec] | None = None,
                   int_env: dict[str, int] | None = None) -> BitVec:
        env = env if env is not None else {}
        int_env = int_env if int_env is not None else {}
        vec = self._lower(expr, env, int_env)
        if width is not None:
            vec = self._fit(vec, width)
        return vec

    def _read(self, name: str, env: dict[str, BitVec],
              int_env: dict[str, int]) -> BitVec:
        if self.kinds.get(name) == "integer":
            if name not in int_env:
                raise SynthesisError(f"integer '{name}' read before assignment")
            return _const_vec(int_env[name], 32)
        if name in env:
            return env[name]
        if name in self.params:
            return _const_vec(self.params[name], 32)
        return self.bits(name)

    def _lower(self, expr: A.Expr, env: dict[str, BitVec],
               int_env: dict[str, int]) -> BitVec:
        aig = self.aig
        if isinstance(expr, A.Number):
            if expr.xmask:
                raise SynthesisError("X literals are not synthesizable")
            width = expr.width if expr.sized else 32
            return _const_vec(expr.value, width)
        if isinstance(expr, A.Identifier):
            return list(self._read(expr.name, env, int_env))
        if isinstance(expr, A.Index):
            base = self._read(expr.target, env, int_env)
            idx = self._try_const(expr.index, int_env)
            if idx is not None:
                return [base[idx]] if 0 <= idx < len(base) else [FALSE]
            sel = self._lower(expr.index, env, int_env)
            out = FALSE
            for i, bit in enumerate(base):
                out = aig.or_(out, aig.and_(self._equals_const(sel, i), bit))
            return [out]
        if isinstance(expr, A.Slice):
            base = self._read(expr.target, env, int_env)
            msb = self._require_const(expr.msb, int_env)
            lsb = self._require_const(expr.lsb, int_env)
            if msb < lsb:
                msb, lsb = lsb, msb
            return [base[i] if i < len(base) else FALSE
                    for i in range(lsb, msb + 1)]
        if isinstance(expr, A.Concat):
            out: BitVec = []
            for part in reversed(expr.parts):  # rightmost is least significant
                out.extend(self._lower(part, env, int_env))
            return out
        if isinstance(expr, A.Replicate):
            count = self._require_const(expr.count, int_env)
            inner = self._lower(expr.inner, env, int_env)
            return inner * count
        if isinstance(expr, A.Unary):
            return self._lower_unary(expr, env, int_env)
        if isinstance(expr, A.Binary):
            return self._lower_binary(expr, env, int_env)
        if isinstance(expr, A.Ternary):
            cond = self._reduce_or_vec(self._lower(expr.cond, env, int_env))
            t = self._lower(expr.if_true, env, int_env)
            e = self._lower(expr.if_false, env, int_env)
            width = max(len(t), len(e))
            t = self._fit(t, width)
            e = self._fit(e, width)
            return [aig.mux(cond, t[i], e[i]) for i in range(width)]
        if isinstance(expr, A.FunctionCall):
            return self._lower_call(expr, env, int_env)
        if isinstance(expr, A.SystemCall):
            raise SynthesisError(f"system function '{expr.name}' is not synthesizable")
        raise SynthesisError(f"cannot synthesize expression {type(expr).__name__}")

    def _lower_unary(self, expr: A.Unary, env, int_env) -> BitVec:
        aig = self.aig
        operand = self._lower(expr.operand, env, int_env)
        if expr.op == "~":
            return [negate(b) for b in operand]
        if expr.op == "!":
            return [negate(self._reduce_or_vec(operand))]
        if expr.op == "-":
            inverted = [negate(b) for b in operand]
            return self._add(inverted, _const_vec(1, len(operand)))[0]
        if expr.op == "+":
            return operand
        if expr.op == "&":
            acc = TRUE
            for b in operand:
                acc = aig.and_(acc, b)
            return [acc]
        if expr.op == "|":
            return [self._reduce_or_vec(operand)]
        if expr.op == "^":
            acc = FALSE
            for b in operand:
                acc = aig.xor_(acc, b)
            return [acc]
        raise SynthesisError(f"unary '{expr.op}' is not synthesizable")

    def _add(self, a: BitVec, b: BitVec, carry_in: int = FALSE) -> tuple[BitVec, int]:
        aig = self.aig
        width = max(len(a), len(b))
        a = self._fit(list(a), width)
        b = self._fit(list(b), width)
        out: BitVec = []
        carry = carry_in
        for i in range(width):
            s = aig.xor_(aig.xor_(a[i], b[i]), carry)
            carry = aig.or_(aig.and_(a[i], b[i]),
                            aig.and_(carry, aig.xor_(a[i], b[i])))
            out.append(s)
        return out, carry

    def _less_than(self, a: BitVec, b: BitVec) -> int:
        """Unsigned a < b via subtraction borrow."""
        aig = self.aig
        width = max(len(a), len(b))
        a = self._fit(list(a), width)
        b = self._fit(list(b), width)
        not_b = [negate(x) for x in b]
        _, carry = self._add(a, not_b, TRUE)
        return negate(carry)  # no carry out => borrow => a < b

    def _lower_binary(self, expr: A.Binary, env, int_env) -> BitVec:
        aig = self.aig
        op = expr.op
        a = self._lower(expr.left, env, int_env)
        b = self._lower(expr.right, env, int_env)
        width = max(len(a), len(b))

        if op in ("&", "|", "^"):
            a = self._fit(a, width)
            b = self._fit(b, width)
            fn = {"&": aig.and_, "|": aig.or_, "^": aig.xor_}[op]
            return [fn(a[i], b[i]) for i in range(width)]
        if op == "+":
            # Keep the carry (context-determined sizing; see Logic.add).
            grown = width + 1
            out, carry = self._add(self._fit(a, width), self._fit(b, width))
            return out + [carry] if grown > width else out
        if op == "-":
            grown = width + 1
            a9 = self._fit(a, grown)
            not_b = [negate(x) for x in self._fit(b, grown)]
            return self._add(a9, not_b, TRUE)[0]
        if op == "*":
            return self._multiply(a, b)
        if op in ("/", "%"):
            const_b = self._vec_const(b)
            if const_b is not None and const_b > 0 and (const_b & (const_b - 1)) == 0:
                shift = const_b.bit_length() - 1
                if op == "/":
                    return a[shift:] if shift < len(a) else [FALSE]
                return a[:shift] if shift else [FALSE]
            raise SynthesisError(
                "division/modulo only synthesizable by constant powers of two")
        if op == "<<":
            return self._shift(a, b, left=True)
        if op == ">>":
            return self._shift(a, b, left=False)
        if op == "==":
            a = self._fit(a, width)
            b = self._fit(b, width)
            acc = TRUE
            for i in range(width):
                acc = aig.and_(acc, negate(aig.xor_(a[i], b[i])))
            return [acc]
        if op == "!=":
            return [negate(self._lower_binary(
                A.Binary("==", expr.left, expr.right), env, int_env)[0])]
        if op == "<":
            return [self._less_than(a, b)]
        if op == ">":
            return [self._less_than(b, a)]
        if op == "<=":
            return [negate(self._less_than(b, a))]
        if op == ">=":
            return [negate(self._less_than(a, b))]
        if op == "&&":
            return [aig.and_(self._reduce_or_vec(a), self._reduce_or_vec(b))]
        if op == "||":
            return [aig.or_(self._reduce_or_vec(a), self._reduce_or_vec(b))]
        raise SynthesisError(f"binary '{op}' is not synthesizable")

    def _vec_const(self, vec: BitVec) -> int | None:
        value = 0
        for i, literal in enumerate(vec):
            if literal == TRUE:
                value |= 1 << i
            elif literal != FALSE:
                return None
        return value

    def _multiply(self, a: BitVec, b: BitVec) -> BitVec:
        # Full-width product (capped), matching Logic.mul's growth.
        width = min(128, len(a) + len(b))
        a = self._fit(list(a), width)
        acc = _const_vec(0, width)
        for i, bit in enumerate(b):
            if i >= width:
                break
            if bit == FALSE:
                continue
            shifted = [FALSE] * i + a[:width - i]
            gated = [self.aig.and_(bit, x) for x in shifted]
            acc = self._add(acc, gated)[0]
        return acc

    def _shift(self, a: BitVec, b: BitVec, left: bool) -> BitVec:
        const_b = self._vec_const(b)
        width = len(a)
        if const_b is not None:
            n = const_b
            if n >= width:
                return [FALSE] * width
            if left:
                return [FALSE] * n + a[:width - n]
            return a[n:] + [FALSE] * n
        # Barrel shifter over the meaningful selector bits.
        out = list(a)
        max_bits = max(1, (width - 1).bit_length())
        for stage in range(min(len(b), max_bits)):
            amount = 1 << stage
            if left:
                shifted = [FALSE] * amount + out[:width - amount]
            else:
                shifted = out[amount:] + [FALSE] * amount
            out = [self.aig.mux(b[stage], shifted[i], out[i]) for i in range(width)]
        # Any higher selector bit set → result 0.
        too_big = FALSE
        for literal in b[max_bits:]:
            too_big = self.aig.or_(too_big, literal)
        if too_big != FALSE:
            out = [self.aig.and_(negate(too_big), x) for x in out]
        return out

    def _lower_call(self, expr: A.FunctionCall, env, int_env) -> BitVec:
        func = self.functions.get(expr.name)
        if func is None:
            raise SynthesisError(f"call to unknown function '{expr.name}'")
        local_env: dict[str, BitVec] = {}
        local_ints: dict[str, int] = {}
        for (aname, arng), arg in zip(func.args, expr.args):
            width = 1 if arng is None else eval_const(arng.msb, self.params) + 1
            local_env[aname] = self.lower_expr(arg, width, env, int_env)
        ret_width = 1 if func.rng is None else eval_const(func.rng.msb, self.params) + 1
        saved_widths = dict(self.widths)
        saved_kinds = dict(self.kinds)
        try:
            for (aname, arng) in func.args:
                self.widths[aname] = 1 if arng is None else \
                    eval_const(arng.msb, self.params) + 1
                self.kinds[aname] = "wire"
            for net in func.locals:
                self.widths[net.name] = 32 if net.kind == "integer" else (
                    1 if net.rng is None else eval_const(net.rng.msb, self.params) + 1)
                self.kinds[net.name] = net.kind
            self.widths[func.name] = ret_width
            self.kinds[func.name] = "wire"
            self._exec_stmt(func.body, local_env, local_ints, in_ff=False)
        finally:
            self.widths = saved_widths
            self.kinds = saved_kinds
        if func.name not in local_env:
            raise SynthesisError(f"function '{func.name}' never assigns its result")
        return self._fit(local_env[func.name], ret_width)


def synthesize_module(module: A.Module) -> SynthesizedModule:
    """Bit-blast one mini-Verilog module into an optimizable AIG."""
    return ModuleSynthesizer(module).synthesize()
