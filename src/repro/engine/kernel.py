"""The loop kernel: one iterative-refinement skeleton for every flow.

The paper's case studies (Figs. 3-6) are all instances of a single loop —
generate candidates, evaluate with EDA tools, select, feed back — and each
of the repo's nine flows, the agent pipeline, the SLT optimizer and the HLS
repair engine used to hand-roll it.  This module hosts the two shared
skeletons they now run on:

* :class:`LoopKernel` — the bare round loop: round counting, optional
  per-round tracing spans, :class:`~repro.engine.budget.Budget`
  enforcement, engine counters, and a :class:`~repro.engine.record.RunRecord`
  ledger.  Loops with irregular bodies (the agent's stage pipeline, the SLT
  iteration, HLS repair rounds) plug a ``step`` closure straight into it.
* :class:`RefinementEngine` — the candidate-loop specialisation: pluggable
  ``candidates`` (a :class:`~repro.engine.generate.GenerationBatch`
  producer), ``evaluate``, ``select``, ``annotate``, ``stop_after`` and
  ``feedback`` hooks, with automatic per-round :class:`RoundLog` entries.

Both are deliberately *hooks-over-inheritance*: flows keep their state in
closures, the kernel owns only the loop mechanics, so rebasing a flow
changes where its loop runs without changing what any round computes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs import NOOP_SPAN, get_metrics, get_tracer
from .budget import Budget
from .record import RoundLog, RunRecord


@dataclass
class RoundState:
    """Mutable per-run state threaded through every hook."""

    record: RunRecord
    round_no: int = 0            # 1-based once the first round starts
    feedback: str = ""           # conditioning text for the next candidates
    best: Any = None             # flow-defined best-so-far payload
    scratch: dict = field(default_factory=dict)


@dataclass
class Selection:
    """What a selector hands back to the kernel for one round."""

    best_index: int
    best_candidate: Any
    best_outcome: Any
    best_score: float
    scores: list[float] = field(default_factory=list)
    ranked: list[tuple[float, Any, Any]] = field(default_factory=list)


class LoopKernel:
    """The bare round loop (see module docstring).

    ``step(state, span)`` runs one round and returns a stop reason or
    ``None``; ``stop(state)`` is checked *before* each round (loop-shape
    bounds like depth or max turns); ``budget`` is checked before each
    round too, so a started round always completes.  ``span_name=None``
    runs rounds without a kernel span — for loops that already emit their
    own span structure (the agent's per-stage spans).
    """

    def __init__(self, *,
                 step: Callable[[RoundState, Any], str | None],
                 stop: Callable[[RoundState], str | None] | None = None,
                 budget: Budget | None = None,
                 record: RunRecord | None = None,
                 max_rounds: int | None = None,
                 span_name: str | None = None,
                 span_attrs: Callable[[RoundState], dict] | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.step = step
        self.stop = stop
        self.budget = budget
        self.record = record if record is not None else RunRecord()
        self.max_rounds = max_rounds
        self.span_name = span_name
        self.span_attrs = span_attrs
        self.clock = clock

    def run(self) -> RunRecord:
        record = self.record
        state = RoundState(record=record)
        started = self.clock()
        tracer = get_tracer()
        metrics = get_metrics()
        while True:
            reason = self._pre_round(state, started)
            if reason is not None:
                record.stop_reason = reason
                break
            state.round_no += 1
            record.rounds_used = state.round_no
            metrics.counter("engine.rounds").add()
            if self.span_name is None:
                reason = self.step(state, NOOP_SPAN)
            else:
                attrs = self.span_attrs(state) if self.span_attrs \
                    else {"round_no": state.round_no}
                with tracer.span(self.span_name, **attrs) as sp:
                    reason = self.step(state, sp)
            if reason is not None:
                record.stop_reason = reason
                break
        return record

    def _pre_round(self, state: RoundState, started: float) -> str | None:
        if self.max_rounds is not None and state.round_no >= self.max_rounds:
            return "rounds"
        if self.stop is not None:
            reason = self.stop(state)
            if reason is not None:
                return reason
        if self.budget is not None and not self.budget.unlimited:
            reason = self.budget.exhausted(self.record,
                                           self.clock() - started)
            if reason is not None:
                self.record.budget_exhausted = reason
                get_metrics().counter("engine.budget_exhausted").add()
                return reason
        return None


class RefinementEngine:
    """Generate → evaluate → select → feed back, on the :class:`LoopKernel`.

    Hooks (flows keep their cross-round state in closures):

    * ``candidates(state) -> list`` — this round's candidates (typically a
      gathered :class:`~repro.engine.generate.GenerationBatch`);
    * ``evaluate(state, candidates) -> list`` — tool outcomes, one per
      candidate, submission order;
    * ``select(state, candidates, outcomes) -> Selection``;
    * ``annotate(span, state, selection)`` — optional per-round span attrs;
    * ``stop_after(state, selection) -> str | None`` — post-selection stop;
    * ``feedback(state, selection) -> str`` — conditioning for next round.

    The engine counts generations/evaluations on the record and, with
    ``log_rounds``, appends a :class:`RoundLog` per round *before* the
    feedback hook runs (so the log shows the feedback each round consumed,
    not the feedback it produced).

    ``critic(state, candidates) -> list[Verdict]`` is the optional
    post-generation validation hook (see :mod:`repro.critic`).  Verdicts
    are recorded on the run record; with ``critic_filter`` (the default)
    rejected candidates are dropped before evaluation — unless *every*
    candidate is rejected, in which case all are kept (the loop must
    still produce a best-so-far).  Rejected candidates' verdicts are
    appended to the next round's feedback as repair context.  Flows whose
    selectors index candidates positionally (the hierarchical A/B
    comparison) pass ``critic_filter=False`` to keep annotate-only
    semantics.  With ``critic=None`` — the default, and what
    ``resolve_critic`` yields when ``REPRO_CRITIC=0`` — the step body is
    exactly the pre-critic code path.
    """

    def __init__(self, *,
                 candidates: Callable[[RoundState], list],
                 evaluate: Callable[[RoundState, list], list],
                 select: Callable[[RoundState, list, list], Selection],
                 annotate: Callable[[Any, RoundState, Selection], None]
                 | None = None,
                 stop_after: Callable[[RoundState, Selection], str | None]
                 | None = None,
                 feedback: Callable[[RoundState, Selection], str]
                 | None = None,
                 stop: Callable[[RoundState], str | None] | None = None,
                 budget: Budget | None = None,
                 record: RunRecord | None = None,
                 max_rounds: int | None = None,
                 span_name: str | None = "engine.round",
                 span_attrs: Callable[[RoundState], dict] | None = None,
                 log_rounds: bool = True,
                 critic: Callable[[RoundState, list], list] | None = None,
                 critic_filter: bool = True,
                 clock: Callable[[], float] = time.monotonic):
        self.candidates = candidates
        self.evaluate = evaluate
        self.select = select
        self.annotate = annotate
        self.stop_after = stop_after
        self.feedback = feedback
        self.log_rounds = log_rounds
        self.critic = critic
        self.critic_filter = critic_filter
        self.kernel = LoopKernel(step=self._step, stop=stop, budget=budget,
                                 record=record, max_rounds=max_rounds,
                                 span_name=span_name, span_attrs=span_attrs,
                                 clock=clock)

    @property
    def record(self) -> RunRecord:
        return self.kernel.record

    def run(self) -> RunRecord:
        return self.kernel.run()

    def _step(self, state: RoundState, sp) -> str | None:
        record = state.record
        metrics = get_metrics()
        cands = self.candidates(state)
        record.generations += len(cands)
        metrics.counter("engine.generations").add(len(cands))
        round_verdicts = []
        if self.critic is not None and cands:
            round_verdicts = self.critic(state, cands)
            record.critic_reviews += len(round_verdicts)
            rejected = {i for i, v in enumerate(round_verdicts) if not v.ok}
            record.critic_rejections += len(rejected)
            record.critic_verdicts.append({
                "round": state.round_no,
                "verdicts": [v.summary() for v in round_verdicts]})
            if self.critic_filter and rejected and len(rejected) < len(cands):
                cands = [c for i, c in enumerate(cands) if i not in rejected]
        outcomes = self.evaluate(state, cands)
        record.tool_evaluations += len(outcomes)
        metrics.counter("engine.evaluations").add(len(outcomes))
        selection = self.select(state, cands, outcomes)
        if self.log_rounds:
            record.rounds.append(RoundLog(
                state.round_no, list(selection.scores),
                selection.best_score, state.feedback[:80]))
        if self.annotate is not None:
            self.annotate(sp, state, selection)
        if self.stop_after is not None:
            reason = self.stop_after(state, selection)
            if reason is not None:
                return reason
        if self.feedback is not None:
            state.feedback = self.feedback(state, selection)
        if any(not v.ok for v in round_verdicts):
            from ..critic.verdict import verdicts_feedback
            repair = verdicts_feedback(round_verdicts)
            state.feedback = (state.feedback + "\n" + repair
                              if state.feedback else repair)
        return None


def rank_by_score(candidates: list, outcomes: list,
                  score: Callable[[Any], float]) -> Selection:
    """The workhorse selector: score every (candidate, outcome) pair, rank
    descending with a stable sort (submission order breaks ties — the same
    tie-break the hand-rolled loops used)."""
    ranked = [(score(outcome), cand, outcome)
              for cand, outcome in zip(candidates, outcomes)]
    ranked.sort(key=lambda item: -item[0])
    best_score, best_cand, best_outcome = ranked[0]
    best_index = next(i for i, c in enumerate(candidates)
                      if c is best_cand)
    return Selection(best_index=best_index, best_candidate=best_cand,
                     best_outcome=best_outcome, best_score=best_score,
                     scores=[r[0] for r in ranked], ranked=ranked)
