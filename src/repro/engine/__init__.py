"""``repro.engine`` — the unified run engine.

One loop kernel hosts every flow the paper's case studies describe
(generate → evaluate with EDA tools → select → feed back), one
:class:`~repro.engine.budget.Budget` bounds what a run may spend, one
:class:`~repro.engine.record.RunRecord` ledger subsumes the per-flow
counters, and :class:`~repro.engine.generate.GenerationBatch` submits
candidates concurrently so the service broker's micro-batch lanes finally
see batches larger than one.

Entry points:

* :class:`LoopKernel` / :class:`RefinementEngine` — the loop skeletons
  (see :mod:`repro.engine.kernel`);
* :class:`Budget` / :data:`UNLIMITED` — spending limits checked between
  rounds;
* :class:`RunRecord` / :class:`RoundLog` — the unified run ledger;
* :class:`GenerationBatch`, :func:`generate_many`, :func:`refine_many` —
  concurrent candidate generation with a deterministic sequential
  fallback.
"""

from __future__ import annotations

from .budget import UNLIMITED, Budget
from .generate import GenerationBatch, generate_many, refine_many
from .kernel import (LoopKernel, RefinementEngine, RoundState, Selection,
                     rank_by_score)
from .record import RoundLog, RunRecord

__all__ = [
    "Budget", "GenerationBatch", "LoopKernel", "RefinementEngine",
    "RoundLog", "RoundState", "RunRecord", "Selection", "UNLIMITED",
    "generate_many", "rank_by_score", "refine_many",
]
