"""The unified run record: one ledger for every engine-hosted loop.

Before the engine, each flow kept its own ad-hoc counters (AutoChip's
``generations``/``tool_evaluations``/``rounds``, the structured flow's
``tool_iterations``, the SLT loop's ``snippets_generated``, ...).
:class:`RunRecord` subsumes them: the kernel maintains one record per run
and each flow's public result dataclass is a thin view over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoundLog:
    """One loop round: candidate scores, the round winner, and the feedback
    the round's candidates were conditioned on (truncated for display)."""

    round_no: int
    scores: list[float]
    best_score: float
    feedback_used: str


@dataclass
class RunRecord:
    """Counters and logs for one engine run.

    ``stop_reason`` is the engine-level reason the loop ended (``"passed"``,
    ``"rounds"``, ``"budget:tokens"``, a flow-specific reason, ...);
    ``budget_exhausted`` carries the budget clause when that is what ended
    the run, so callers can distinguish convergence from truncation.
    """

    flow: str = "engine"
    problem_id: str = ""
    model: str = ""
    rounds_used: int = 0
    generations: int = 0
    tool_evaluations: int = 0
    total_tokens: int = 0
    stop_reason: str = ""
    budget_exhausted: str = ""
    rounds: list[RoundLog] = field(default_factory=list)
    # Critic ledger (populated only when REPRO_CRITIC=1).  The record is
    # reached via the ``result.run_record`` instance attribute, never
    # serialized into golden fixtures, so these stay annotation-only.
    critic_reviews: int = 0
    critic_rejections: int = 0
    critic_verdicts: list[dict] = field(default_factory=list)

    def charge_tokens(self, tokens: int) -> None:
        self.total_tokens += tokens

    def summary(self) -> str:
        return (f"{self.flow}:{self.problem_id or '-'} [{self.model or '-'}] "
                f"rounds={self.rounds_used} generations={self.generations} "
                f"evals={self.tool_evaluations} tokens={self.total_tokens} "
                f"stop={self.stop_reason or '-'}")
