"""Concurrent candidate generation: the seam that feeds broker micro-batches.

Every flow loop samples ``k`` candidates per round.  Before the engine,
each call blocked on the broker individually, so a lane's linger window
always expired with exactly one request in it and the micro-batching built
in the service layer never engaged.  :class:`GenerationBatch` fixes the
submission side: model calls are *submitted* first (up to
``REPRO_GEN_CONCURRENCY`` in flight) and *gathered* afterwards, so
co-submitted requests coalesce in the lane.

Determinism: a backend call is a pure function of its arguments — the
request key is ``(task, temperature, sample_index)`` plus the call kind —
and usage accounting is commutative, so gathered results are byte-identical
to the sequential loop regardless of how the lane batches them.  Clients
without a ``submit_*`` seam (a bare :class:`~repro.llm.model.SimulatedLLM`,
any third-party :class:`~repro.service.LLMClient`) execute eagerly in
submission order — the deterministic sequential fallback.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING

from ..config import get_settings

if TYPE_CHECKING:  # pragma: no cover
    from ..llm.model import Generation, GenerationTask
    from ..llm.prompts import Prompt


class GenerationBatch:
    """Submit ``generate``/``refine``/``human_fix`` calls, gather in order.

    Usage::

        batch = GenerationBatch(client)
        for i in range(k):
            batch.generate(task, prompt, temperature, sample_index=i)
        candidates = batch.gather()     # submission order

    ``concurrency`` bounds in-flight submissions (default:
    ``REPRO_GEN_CONCURRENCY``); ``1`` forces the sequential path even for
    broker-backed clients.
    """

    def __init__(self, client, concurrency: int | None = None):
        if concurrency is None:
            concurrency = get_settings().gen_concurrency
        self.client = client
        self.concurrency = max(1, int(concurrency))
        self._slots: list = []          # Future | Generation, submission order
        self._concurrent = (self.concurrency > 1
                            and hasattr(client, "submit_generate"))

    # -- submission -----------------------------------------------------------

    def generate(self, task: "GenerationTask", prompt: "Prompt | None" = None,
                 temperature: float = 0.7, sample_index: int = 0) -> None:
        self._push("generate", (task, prompt, temperature, sample_index))

    def refine(self, task: "GenerationTask", previous: "Generation",
               feedback: str, temperature: float = 0.7,
               sample_index: int = 0) -> None:
        self._push("refine", (task, previous, feedback, temperature,
                              sample_index))

    def human_fix(self, task: "GenerationTask",
                  previous: "Generation") -> None:
        self._push("human_fix", (task, previous))

    def _push(self, kind: str, args: tuple) -> None:
        if not self._concurrent:
            method = {"generate": "generate", "refine": "refine",
                      "human_fix": "apply_human_fix"}[kind]
            self._slots.append(getattr(self.client, method)(*args))
            return
        self._throttle()
        submit = {"generate": "submit_generate", "refine": "submit_refine",
                  "human_fix": "submit_human_fix"}[kind]
        self._slots.append(getattr(self.client, submit)(*args))

    def _throttle(self) -> None:
        """Block on the oldest unresolved future once the in-flight window
        is full, so a huge ``k`` cannot flood (and shed from) a lane."""
        pending = [s for s in self._slots
                   if isinstance(s, Future) and not s.done()]
        if len(pending) >= self.concurrency:
            pending[0].result()

    # -- collection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def gather(self) -> list:
        """Results in submission order; clears the batch for reuse."""
        out = [slot.result() if isinstance(slot, Future) else slot
               for slot in self._slots]
        self._slots = []
        return out


def generate_many(client, task, prompt=None, temperature: float = 0.7,
                  sample_indices=(0,), concurrency: int | None = None) -> list:
    """Free-function form: ``k`` generations for ``sample_indices``.

    Prefers the client's own ``generate_many`` (part of the
    :class:`~repro.service.LLMClient` protocol); otherwise builds a
    :class:`GenerationBatch`.
    """
    many = getattr(client, "generate_many", None)
    if many is not None:
        return many(task, prompt, temperature, sample_indices=sample_indices)
    batch = GenerationBatch(client, concurrency)
    for i in sample_indices:
        batch.generate(task, prompt, temperature, sample_index=i)
    return batch.gather()


def refine_many(client, task, previous, feedback, temperature: float = 0.7,
                sample_indices=(0,), concurrency: int | None = None) -> list:
    """Free-function form: ``k`` refinements of one candidate."""
    many = getattr(client, "refine_many", None)
    if many is not None:
        return many(task, previous, feedback, temperature,
                    sample_indices=sample_indices)
    batch = GenerationBatch(client, concurrency)
    for i in sample_indices:
        batch.refine(task, previous, feedback, temperature, sample_index=i)
    return batch.gather()
