"""Run budgets: token / generation / evaluation / round / wall-clock limits.

Every paper loop burned whatever it was configured to burn; a production
deployment needs the opposite contract — "spend at most this much, then
stop and return the best so far".  :class:`Budget` is that contract, one
object shared by every flow the :mod:`repro.engine` kernel hosts.

Budgets are *checked between rounds*: a round that has started always
finishes, so enabling a budget can only truncate a run early, never change
what any individual round computes.  With every limit unset (the default)
the kernel's behaviour is byte-identical to the unbudgeted loops.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .record import RunRecord


@dataclass(frozen=True)
class Budget:
    """Per-run spending limits, all optional.

    * ``max_tokens`` — total prompt+completion tokens charged to the run;
    * ``max_generations`` — model candidates sampled;
    * ``max_evals`` — EDA-tool evaluations (testbench runs, cosims);
    * ``max_rounds`` — loop iterations;
    * ``deadline_s`` — wall-clock seconds from the first round.

    The wall-clock deadline is inherently non-deterministic; the other
    limits are pure functions of the run's counters, so budgeted runs
    replay exactly.
    """

    max_tokens: int | None = None
    max_generations: int | None = None
    max_evals: int | None = None
    max_rounds: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"budget {f.name} must be positive, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return all(getattr(self, f.name) is None for f in fields(self))

    def exhausted(self, record: "RunRecord",
                  elapsed_s: float = 0.0) -> str | None:
        """The first exhausted limit as a ``budget:<name>`` reason, else
        ``None``.  Checked by the kernel before each round."""
        if self.max_rounds is not None and record.rounds_used >= self.max_rounds:
            return "budget:rounds"
        if self.max_tokens is not None and record.total_tokens >= self.max_tokens:
            return "budget:tokens"
        if self.max_generations is not None \
                and record.generations >= self.max_generations:
            return "budget:generations"
        if self.max_evals is not None \
                and record.tool_evaluations >= self.max_evals:
            return "budget:evals"
        if self.deadline_s is not None and elapsed_s >= self.deadline_s:
            return "budget:deadline"
        return None


#: A budget with no limits — the kernel default.
UNLIMITED = Budget()
