"""Dynamic LLM-temperature adaptation (Section V).

"Lower temperature allows the LLM to focus more on improving the examples
from the candidate pool (exploitation), while a higher temperature allows it
to generate more diverse code snippets (exploration).  The idea is borrowed
from simulated annealing.  The adaptation follows a dynamic schedule that
depends on the score of the generated snippet as well as its Levenshtein
distance to the other snippets in the pool."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TemperatureController:
    """Score- and diversity-driven temperature schedule."""

    initial: float = 0.7
    minimum: float = 0.2
    maximum: float = 1.3
    cool_step: float = 0.06
    heat_step: float = 0.10

    def __post_init__(self) -> None:
        self.temperature = self.initial
        self.history: list[float] = [self.initial]
        self._stale_rounds = 0

    def update(self, score: float, best_score: float,
               distance_to_pool: int, min_distance: int) -> float:
        """Adapt after one generation/evaluation round.

        * a good snippet (near the best) that is also novel → cool down and
          exploit the neighbourhood;
        * a failing or me-too snippet → heat up and explore;
        * long stagnation → progressively stronger heating (annealing restart).
        """
        improved = best_score > 0 and score >= best_score * 0.98
        novel = distance_to_pool > min_distance

        if score <= 0:
            # Non-compiling or crashing snippet: explore away.
            self.temperature += self.heat_step
            self._stale_rounds += 1
        elif improved and novel:
            self.temperature -= self.cool_step
            self._stale_rounds = 0
        elif improved:
            # Good but too similar: the pool needs diversity.
            self.temperature += self.heat_step * 0.5
            self._stale_rounds = 0
        elif novel:
            # Novel but mediocre: mild cooling toward exploitation.
            self.temperature -= self.cool_step * 0.5
            self._stale_rounds += 1
        else:
            self.temperature += self.heat_step * 0.75
            self._stale_rounds += 1

        if self._stale_rounds and self._stale_rounds % 25 == 0:
            self.temperature = min(self.maximum,
                                   self.temperature + 3 * self.heat_step)

        self.temperature = max(self.minimum, min(self.maximum,
                                                 self.temperature))
        self.history.append(self.temperature)
        return self.temperature
