"""Genetic-programming baseline for SLT program generation (Section V).

The comparison system: tournament-selected, crossover + mutation over the
full (unconstrained) genome space.  Because GP is free of the LLM's
realistic-code prior, it can reach parameter regions "with no real-world
equivalent" — extreme unrolling, cache-hostile strides — which is how it
finds higher-power snippets given a longer budget (paper: 5.682 W in 39 h vs
5.042 W in 24 h for the LLM).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..llm.model import _stable_seed
from ..riscv.fpga import FpgaPowerMeter
from .loop import LoopEvent, SltRunResult
from .snippets import (HANDWRITTEN_SEEDS, SnippetGenome, crossover,
                       mutate_genome, random_genome)
from .stop import StopCondition


@dataclass
class GpConfig:
    population_size: int = 16
    tournament_size: int = 3
    crossover_p: float = 0.6
    mutation_strength: float = 1.2
    elitism: int = 2
    realistic_only: bool = False   # ablation: constrain GP to the LLM envelope


@dataclass
class _Individual:
    genome: SnippetGenome
    power_w: float = 0.0
    evaluated: bool = False


class GeneticProgramming:
    """Steady-state GP over snippet genomes, scored on the power rig."""

    def __init__(self, meter: FpgaPowerMeter, config: GpConfig | None = None,
                 seed: int = 0):
        self.meter = meter
        self.config = config or GpConfig()
        self.seed = seed

    def _evaluate(self, genome: SnippetGenome) -> float:
        measurement = self.meter.measure_c(genome.render())
        return measurement.watts if measurement.ok else 0.0

    def _tournament(self, population: list[_Individual],
                    rng: random.Random) -> _Individual:
        contenders = rng.sample(population,
                                min(self.config.tournament_size,
                                    len(population)))
        return max(contenders, key=lambda ind: ind.power_w)

    def run(self, stop: StopCondition) -> SltRunResult:
        cfg = self.config
        rng = random.Random(_stable_seed(self.seed, "gp", cfg.population_size))
        realistic = cfg.realistic_only

        population: list[_Individual] = []
        for genome in HANDWRITTEN_SEEDS:
            population.append(_Individual(genome))
        while len(population) < cfg.population_size:
            population.append(_Individual(random_genome(rng,
                                                        realistic=realistic)))

        events: list[LoopEvent] = []
        best_power = 0.0
        best_source = ""
        snippet_id = 0
        since_improvement = 0
        reason = "no iterations"

        def score(ind: _Individual) -> bool:
            nonlocal snippet_id, best_power, best_source, since_improvement
            snippet_id += 1
            ind.power_w = self._evaluate(ind.genome)
            ind.evaluated = True
            if ind.power_w > best_power:
                best_power = ind.power_w
                best_source = ind.genome.render()
                since_improvement = 0
            else:
                since_improvement += 1
            events.append(LoopEvent(snippet_id, self.meter.elapsed_hours,
                                    ind.power_w, best_power, 0.0, True,
                                    ind.power_w > 0))
            return True

        # Initial evaluation.
        for ind in population:
            stop_reason = stop.should_stop(self.meter.elapsed_hours,
                                           snippet_id, since_improvement)
            if stop_reason is not None:
                reason = stop_reason
                break
            score(ind)

        while True:
            stop_reason = stop.should_stop(self.meter.elapsed_hours,
                                           snippet_id, since_improvement)
            if stop_reason is not None:
                reason = stop_reason
                break
            # Breed one child (steady-state) and replace the worst member.
            parent_a = self._tournament(population, rng)
            if rng.random() < cfg.crossover_p:
                parent_b = self._tournament(population, rng)
                child_genome = crossover(parent_a.genome, parent_b.genome, rng)
            else:
                child_genome = parent_a.genome
            child_genome = mutate_genome(child_genome, rng,
                                         realistic=realistic,
                                         strength=cfg.mutation_strength)
            child = _Individual(child_genome.clamped(realistic=realistic))
            score(child)
            ranked = sorted(population, key=lambda ind: -ind.power_w)
            elite = ranked[:cfg.elitism]
            worst = ranked[-1]
            if child.power_w > worst.power_w or worst not in elite:
                population.remove(worst)
                population.append(child)
            reason = "exhausted"

        return SltRunResult(
            best_power_w=best_power,
            best_source=best_source,
            snippets_generated=snippet_id,
            elapsed_hours=self.meter.elapsed_hours,
            stop_reason=reason,
            events=events,
        )


def run_gp_slt(hours: float = 39.0, seed: int = 0,
               realistic_only: bool = False,
               meter: FpgaPowerMeter | None = None) -> SltRunResult:
    """One-call GP SLT run with the paper's default setup."""
    meter = meter or FpgaPowerMeter(seed=seed + 1000)
    gp = GeneticProgramming(meter, GpConfig(realistic_only=realistic_only),
                            seed=seed)
    return gp.run(StopCondition(max_hours=hours))
