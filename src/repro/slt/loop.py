"""The SLT optimization loop of Fig. 5.

Flow per iteration (exactly the paper's boxes):

1. pick *n* random examples from the candidate pool,
2. build the prompt (SCoT, power-annotated examples) and query the LLM,
3. evaluate the snippet on the (simulated) FPGA power rig — score is zero
   when the snippet does not compile or raises an unwanted exception,
4. admit to / reject from the candidate pool (Levenshtein diversity rule),
5. check stop conditions,
6. adapt the LLM temperature from the score and the pool distance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..llm.model import SimulatedLLM, _stable_seed
from ..obs import get_tracer
from ..riscv.fpga import FpgaPowerMeter
from .pool import Candidate, CandidatePool
from .scot import SltSnippetGenerator
from .snippets import HANDWRITTEN_SEEDS, SnippetGenome
from .stop import StopCondition
from .temperature import TemperatureController


@dataclass
class LoopEvent:
    snippet_id: int
    elapsed_hours: float
    power_w: float
    best_w: float
    temperature: float
    admitted: bool
    compiled: bool


@dataclass
class SltRunResult:
    best_power_w: float
    best_source: str
    snippets_generated: int
    elapsed_hours: float
    stop_reason: str
    events: list[LoopEvent] = field(default_factory=list)
    pool_final_diversity: float = 0.0
    compile_failures: int = 0

    def best_over_time(self) -> list[tuple[float, float]]:
        """(hours, best-so-far watts) series for plotting Fig. 5-style curves."""
        return [(e.elapsed_hours, e.best_w) for e in self.events]

    def summary(self) -> str:
        return (f"{self.snippets_generated} snippets in "
                f"{self.elapsed_hours:.1f}h; best {self.best_power_w:.3f}W; "
                f"stop: {self.stop_reason}")


@dataclass
class SltConfig:
    examples_per_prompt: int = 3
    pool_capacity: int = 12
    min_pool_distance: int = 8
    use_scot: bool = True
    adapt_temperature: bool = True
    fixed_temperature: float = 0.7
    enforce_diversity: bool = True


class SltOptimizer:
    """LLM-based system-level-test program optimization (Fig. 5)."""

    def __init__(self, llm: SimulatedLLM, meter: FpgaPowerMeter,
                 config: SltConfig | None = None, seed: int = 0):
        self.llm = llm
        self.meter = meter
        self.config = config or SltConfig()
        self.seed = seed
        self.generator = SltSnippetGenerator(llm, use_scot=self.config.use_scot,
                                             seed=seed)
        self.pool = CandidatePool(
            capacity=self.config.pool_capacity,
            min_distance=self.config.min_pool_distance
            if self.config.enforce_diversity else 0)
        self.temperature = TemperatureController(
            initial=self.config.fixed_temperature)

    def _seed_pool(self) -> None:
        """Handwritten example programs seed the candidate pool."""
        for i, genome in enumerate(HANDWRITTEN_SEEDS):
            source = genome.render()
            measurement = self.meter.measure_c(source)
            power = measurement.watts if measurement.ok else 0.0
            self.pool.consider(Candidate(source, genome, power, -(i + 1)))

    def run(self, stop: StopCondition,
            budget: Budget | None = None) -> SltRunResult:
        rng = random.Random(_stable_seed(self.seed, self.llm.profile.name,
                                         "slt-loop"))
        self._seed_pool()
        best = self.pool.best
        st = {"best_power": best.power_w if best else 0.0,
              "best_source": best.source if best else "",
              "since_improvement": 0, "compile_failures": 0}
        events: list[LoopEvent] = []
        record = RunRecord(flow="slt", model=self.llm.profile.name)
        tracer = get_tracer()

        # The loop runs on the LoopKernel with ``span_name=None``: each
        # iteration opens its own ``slt.iteration`` span below, so the
        # snippet_id attribute lands at span creation exactly as before.
        def should_stop(state: RoundState) -> str | None:
            return stop.should_stop(self.meter.elapsed_hours, state.round_no,
                                    st["since_improvement"])

        def step(state: RoundState, _sp) -> str | None:
            snippet_id = state.round_no
            # The span's elapsed_hours attribute is the same meter clock the
            # StopCondition elapsed-time clause reads, so a trace shows
            # exactly how close each iteration ran to the time budget.
            with tracer.span("slt.iteration", snippet_id=snippet_id) as sp:
                examples = self.pool.sample_examples(
                    self.config.examples_per_prompt, rng)
                generation = self.generator.generate(
                    examples, self.temperature.temperature, snippet_id)
                record.generations += 1
                measurement = self.meter.measure_c(generation.source)
                record.tool_evaluations += 1
                power = measurement.watts if measurement.ok else 0.0
                if not measurement.ok:
                    st["compile_failures"] += 1

                admitted = False
                distance = self.pool.distance_to_pool(generation.source)
                if measurement.ok:
                    admitted = self.pool.consider(Candidate(
                        generation.source, generation.genome, power,
                        snippet_id))
                if power > st["best_power"]:
                    st["best_power"] = power
                    st["best_source"] = generation.source
                    st["since_improvement"] = 0
                else:
                    st["since_improvement"] += 1

                if self.config.adapt_temperature:
                    self.temperature.update(power, st["best_power"], distance,
                                            self.pool.min_distance)
                events.append(LoopEvent(
                    snippet_id, self.meter.elapsed_hours, power,
                    st["best_power"], self.temperature.temperature, admitted,
                    measurement.ok))
                sp.set(power_w=round(power, 4),
                       best_w=round(st["best_power"], 4),
                       admitted=admitted, compiled=measurement.ok,
                       elapsed_hours=round(self.meter.elapsed_hours, 4),
                       temperature=round(self.temperature.temperature, 3))
            return None

        LoopKernel(step=step, stop=should_stop, record=record, budget=budget,
                   span_name=None).run()

        result = SltRunResult(
            best_power_w=st["best_power"],
            best_source=st["best_source"],
            snippets_generated=record.rounds_used,
            elapsed_hours=self.meter.elapsed_hours,
            stop_reason=record.stop_reason or record.budget_exhausted
            or "no iterations",
            events=events,
            pool_final_diversity=self.pool.mean_pairwise_distance(),
            compile_failures=st["compile_failures"],
        )
        result.run_record = record
        return result


def run_llm_slt(model: str = "codellama-34b-instruct-ft", hours: float = 24.0,
                seed: int = 0, use_scot: bool = True,
                adapt_temperature: bool = True,
                enforce_diversity: bool = True,
                meter: FpgaPowerMeter | None = None,
                budget: Budget | None = None) -> SltRunResult:
    """One-call LLM SLT run with the paper's default setup."""
    meter = meter or FpgaPowerMeter(seed=seed)
    config = SltConfig(use_scot=use_scot, adapt_temperature=adapt_temperature,
                       enforce_diversity=enforce_diversity)
    optimizer = SltOptimizer(SimulatedLLM(model, seed=seed), meter, config,
                             seed=seed)
    with get_tracer().span("slt.run", model=model, hours=hours,
                           seed=seed) as sp:
        result = optimizer.run(StopCondition(max_hours=hours), budget=budget)
        sp.set(stop_reason=result.stop_reason,
               snippets=result.snippets_generated,
               best_power_w=round(result.best_power_w, 4))
    return result
