"""Stop conditions for the SLT optimization loop (Fig. 5).

"We then check if any stop condition is fulfilled, for example, the number
of snippets, time, or the user stopping the process manually."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StopCondition:
    """Composite stop condition; any satisfied clause stops the loop."""

    max_hours: float | None = None
    max_snippets: int | None = None
    manual_stop: bool = False
    plateau_snippets: int | None = None    # stop after N snippets w/o improvement

    def should_stop(self, elapsed_hours: float, snippets: int,
                    snippets_since_improvement: int) -> str | None:
        """Returns the reason to stop, or None to continue."""
        if self.manual_stop:
            return "manual stop"
        if self.max_hours is not None and elapsed_hours >= self.max_hours:
            return f"time budget reached ({self.max_hours}h)"
        if self.max_snippets is not None and snippets >= self.max_snippets:
            return f"snippet budget reached ({self.max_snippets})"
        if self.plateau_snippets is not None \
                and snippets_since_improvement >= self.plateau_snippets:
            return f"plateau ({self.plateau_snippets} snippets without " \
                   f"improvement)"
        return None
