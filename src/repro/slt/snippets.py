"""Parametric C snippet space for system-level test generation.

Both search methods of Section V — the LLM loop and the genetic-programming
baseline — explore C programs that stress the DUT.  We represent a snippet
as a :class:`SnippetGenome`: a structured parameter vector that renders to
compilable mini-C.  The LLM samples genomes *anchored to realistic code*
(bounded unrolling, plausible constants, patterns that look like end-user
software), while GP may roam the full parameter space — including regions
with "no real-world equivalent", which is exactly how the paper explains GP
finding higher-power snippets than the LLM.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

# Parameter ranges: (realistic LLM range, full GP range).
RANGES = {
    "n_accs": ((1, 4), (1, 8)),
    "loop_iters": ((30, 250), (10, 600)),
    "unroll": ((1, 4), (1, 8)),
    "mul_ops": ((0, 2), (0, 6)),
    "xor_ops": ((0, 2), (0, 6)),
    "add_ops": ((1, 3), (0, 6)),
    "mem_size": ((0, 64), (0, 256)),
    "mem_stride": ((1, 4), (1, 64)),
    "div_every": ((0, 8), (0, 16)),
    "branch_every": ((0, 6), (0, 12)),
}


@dataclass(frozen=True)
class SnippetGenome:
    """Structured description of one stress snippet."""

    n_accs: int = 2
    loop_iters: int = 200
    unroll: int = 1
    mul_ops: int = 1
    xor_ops: int = 1
    add_ops: int = 1
    mem_size: int = 16
    mem_stride: int = 1
    div_every: int = 0
    branch_every: int = 0
    seed_consts: tuple[int, ...] = (0x5A5A, 0x3C7, 0x1234ABC, 0x0F0F)

    def clamped(self, realistic: bool) -> "SnippetGenome":
        idx = 0 if realistic else 1
        values = {}
        for name, ranges in RANGES.items():
            lo, hi = ranges[idx]
            values[name] = max(lo, min(hi, getattr(self, name)))
        return dataclasses.replace(self, **values)

    def is_realistic(self) -> bool:
        """Whether this genome stays within the realistic-code envelope."""
        for name, ranges in RANGES.items():
            lo, hi = ranges[0]
            if not lo <= getattr(self, name) <= hi:
                return False
        return True

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """Render to compilable mini-C (entry point ``main``)."""
        lines: list[str] = ["int main() {"]
        consts = list(self.seed_consts) or [1]
        for i in range(self.n_accs):
            lines.append(f"    int acc{i} = {consts[i % len(consts)] & 0xFFFF};")
        lines.append(f"    int k0 = {consts[0] & 0x7FFFFFFF};")
        lines.append(f"    int k1 = {consts[1 % len(consts)] & 0x7FFFFFFF};")
        if self.mem_size > 0:
            lines.append(f"    int buf[{self.mem_size}];")
            lines.append(f"    for (int w = 0; w < {self.mem_size}; w++) "
                         f"{{ buf[w] = w * k0 + k1; }}")
        lines.append(f"    for (int it = 0; it < {self.loop_iters}; it++) {{")
        body = self._body_lines()
        for u in range(max(1, self.unroll)):
            for line in body:
                lines.append("        " + line.replace("@U", str(u)))
        lines.append("    }")
        total = " + ".join(f"acc{i}" for i in range(self.n_accs))
        lines.append(f"    return {total};")
        lines.append("}")
        return "\n".join(lines)

    def _body_lines(self) -> list[str]:
        ops: list[str] = []
        for i in range(self.n_accs):
            expr_parts: list[str] = []
            for m in range(self.mul_ops):
                other = (i + m + 1) % self.n_accs
                expr_parts.append(f"(acc{other} * k{m % 2})")
            for x in range(self.xor_ops):
                expr_parts.append(f"(acc{i} ^ (k{x % 2} + it + @U))")
            for a in range(self.add_ops):
                expr_parts.append(f"(it + {a * 2654435761 % 65536})")
            if not expr_parts:
                expr_parts.append("1")
            ops.append(f"acc{i} = acc{i} + {' + '.join(expr_parts)};")
            if self.mem_size > 0:
                idx = f"((it * {self.mem_stride} + {i} + @U) % {self.mem_size})"
                ops.append(f"acc{i} = acc{i} ^ buf[{idx}];")
                ops.append(f"buf[{idx}] = acc{i};")
            if self.div_every > 0 and i % max(1, self.div_every) == 0:
                ops.append(f"acc{i} = acc{i} % (k0 | 255);")
            if self.branch_every > 0 and i % max(1, self.branch_every) == 0:
                ops.append(f"if ((acc{i} & 1) == 0) {{ acc{i} = acc{i} + k1; }}")
        return ops


def random_genome(rng: random.Random, realistic: bool = True) -> SnippetGenome:
    idx = 0 if realistic else 1
    values = {name: rng.randint(*ranges[idx]) for name, ranges in RANGES.items()}
    consts = tuple(rng.randrange(1, 1 << 28) for _ in range(4))
    return SnippetGenome(seed_consts=consts, **values)


def mutate_genome(genome: SnippetGenome, rng: random.Random,
                  realistic: bool = True, strength: float = 1.0) -> SnippetGenome:
    """Perturb a genome; ``strength`` scales how far parameters move."""
    idx = 0 if realistic else 1
    updates: dict[str, object] = {}
    n_fields = max(1, round(strength * 3))
    names = list(RANGES)
    rng.shuffle(names)
    for name in names[:n_fields]:
        lo, hi = RANGES[name][idx]
        span = max(1, round((hi - lo) * 0.25 * strength))
        current = getattr(genome, name)
        updates[name] = max(lo, min(hi, current + rng.randint(-span, span)))
    if rng.random() < 0.3 * strength:
        consts = list(genome.seed_consts)
        slot = rng.randrange(len(consts))
        consts[slot] = rng.randrange(1, 1 << 28)
        updates["seed_consts"] = tuple(consts)
    return dataclasses.replace(genome, **updates)


def crossover(a: SnippetGenome, b: SnippetGenome,
              rng: random.Random) -> SnippetGenome:
    """Uniform crossover over genome fields (GP's recombination operator)."""
    updates: dict[str, object] = {}
    for name in RANGES:
        updates[name] = getattr(a if rng.random() < 0.5 else b, name)
    updates["seed_consts"] = a.seed_consts if rng.random() < 0.5 \
        else b.seed_consts
    return SnippetGenome(**updates)


# Hand-written seed snippets (the paper's initial candidate pool).
HANDWRITTEN_SEEDS: tuple[SnippetGenome, ...] = (
    SnippetGenome(n_accs=2, loop_iters=200, unroll=1, mul_ops=1, xor_ops=1,
                  add_ops=1, mem_size=16, mem_stride=1),
    SnippetGenome(n_accs=3, loop_iters=300, unroll=2, mul_ops=2, xor_ops=0,
                  add_ops=2, mem_size=0),
    SnippetGenome(n_accs=1, loop_iters=400, unroll=1, mul_ops=0, xor_ops=2,
                  add_ops=2, mem_size=64, mem_stride=4),
    SnippetGenome(n_accs=4, loop_iters=150, unroll=2, mul_ops=1, xor_ops=1,
                  add_ops=1, mem_size=32, mem_stride=2, branch_every=2),
    SnippetGenome(n_accs=2, loop_iters=250, unroll=1, mul_ops=2, xor_ops=1,
                  add_ops=1, mem_size=8, div_every=4),
)
