"""``repro.slt`` — system-level-test program generation (Section V, Fig. 5).

The LLM optimization loop (candidate pool, Levenshtein diversity, SCoT
prompting, simulated-annealing temperature adaptation) plus the genetic-
programming baseline, both scored on the simulated BOOM/FPGA power rig.
"""

from .gp import GeneticProgramming, GpConfig, run_gp_slt
from .loop import (LoopEvent, SltConfig, SltOptimizer, SltRunResult,
                   run_llm_slt)
from .pool import Candidate, CandidatePool
from .scot import SltSnippetGenerator, SnippetGeneration
from .snippets import (HANDWRITTEN_SEEDS, RANGES, SnippetGenome, crossover,
                       mutate_genome, random_genome)
from .stop import StopCondition
from .temperature import TemperatureController

__all__ = [
    "Candidate", "CandidatePool", "GeneticProgramming", "GpConfig",
    "HANDWRITTEN_SEEDS", "LoopEvent", "RANGES", "SltConfig", "SltOptimizer",
    "SltRunResult", "SltSnippetGenerator", "SnippetGeneration",
    "SnippetGenome", "StopCondition", "TemperatureController", "crossover",
    "mutate_genome", "random_genome", "run_gp_slt", "run_llm_slt",
]
