"""Candidate pool with Levenshtein-forced diversity (Section V).

The paper: "The Levenshtein distance is introduced to force the pool to be
more diverse, because otherwise the LLM will converge towards very similar
snippets and become stuck in a local optimum."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..llm.tokenizer import token_levenshtein
from .snippets import SnippetGenome


@dataclass
class Candidate:
    source: str
    genome: SnippetGenome | None
    power_w: float
    snippet_id: int

    def __repr__(self) -> str:
        return f"Candidate(#{self.snippet_id}, {self.power_w:.3f}W)"


@dataclass
class CandidatePool:
    """Fixed-capacity, diversity-enforcing pool of scored snippets."""

    capacity: int = 12
    min_distance: int = 8          # token-Levenshtein admission threshold
    entries: list[Candidate] = field(default_factory=list)
    rejected_similar: int = 0
    rejected_weak: int = 0

    @property
    def best(self) -> Candidate | None:
        if not self.entries:
            return None
        return max(self.entries, key=lambda c: c.power_w)

    @property
    def worst(self) -> Candidate | None:
        if not self.entries:
            return None
        return min(self.entries, key=lambda c: c.power_w)

    def distance_to_pool(self, source: str) -> int:
        """Smallest token-Levenshtein distance to any pool member."""
        if not self.entries:
            return 1 << 30
        return min(token_levenshtein(source, c.source,
                                     limit=self.min_distance * 4)
                   for c in self.entries)

    def consider(self, candidate: Candidate) -> bool:
        """Admission rule: keep if the pool has room, or if the candidate
        beats the worst member *and* is diverse enough."""
        distance = self.distance_to_pool(candidate.source)
        if distance <= self.min_distance:
            # Too similar: only admit if it strictly improves on the closest
            # member (replace-in-place keeps diversity stable).
            closest = min(self.entries,
                          key=lambda c: token_levenshtein(
                              candidate.source, c.source,
                              limit=self.min_distance * 4))
            if candidate.power_w > closest.power_w:
                self.entries.remove(closest)
                self.entries.append(candidate)
                return True
            self.rejected_similar += 1
            return False
        if len(self.entries) < self.capacity:
            self.entries.append(candidate)
            return True
        worst = self.worst
        assert worst is not None
        if candidate.power_w > worst.power_w:
            self.entries.remove(worst)
            self.entries.append(candidate)
            return True
        self.rejected_weak += 1
        return False

    def sample_examples(self, n: int, rng: random.Random) -> list[Candidate]:
        """Random examples for the prompt (the paper picks n at random)."""
        if not self.entries:
            return []
        n = min(n, len(self.entries))
        return rng.sample(self.entries, n)

    def mean_pairwise_distance(self, limit: int = 200) -> float:
        """Pool diversity metric (token-Levenshtein, sampled pairs)."""
        if len(self.entries) < 2:
            return 0.0
        total = 0
        count = 0
        for i in range(len(self.entries)):
            for j in range(i + 1, len(self.entries)):
                total += token_levenshtein(self.entries[i].source,
                                           self.entries[j].source, limit=limit)
                count += 1
        return total / count if count else 0.0
