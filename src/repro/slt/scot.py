"""LLM snippet generation with Structural Chain-of-Thought (Section V).

SCoT is two-stage: the model first writes pseudocode for the stressor, then
translates it to C, with a hint that the pseudocode may contain errors.  In
the simulation the pseudocode stage (a) materially reduces the probability
of emitting non-compiling code and (b) slightly dampens diversity, matching
:func:`repro.llm.prompts.prompt_effects` for the SCOT strategy.

Few-shot examples carry their measured power (the paper annotates examples
with power so the model knows "which of the examples is better and which to
avoid") — exploitation anchors on the best annotated example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..llm.model import SimulatedLLM, _stable_seed
from ..llm.tokenizer import count_tokens
from .pool import Candidate
from .snippets import SnippetGenome, mutate_genome, random_genome


@dataclass
class SnippetGeneration:
    source: str
    genome: SnippetGenome | None
    pseudocode: str
    compiles_intent: bool       # whether the model intended valid code
    anchored_on: int | None     # snippet id of the example exploited


def _corrupt(source: str, rng: random.Random) -> str:
    """Make a snippet non-compiling the way LLM output actually fails."""
    mode = rng.randrange(3)
    if mode == 0 and ";" in source:
        pos = [i for i, c in enumerate(source) if c == ";"]
        cut = rng.choice(pos)
        return source[:cut] + source[cut + 1:]
    if mode == 1 and "}" in source:
        return source.rsplit("}", 1)[0]
    return source.replace("int main", "int man", 1)


def _pseudocode_for(genome: SnippetGenome) -> str:
    lines = ["PLAN:"]
    lines.append(f"  initialize {genome.n_accs} independent accumulators")
    if genome.mem_size:
        lines.append(f"  allocate a {genome.mem_size}-word scratch buffer and "
                     f"pre-fill it")
    lines.append(f"  loop {genome.loop_iters} times "
                 f"(unrolled x{genome.unroll}):")
    if genome.mul_ops:
        lines.append(f"    feed {genome.mul_ops} multiplies per accumulator "
                     f"to saturate the multiplier")
    if genome.xor_ops or genome.add_ops:
        lines.append(f"    mix in {genome.xor_ops} xors and "
                     f"{genome.add_ops} adds to keep ALUs busy")
    if genome.mem_size:
        lines.append(f"    stream the buffer with stride {genome.mem_stride} "
                     f"to exercise the LSU")
    if genome.div_every:
        lines.append("    sprinkle divisions for the divider unit")
    lines.append("  return the accumulator sum so nothing is optimized away")
    return "\n".join(lines)


class SltSnippetGenerator:
    """Wraps a simulated model for power-stressor C generation."""

    def __init__(self, llm: SimulatedLLM, use_scot: bool = True,
                 seed: int = 0):
        self.llm = llm
        self.use_scot = use_scot
        self.seed = seed
        self.calls = 0

    def generate(self, examples: list[Candidate], temperature: float,
                 sample_index: int) -> SnippetGeneration:
        profile = self.llm.profile
        rng = random.Random(_stable_seed(self.seed, profile.name,
                                         "slt", sample_index,
                                         round(temperature, 3)))
        self.calls += 1

        # Exploit-vs-explore: low temperature anchors on the best example.
        exploit_p = max(0.05, 1.0 - temperature * 0.7)
        anchored: int | None = None
        genome_examples = [e for e in examples if e.genome is not None]
        if genome_examples and rng.random() < exploit_p:
            # Power annotations let the model pick the best example;
            # a model that ignores instructions picks at random.
            if rng.random() < profile.instruction_following:
                base = max(genome_examples, key=lambda e: e.power_w)
            else:
                base = rng.choice(genome_examples)
            anchored = base.snippet_id
            strength = 0.4 + temperature * 0.8
            genome = mutate_genome(base.genome, rng, realistic=True,
                                   strength=strength)
        else:
            genome = random_genome(rng, realistic=True)
        genome = genome.clamped(realistic=True)

        pseudocode = _pseudocode_for(genome) if self.use_scot else ""
        source = genome.render()

        # Compile-failure channel: SCoT and C strength reduce it; high
        # temperature increases it.
        fail_p = (1.0 - profile.syntax_reliability) \
            * (1.3 - 0.6 * profile.c_strength) \
            * (0.55 if self.use_scot else 1.0) \
            * (0.7 + 0.6 * temperature)
        compiles_intent = True
        if rng.random() < min(0.9, fail_p):
            source = _corrupt(source, rng)
            compiles_intent = False

        # Token accounting: SCoT costs an extra call.
        prompt_tokens = sum(count_tokens(e.source) for e in examples) + 64
        completion_tokens = count_tokens(source) + count_tokens(pseudocode)
        self.llm.usage.record(prompt_tokens, completion_tokens,
                              calls=2 if self.use_scot else 1)
        return SnippetGeneration(source, genome, pseudocode,
                                 compiles_intent, anchored)
