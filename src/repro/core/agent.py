"""The unified LLM-EDA agent (Fig. 6).

Orchestrates the stage pipeline over the multi-modal design state, with
cross-stage feedback: a downstream failure can re-open an upstream stage
(verification failure → regenerate RTL with the accumulated feedback), and
QoR estimation closes the loop on synthesis-script choice.  The ablation
knob ``enable_feedback`` is experiment E9's subject.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.problems import Problem
from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..llm.model import SimulatedLLM
from ..obs import flush_metrics, get_tracer
from ..service import LLMClient, resolve_client
from .stages import DEFAULT_PIPELINE, Stage, StageContext
from .state import DesignState


@dataclass
class AgentConfig:
    model: str | SimulatedLLM | LLMClient = "gpt-4o"
    enable_feedback: bool = True
    max_reopens: int = 2        # upstream re-entries on downstream failure
    autochip_k: int = 3
    autochip_depth: int = 3


@dataclass
class AgentRunReport:
    problem_id: str
    model: str
    state: DesignState
    success: bool
    reopens: int = field(default=0, kw_only=True)
    total_tokens: int = field(default=0, kw_only=True)

    def stage_table(self) -> list[tuple[str, bool, str]]:
        return [(r.stage, r.success, r.detail) for r in self.state.history]

    def summary(self) -> str:
        status = "COMPLETE" if self.success else "INCOMPLETE"
        stages = ", ".join(f"{r.stage}:{'ok' if r.success else 'FAIL'}"
                           for r in self.state.history)
        return f"{self.problem_id} [{self.model}] {status} | {stages}"


class EdaAgent:
    """Runs a design through the full spec-to-QoR pipeline."""

    def __init__(self, config: AgentConfig | None = None, seed: int = 0,
                 pipeline: tuple[Stage, ...] = DEFAULT_PIPELINE):
        self.config = config or AgentConfig()
        self.seed = seed
        self.pipeline = pipeline

    def run(self, problem: Problem,
            budget: Budget | None = None) -> AgentRunReport:
        cfg = self.config
        # REPRO_AGENT_PLANNER=1 swaps the fixed stage tuple for the
        # plan/act/observe loop; off (the default) this method is exactly
        # the pre-planner code path, so golden fixtures replay unchanged.
        from ..config import get_settings
        if get_settings().agent_planner_enabled:
            return self._run_planned(problem, budget)
        llm = resolve_client(cfg.model, seed=self.seed)
        ctx = StageContext(llm=llm, problem=problem, seed=self.seed,
                           enable_feedback=cfg.enable_feedback,
                           autochip_k=cfg.autochip_k,
                           autochip_depth=cfg.autochip_depth)
        state = DesignState(spec=problem.spec)
        record = RunRecord(flow="agent", problem_id=problem.problem_id,
                           model=llm.profile.name)
        tokens_before = llm.usage.total_tokens
        st = {"index": 0, "reopens": 0}
        attempts: dict[str, int] = {}

        tracer = get_tracer()
        with tracer.span("agent.run", problem=problem.problem_id,
                         model=llm.profile.name, seed=self.seed,
                         feedback=cfg.enable_feedback) as run_span:

            # The kernel hosts the stage loop without a per-round span
            # (span_name=None): the per-stage spans below must stay direct
            # children of agent.run.
            def stop(kstate: RoundState) -> str | None:
                return "complete" if st["index"] >= len(self.pipeline) \
                    else None

            def step(kstate: RoundState, _sp) -> str | None:
                stage = self.pipeline[st["index"]]
                attempts[stage.name] = attempts.get(stage.name, 0) + 1
                with tracer.span(f"stage.{stage.name}",
                                 attempt=attempts[stage.name]) as sp:
                    ok = stage.run(state, ctx)
                    sp.set(success=ok)
                if ok:
                    st["index"] += 1
                    return None
                # Cross-stage feedback: a verification or static-analysis
                # failure re-opens RTL generation with a fresh seed (the
                # accumulated design state keeps the evidence).
                if (cfg.enable_feedback and st["reopens"] < cfg.max_reopens
                        and stage.name in ("static_analysis",
                                           "verification")):
                    st["reopens"] += 1
                    ctx.seed += 1000
                    ctx.llm = ctx.llm.derive(ctx.seed)
                    st["index"] = next(i for i, s
                                       in enumerate(self.pipeline)
                                       if s.name == "rtl_generation")
                    return None
                # Hard failure: record remaining stages as skipped and stop.
                return "stage-failure"

            LoopKernel(step=step, stop=stop, record=record, budget=budget,
                       span_name=None).run()

            reopens = st["reopens"]
            success = (st["index"] >= len(self.pipeline)
                       and all(r.stage != "verification" or r.success
                               for r in state.history[-len(self.pipeline):]))
            run_span.set(success=success and state.verified, reopens=reopens,
                         tokens=llm.usage.total_tokens)
        flush_metrics(tracer)
        record.charge_tokens(llm.usage.total_tokens - tokens_before)
        report = AgentRunReport(problem.problem_id, llm.profile.name, state,
                                success and state.verified,
                                reopens=reopens,
                                total_tokens=llm.usage.total_tokens)
        report.run_record = record
        return report

    def _run_planned(self, problem: Problem,
                     budget: Budget | None = None) -> AgentRunReport:
        """Compatibility view: the planner's transcript rendered as an
        :class:`AgentRunReport` (same surface the reports module reads)."""
        from .planner import PlannerAgent

        goal = ("design, verify and synthesize the module, then report "
                "its PPA")
        planner = PlannerAgent(self.config.model, seed=self.seed)
        result = planner.run(goal, problem, budget=budget)
        report = AgentRunReport(result.problem_id, result.model,
                                result.state,
                                result.success and result.state.verified,
                                reopens=0,
                                total_tokens=result.total_tokens)
        report.run_record = result.run_record
        report.plan = result
        return report


@dataclass
class AgentSweep:
    reports: list[AgentRunReport] = field(default_factory=list)

    @property
    def end_to_end_rate(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.success for r in self.reports) / len(self.reports)

    def stage_success_rates(self) -> dict[str, float]:
        counts: dict[str, list[int]] = {}
        for report in self.reports:
            seen: dict[str, bool] = {}
            for record in report.state.history:
                # Last attempt of each stage wins.
                seen[record.stage] = record.success
            for stage, ok in seen.items():
                counts.setdefault(stage, []).append(int(ok))
        return {stage: sum(v) / len(v) for stage, v in sorted(counts.items())}


def run_agent_sweep(problems: list[Problem],
                    model: str | SimulatedLLM | LLMClient = "gpt-4o",
                    enable_feedback: bool = True, *,
                    seeds: tuple[int, ...] = (0, 1),
                    jobs: int | str | None = None) -> AgentSweep:
    """Run the agent over a problem/seed grid.

    ``jobs`` fans independent (problem, seed) cells over a worker pool when
    ``model`` is a plain profile name; client instances run serially (they
    are not picklable).  Results keep the seed-major serial ordering.
    """
    cells = [(problem, model, enable_feedback, seed)
             for seed in seeds for problem in problems]
    if isinstance(model, str):
        from ..exec import SweepScheduler, agent_run_task
        return AgentSweep(SweepScheduler(jobs).map(agent_run_task, cells))
    sweep = AgentSweep()
    for problem, _, _, seed in cells:
        agent = EdaAgent(AgentConfig(model=model,
                                     enable_feedback=enable_feedback),
                         seed=seed)
        sweep.reports.append(agent.run(problem))
    return sweep
