"""The planner head: a seeded model that emits structured next-actions.

Follows the :mod:`repro.critic.judge` seam exactly: a pure backend whose
``plan(prompt)`` output is a function of ``(prompt text, seed, profile)``,
wrapped in a client that either invokes it in-process or submits it to the
broker's per-model lanes under ``REPRO_SERVICE=1``.  Because the backend
reads nothing but its argument and constructor state, lane scheduling
cannot change any plan — the service path is byte-identical to the direct
path.

Like every model in this repo the planner is *simulated but honest*:
stronger profiles follow the retrieval-ranked shortlist embedded in the
prompt; weaker ones wander to lower-ranked tools or emit malformed
actions (which surface as validation-error observations, exactly the
failure mode ReAct-style agents show in practice).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..llm.model import ModelProfile, _stable_seed

#: Grammar of one planner completion.  ``CALL`` must come first; ``CITE``
#: and ``WHY`` are optional trailers.  Anything else is a malformed action.
ACTION_GRAMMAR = "CALL <tool> <json-args> | CITE <doc,...> | WHY <text>"

_CANDIDATE_PREFIX = "CANDIDATE "


@dataclass(frozen=True)
class PlanAction:
    """One parsed next-action from the planner's completion."""

    tool: str = ""
    args: dict = field(default_factory=dict)
    citations: tuple[str, ...] = ()
    rationale: str = ""
    raw: str = ""
    error: str = ""

    @property
    def malformed(self) -> bool:
        return bool(self.error)


def render_action(tool: str, args: dict, citations: tuple[str, ...] = (),
                  rationale: str = "") -> str:
    """The canonical completion text for one action."""
    parts = [f"CALL {tool} {json.dumps(args, sort_keys=True)}"]
    if citations:
        parts.append("CITE " + ",".join(citations))
    if rationale:
        parts.append("WHY " + rationale)
    return "\n".join(parts)


def parse_action(text: str) -> PlanAction:
    """Parse one completion; malformed text yields an error action.

    Never raises: the planner loop folds the error back into the
    transcript as an observation so the next round can recover.
    """
    tool, args, citations, rationale = "", {}, (), ""
    call_seen = False
    for line in text.strip().splitlines():
        line = line.strip()
        if line.startswith("CALL "):
            call_seen = True
            rest = line[len("CALL "):].strip()
            name, _, arg_text = rest.partition(" ")
            tool = name.strip()
            if arg_text.strip():
                try:
                    parsed = json.loads(arg_text)
                except ValueError:
                    return PlanAction(tool=tool, raw=text,
                                      error=f"unparseable args: {arg_text!r}")
                if not isinstance(parsed, dict):
                    return PlanAction(tool=tool, raw=text,
                                      error="args must be a JSON object")
                args = parsed
        elif line.startswith("CITE "):
            citations = tuple(c.strip() for c in
                              line[len("CITE "):].split(",") if c.strip())
        elif line.startswith("WHY "):
            rationale = line[len("WHY "):].strip()
    if not call_seen or not tool:
        return PlanAction(raw=text,
                          error=f"no CALL line (grammar: {ACTION_GRAMMAR})")
    return PlanAction(tool=tool, args=args, citations=citations,
                      rationale=rationale, raw=text)


def render_candidate(rank: int, tool: str, args: dict,
                     citations: tuple[str, ...], hint: str) -> str:
    """One shortlist row the agent embeds in the planning prompt."""
    return (f"{_CANDIDATE_PREFIX}{rank}: {tool} "
            f"{json.dumps(args, sort_keys=True)} "
            f"[{','.join(citations)}] -- {hint}")


def _parse_candidates(prompt: str) -> list[tuple[str, dict, tuple[str, ...]]]:
    """Recover the ranked shortlist rows from the rendered prompt."""
    out = []
    for line in prompt.splitlines():
        line = line.strip()
        if not line.startswith(_CANDIDATE_PREFIX):
            continue
        _, _, rest = line.partition(": ")
        name, _, tail = rest.partition(" ")
        arg_text, _, tail = tail.partition(" [")
        cites, _, _ = tail.partition("] --")
        try:
            args = json.loads(arg_text) if arg_text.strip() else {}
        except ValueError:
            args = {}
        out.append((name.strip(),
                    args if isinstance(args, dict) else {},
                    tuple(c for c in cites.split(",") if c)))
    return out


class SimulatedPlanner:
    """Deterministic planner backend; rides broker lanes via kind='plan'."""

    def __init__(self, profile: ModelProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    def _ability(self) -> float:
        """How reliably this profile follows the grounded shortlist."""
        p = self.profile
        return (0.30 + 0.40 * p.spec_comprehension
                + 0.20 * p.feedback_comprehension
                + 0.10 * p.instruction_following)

    def plan(self, prompt: str) -> str:
        """One completion; pure function of (prompt, seed, profile)."""
        rng = random.Random(_stable_seed(self.seed, "plan",
                                         self.profile.name, prompt))
        candidates = _parse_candidates(prompt)
        if not candidates:
            return "CALL finish {}\nWHY no candidate actions offered"
        # Weak instruction followers occasionally break the grammar; the
        # kernel folds the parse error back as an observation.
        if rng.random() < (1.0 - self.profile.instruction_following) * 0.12:
            tool = candidates[0][0]
            return f"I think we should run {tool} next, then re-check."
        if rng.random() < self._ability() or len(candidates) == 1:
            pick = 0
        else:
            # Wander: weight lower ranks geometrically so rank 2 is the
            # common mistake and the tail stays rare.
            pick = min(1 + int(rng.random() * rng.random()
                               * (len(candidates) - 1)),
                       len(candidates) - 1)
        tool, args, citations = candidates[pick]
        rationale = (f"rank-{pick + 1} candidate from grounded shortlist"
                     if pick else "top grounded candidate")
        return render_action(tool, args, citations, rationale)


class PlannerClient:
    """Routes plan calls directly or through the broker seam."""

    def __init__(self, profile: ModelProfile, seed: int = 0, broker=None):
        self.backend = SimulatedPlanner(profile, seed)
        self.broker = broker

    @property
    def seed(self) -> int:
        return self.backend.seed

    def plan(self, prompt: str) -> str:
        if self.broker is None:
            return self.backend.plan(prompt)
        key = _stable_seed(self.backend.seed, "plan", prompt)
        return self.broker.call(self.backend, "plan", (prompt,), key=key)


def resolve_planner(profile: ModelProfile, seed: int = 0) -> PlannerClient:
    """Planner client honouring ``REPRO_SERVICE`` (broker seam) settings."""
    from ..config import get_settings
    broker = None
    if get_settings().service_enabled:
        from ..service.broker import get_default_broker
        broker = get_default_broker()
    return PlannerClient(profile, seed=seed, broker=broker)
