"""Multi-modal design state for the unified EDA agent (Fig. 6).

The paper's envisioned agent integrates "natural language specifications,
HDL designs, and multi-modal data, such as schematics, netlists, and
physical layouts, into a unified representation".  :class:`DesignState` is
that representation for this reproduction: one object carrying every
modality a design accumulates on its way from spec to (estimated) silicon,
plus the full stage history so cross-stage feedback can inspect it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class StageRecord:
    stage: str
    success: bool
    detail: str
    artifacts: dict[str, Any] = field(default_factory=dict)


@dataclass
class DesignState:
    """Everything known about one design across all modalities."""

    # Natural-language modality.
    spec: str
    enriched_spec: str = ""

    # Software modality (HLS input).
    c_source: str = ""

    # RTL modality.
    rtl_source: str = ""
    module_name: str = ""

    # Netlist modality.
    netlist: Any = None          # repro.synth.SynthesizedModule
    aig_stats: dict[str, int] = field(default_factory=dict)

    # Physical/QoR modality.
    ppa: Any = None              # repro.synth.PpaReport
    schedule: Any = None         # repro.hls.ScheduleReport

    # Verification modality.
    verified: bool = False
    verification_detail: str = ""
    assertions_valid: int = 0
    lint_warnings: list[str] = field(default_factory=list)
    # Critic rejection verdicts (taxonomy-labelled failure strings).  The
    # planner folds these into observations, and the agent threads them —
    # alongside lint warnings — into regeneration feedback on re-opens.
    critic_verdicts: list[str] = field(default_factory=list)

    # Provenance.
    history: list[StageRecord] = field(default_factory=list)

    def record(self, stage: str, success: bool, detail: str,
               **artifacts: Any) -> StageRecord:
        entry = StageRecord(stage, success, detail, dict(artifacts))
        self.history.append(entry)
        return entry

    def stage_succeeded(self, stage: str) -> bool:
        return any(r.stage == stage and r.success for r in self.history)

    @property
    def completed_stages(self) -> list[str]:
        return [r.stage for r in self.history if r.success]

    @property
    def failed_stages(self) -> list[str]:
        return [r.stage for r in self.history if not r.success]

    def modalities_present(self) -> list[str]:
        out = ["spec"]
        if self.c_source:
            out.append("software")
        if self.rtl_source:
            out.append("rtl")
        if self.netlist is not None:
            out.append("netlist")
        if self.ppa is not None:
            out.append("qor")
        return out
