"""The planner agent: a plan/act/observe loop over the typed tool registry.

This is the ChatEDA shape (PAPERS.md) the paper's agent half describes —
an LLM planner decomposing a natural-language goal into EDA tool
invocations — replacing the fixed ``DEFAULT_PIPELINE`` stage tuple with
planned tool calls:

1. **ground** — rank the registered tools against the goal plus the most
   recent observation via the RAG tool-doc index, gate on each tool's
   declared state preconditions, and render the shortlist (with its
   citations) into the planning prompt;
2. **plan** — the seeded planner head (:mod:`repro.core.policy`, riding
   the broker seam under ``REPRO_SERVICE=1``) emits one structured
   next-action;
3. **act** — the :class:`~repro.engine.LoopKernel` round invokes the tool
   through the registry's validation seam;
4. **observe** — the outcome text (or the validation error, for malformed
   or premature actions) is folded into the transcript the next round's
   grounding query and prompt read.  Critic rejection verdicts land in
   ``DesignState.critic_verdicts`` and thread into regeneration feedback.

Determinism: grounding is TF-IDF over fixed text, the planner head is a
pure function of (prompt, seed, profile), and every tool honours the
registry's purity contract — so a whole planner run is a pure function of
(goal, problem, model, seed), byte-identical across ``REPRO_SERVICE=0/1``
and scheduler fan-out (DESIGN.md §13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..bench.problems import Problem
from ..config import get_settings
from ..engine import Budget, LoopKernel, RoundState, RunRecord
from ..llm.model import SimulatedLLM
from ..obs import flush_metrics, get_tracer
from ..service import LLMClient, resolve_client
from ..tools import (ToolContext, ToolError, build_tool_index, get_tool,
                     list_tools)
from .policy import parse_action, render_candidate, resolve_planner
from .state import DesignState

#: Tools that are sensible to repeat even after they once succeeded
#: (reports and checks re-measure; generation/tuning change state).
_REPEATABLE = ("run_testbench", "ppa_report", "lint_rtl", "compile_rtl",
               "doc_lookup", "critic_review", "fuzz_spot_check", "finish")

_OBS_TAIL = 3          # observations rendered into the planning prompt
_SHORTLIST = 4         # candidates offered per round


def _tokens(text: str) -> int:
    """The 4-chars-per-token approximation every simulated flow uses."""
    return max(1, len(text) // 4)


@dataclass
class PlanStep:
    """One plan/act/observe round in the transcript."""

    round_no: int
    tool: str
    args: dict
    ok: bool
    observation: str
    citations: tuple[str, ...] = ()
    rationale: str = ""
    malformed: bool = False

    def line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return f"[{self.round_no}] {self.tool or '<malformed>'}: {status}"


@dataclass
class PlannerRunReport:
    """Outcome of one planner-agent run."""

    goal: str
    problem_id: str
    model: str
    state: DesignState
    success: bool
    steps: list[PlanStep] = field(default_factory=list)
    stop_reason: str = ""
    total_tokens: int = field(default=0, kw_only=True)

    @property
    def tool_sequence(self) -> list[str]:
        return [s.tool for s in self.steps if s.tool and not s.malformed]

    def transcript(self) -> str:
        return "\n".join(f"{s.line()} {s.observation}" for s in self.steps)

    def summary(self) -> str:
        status = "PASS" if self.success else "FAIL"
        return (f"{self.problem_id or self.goal[:40]} [{self.model}] "
                f"{status} in {len(self.steps)} step(s): "
                f"{' -> '.join(self.tool_sequence) or '-'}")


class PlannerAgent:
    """Plan/act/observe over the tool registry (see module docstring).

    ``goal_check(ctx) -> bool`` decides success (and gates the ``finish``
    candidate); without one, a verified design counts as done.
    """

    def __init__(self, model: str | SimulatedLLM | LLMClient = "gpt-4o",
                 seed: int = 0, max_steps: int | None = None,
                 goal_check: Callable[[ToolContext], bool] | None = None):
        self.model = model
        self.seed = seed
        self.max_steps = max_steps
        self.goal_check = goal_check

    # -- grounding ------------------------------------------------------------

    def _satisfied(self, ctx: ToolContext) -> bool:
        if self.goal_check is not None:
            return bool(self.goal_check(ctx))
        return ctx.state.verified

    def _feedback_text(self, ctx: ToolContext) -> str:
        """Accumulated findings regeneration should condition on."""
        parts = list(ctx.state.lint_warnings[:6])
        parts += ctx.state.critic_verdicts[:6]
        if ctx.state.verification_detail and not ctx.state.verified:
            parts.append(ctx.state.verification_detail)
        return "\n".join(parts)

    def _candidate_args(self, ctx: ToolContext, tool: str,
                        goal: str, last_obs: str) -> dict:
        if tool == "generate_rtl":
            feedback = self._feedback_text(ctx)
            return {"feedback": feedback} if feedback else {}
        if tool == "doc_lookup":
            # Lead with the diagnostic code from the last observation, the
            # way a user pastes a tool error into the QA box.
            for token in last_obs.replace(";", " ").replace(":", " ").split():
                if token.startswith(("LINT-", "HLS0")):
                    return {"question": f"what does {token} mean"}
            return {"question": goal}
        return {}

    def _shortlist(self, ctx: ToolContext, goal: str,
                   steps: list[PlanStep], tool_index) -> list[tuple]:
        """Ranked, precondition-gated (tool, args, citations) candidates.

        Retrieval relevance is the base score; deterministic progress
        priors (what modalities exist, what the goal still lacks) keep
        the shortlist honest when TF-IDF alone is ambiguous.
        """
        state = ctx.state
        last_obs = steps[-1].observation if steps else ""
        last_tool = steps[-1].tool if steps else ""
        goal_l = goal.lower()
        done = self._satisfied(ctx)
        succeeded = {s.tool for s in steps if s.ok and not s.malformed}

        ranked = tool_index.rank(goal + " " + last_obs)
        scored = []
        for g in ranked:
            spec = get_tool(g.tool)
            if spec.missing_state(ctx):
                continue
            if g.tool in succeeded and g.tool not in _REPEATABLE:
                # Re-running a successful mutator is allowed only when the
                # evidence says its product went stale (failed verify).
                if not (g.tool == "generate_rtl" and not state.verified):
                    continue
            score = g.score
            if g.tool == "finish":
                score += 2.0 if done else -2.0
            if done and g.tool != "finish":
                score -= 0.5
            if g.tool == "generate_rtl" and not state.rtl_source:
                score += 1.0
            if g.tool == "hls_repair" and ctx.c_source:
                score += 0.8
            if g.tool == "run_testbench" and state.rtl_source \
                    and not state.verified:
                score += 0.45
            if g.tool == "synthesize" and state.rtl_source \
                    and state.netlist is None \
                    and any(w in goal_l for w in ("synth", "ppa", "area",
                                                  "delay", "netlist")):
                score += 0.6
            if g.tool == "ppa_report" and state.netlist is not None \
                    and state.ppa is None:
                score += 0.6
            if g.tool == "tune_synthesis" and state.ppa is not None \
                    and not ctx.scratch.get("tuned") \
                    and any(w in goal_l for w in ("fix", "improve", "slow",
                                                  "optimi", "tune")):
                score += 0.8
            if g.tool == "ppa_report" and ctx.scratch.get("tuned") \
                    and last_tool == "tune_synthesis":
                score += 1.0
            if g.tool == "crosscheck" \
                    and any(w in goal_l for w in ("disagree", "diverge",
                                                  "c model", "mismatch")):
                score += 0.8
            if g.tool == "doc_lookup" \
                    and ("LINT-" in last_obs or "HLS0" in last_obs):
                score += 0.5
            if g.tool == last_tool and not (steps and steps[-1].ok):
                score -= 0.3   # don't hammer a tool that just failed
            scored.append((score, g.tool, g.citations))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [(tool, self._candidate_args(ctx, tool, goal, last_obs), cites)
                for _, tool, cites in scored[:_SHORTLIST]]

    def _prompt(self, goal: str, ctx: ToolContext, steps: list[PlanStep],
                shortlist: list[tuple]) -> str:
        lines = [f"GOAL: {goal}",
                 "STATE: " + ",".join(ctx.state.modalities_present())
                 + (",verified" if ctx.state.verified else "")]
        for step in steps[-_OBS_TAIL:]:
            lines.append(f"OBSERVATION {step.round_no}: "
                         f"{step.line()} {step.observation[:200]}")
        lines.append("Choose the next action from the grounded candidates:")
        for rank, (tool, args, citations) in enumerate(shortlist, start=1):
            lines.append(render_candidate(rank, tool, args, citations,
                                          get_tool(tool).summary))
        return "\n".join(lines)

    # -- the loop -------------------------------------------------------------

    def run(self, goal: str, problem: Problem | None = None, *,
            c_source: str = "", c_top: str = "",
            budget: Budget | None = None) -> PlannerRunReport:
        llm = resolve_client(self.model, seed=self.seed)
        planner = resolve_planner(llm.profile, seed=self.seed)
        state = DesignState(spec=problem.spec if problem else goal)
        state.module_name = problem.module_name if problem else ""
        ctx = ToolContext(llm=llm, seed=self.seed, problem=problem,
                          state=state, c_source=c_source, c_top=c_top)
        tool_index = build_tool_index(
            list_tools(), spec_text=goal + " " + (problem.spec
                                                  if problem else ""))
        max_steps = self.max_steps if self.max_steps is not None \
            else get_settings().agent_max_steps
        record = RunRecord(flow="planner",
                           problem_id=problem.problem_id if problem else "",
                           model=llm.profile.name)
        steps: list[PlanStep] = []
        tokens_before = llm.usage.total_tokens
        charged = {"tokens": tokens_before}

        tracer = get_tracer()
        with tracer.span("planner.run", goal=goal[:60],
                         problem=record.problem_id, model=record.model,
                         seed=self.seed) as run_span:

            def step(kstate: RoundState, _sp) -> str | None:
                shortlist = self._shortlist(ctx, goal, steps, tool_index)
                prompt = self._prompt(goal, ctx, steps, shortlist)
                with tracer.span("planner.plan", round=kstate.round_no):
                    completion = planner.plan(prompt)
                llm.usage.record(_tokens(prompt), _tokens(completion))
                action = parse_action(completion)
                if action.malformed:
                    steps.append(PlanStep(
                        kstate.round_no, action.tool, dict(action.args),
                        False, f"invalid action: {action.error}",
                        malformed=True))
                elif action.tool == "finish":
                    done = self._satisfied(ctx)
                    note = (action.args.get("note")
                            or ("goal satisfied" if done
                                else "stopping without evidence"))
                    steps.append(PlanStep(
                        kstate.round_no, "finish", dict(action.args), done,
                        f"finish: {note}", citations=action.citations,
                        rationale=action.rationale))
                    return "finish"
                else:
                    try:
                        outcome = get_tool(action.tool).invoke(
                            ctx, action.args)
                        ok, obs = outcome.ok, outcome.observation
                    except (ToolError, KeyError) as exc:
                        ok, obs = False, f"invalid action: {exc}"
                    steps.append(PlanStep(
                        kstate.round_no, action.tool, dict(action.args),
                        ok, obs, citations=action.citations,
                        rationale=action.rationale))
                    record.tool_evaluations += 1
                # Charge this round's model spend so token budgets bind.
                total = llm.usage.total_tokens
                record.charge_tokens(total - charged["tokens"])
                charged["tokens"] = total
                return None

            LoopKernel(step=step, record=record, budget=budget,
                       max_rounds=max_steps, span_name=None).run()

            success = self._satisfied(ctx)
            run_span.set(success=success, steps=len(steps),
                         tokens=llm.usage.total_tokens - tokens_before)
        flush_metrics(tracer)
        report = PlannerRunReport(
            goal=goal, problem_id=record.problem_id, model=record.model,
            state=state, success=success, steps=steps,
            stop_reason=record.stop_reason,
            total_tokens=llm.usage.total_tokens - tokens_before)
        report.run_record = record
        return report
