"""Human-readable reporting for agent runs and experiment tables."""

from __future__ import annotations

from .agent import AgentRunReport, AgentSweep


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Plain-text table used by the benchmark harness output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def agent_report_text(report: AgentRunReport) -> str:
    lines = [report.summary(), ""]
    lines.append(format_table(
        ["stage", "ok", "detail"],
        [[stage, "yes" if ok else "NO", detail[:90]]
         for stage, ok, detail in report.stage_table()]))
    state = report.state
    lines.append("")
    lines.append(f"modalities: {', '.join(state.modalities_present())}")
    if state.ppa is not None:
        lines.append(f"QoR: {state.ppa.summary()}")
    return "\n".join(lines)


def sweep_report_text(sweep: AgentSweep) -> str:
    lines = [f"end-to-end success: {sweep.end_to_end_rate:.0%} "
             f"over {len(sweep.reports)} runs", ""]
    rates = sweep.stage_success_rates()
    lines.append(format_table(
        ["stage", "success rate"],
        [[stage, f"{rate:.0%}"] for stage, rate in rates.items()]))
    return "\n".join(lines)
