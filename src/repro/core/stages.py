"""Pipeline stages of the unified EDA agent (Fig. 1 / Fig. 6).

Each stage consumes and enriches the shared :class:`DesignState`.  Stages
deliberately map one-to-one onto the chip design flow of Fig. 1:
specification → RTL generation → static analysis → verification →
logic synthesis → QoR estimation, with the LLM assisting where the paper
places it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.harness import evaluate_candidate
from ..bench.problems import Problem
from ..flows.assertgen import assertion_quality
from ..flows.autochip import AutoChip, AutoChipConfig
from ..hdl import lint_source, parse
from ..llm.model import SimulatedLLM
from ..obs import get_tracer
from ..service.client import LLMClient
from ..synth import estimate_ppa, optimize, synthesize_module
from ..synth.optimize import DEFAULT_SCRIPT
from .state import DesignState


class StageError(Exception):
    pass


@dataclass
class StageContext:
    llm: "SimulatedLLM | LLMClient"
    problem: Problem
    seed: int = 0
    enable_feedback: bool = True     # cross-stage feedback (the ablation knob)
    autochip_k: int = 3
    autochip_depth: int = 3


class Stage:
    """Base class; subclasses set ``name`` and implement ``run``."""

    name = "stage"

    def run(self, state: DesignState, ctx: StageContext) -> bool:
        raise NotImplementedError


class SpecificationStage(Stage):
    """SpecLLM-style spec review: normalize and enrich the specification."""

    name = "specification"

    def run(self, state: DesignState, ctx: StageContext) -> bool:
        profile = ctx.llm.profile
        clarity = profile.spec_comprehension
        notes = [state.spec.strip()]
        if clarity > 0.5:
            notes.append(f"[interface] implement module "
                         f"'{ctx.problem.module_name}' exactly as named.")
        if clarity > 0.7 and ctx.problem.sequential:
            notes.append("[timing] state updates on the rising clock edge; "
                         "reset is synchronous unless stated otherwise.")
        state.enriched_spec = "\n".join(notes)
        state.record(self.name, True,
                     f"spec enriched ({len(notes) - 1} review notes)")
        return True


class RtlGenerationStage(Stage):
    """LLM RTL generation with tool feedback (AutoChip inside the agent)."""

    name = "rtl_generation"

    def run(self, state: DesignState, ctx: StageContext) -> bool:
        depth = ctx.autochip_depth if ctx.enable_feedback else 1
        chip = AutoChip(ctx.llm, AutoChipConfig(k=ctx.autochip_k, depth=depth))
        # On an agent re-open, downstream stages have already produced
        # lint findings; thread them into the regeneration prompt instead
        # of discarding them.  First pass: no warnings, empty feedback,
        # identical prompt to before.
        feedback = ""
        if ctx.enable_feedback and state.lint_warnings:
            shown = state.lint_warnings[:8]
            feedback = ("static analysis of the previous attempt reported:\n"
                        + "\n".join(shown))
        # Critic rejection verdicts (populated only when REPRO_CRITIC=1)
        # ride along as repair context; with the critic off the list is
        # empty and the prompt is byte-identical to the pre-critic path.
        if ctx.enable_feedback and state.critic_verdicts:
            rejected = "\n".join(state.critic_verdicts[:6])
            feedback = (feedback + "\n" if feedback else "") \
                + "the critic rejected the previous attempt:\n" + rejected
        outcome = chip.run(ctx.problem, initial_feedback=feedback)
        state.rtl_source = outcome.best_source
        state.module_name = ctx.problem.module_name
        state.record(self.name, outcome.success,
                     outcome.summary(), score=outcome.best_score,
                     generations=outcome.generations)
        return outcome.success


class StaticAnalysisStage(Stage):
    """Lint the RTL; warnings feed the next refinement when feedback is on."""

    name = "static_analysis"

    def run(self, state: DesignState, ctx: StageContext) -> bool:
        if not state.rtl_source:
            state.record(self.name, False, "no RTL to lint")
            return False
        try:
            source = parse(state.rtl_source)
        except Exception as exc:
            state.record(self.name, False, f"parse failed: {exc}")
            return False
        warnings = [str(w) for w in lint_source(source)]
        state.lint_warnings = warnings
        blocking = [w for w in warnings if "LINT-UNDECL" in w
                    or "LINT-MULTIDRIVE" in w]
        from ..critic import resolve_critic
        critic = resolve_critic("agent", seed=ctx.seed)
        if critic is not None:
            verdict = critic.review([state.rtl_source],
                                    ctx.problem.module_name)[0]
            if not verdict.ok:
                # Rejection verdicts get their own channel (they thread
                # into regeneration feedback and planner observations as
                # critic context, not as lint findings) but still block.
                extra = [str(f) for f in verdict.failures]
                state.critic_verdicts.extend(extra)
                blocking = blocking + extra
        state.record(self.name, not blocking,
                     f"{len(state.lint_warnings) + len(state.critic_verdicts)}"
                     f" warnings ({len(blocking)} blocking)")
        return not blocking


class VerificationStage(Stage):
    """Golden-testbench sign-off plus AssertLLM-style property mining."""

    name = "verification"

    def run(self, state: DesignState, ctx: StageContext) -> bool:
        tracer = get_tracer()
        with tracer.span("verification.testbench") as sp:
            tb = evaluate_candidate(ctx.problem, state.rtl_source)
            sp.set(passed=tb.passed, checks=tb.total_checks)
        with tracer.span("verification.assertions") as sp:
            assertions = assertion_quality(ctx.problem, ctx.llm, seed=ctx.seed,
                                           n_assertions=6, n_mutants=3)
            sp.set(refined=assertions.refined)
        state.verified = tb.passed
        state.assertions_valid = assertions.refined
        state.verification_detail = (f"testbench {tb.pass_count}/"
                                     f"{tb.total_checks} checks; "
                                     f"{assertions.refined} assertions kept")
        state.record(self.name, tb.passed, state.verification_detail)
        return tb.passed


class SynthesisStage(Stage):
    """Logic synthesis to an optimized AIG netlist."""

    name = "synthesis"

    def run(self, state: DesignState, ctx: StageContext) -> bool:
        from ..synth import synthesize_source
        try:
            with get_tracer().span("synthesis.elaborate"):
                synthesized = synthesize_source(state.rtl_source,
                                                state.module_name)
        except Exception as exc:
            state.record(self.name, False, f"synthesis failed: {exc}")
            return False
        with get_tracer().span("synthesis.optimize"):
            optimized = optimize(synthesized.aig, DEFAULT_SCRIPT)
        synthesized.aig = optimized.aig
        state.netlist = synthesized
        state.aig_stats = optimized.aig.stats()
        state.record(self.name, True,
                     f"netlist: {state.aig_stats}", history=optimized.history)
        return True


class QorStage(Stage):
    """PPA estimation with closed-loop script selection when feedback is on."""

    name = "qor"

    SCRIPTS = (
        DEFAULT_SCRIPT,
        ("rewrite", "sweep"),
        ("balance", "rewrite", "balance", "sweep"),
    )

    def run(self, state: DesignState, ctx: StageContext) -> bool:
        if state.netlist is None:
            state.record(self.name, False, "no netlist")
            return False
        best_report = estimate_ppa(state.netlist)
        chosen = "as-synthesized"
        if ctx.enable_feedback:
            # Closed-loop QoR refinement: try alternative synthesis scripts
            # and keep the best area-delay product.
            from ..synth import synthesize_source
            for script in self.SCRIPTS:
                try:
                    with get_tracer().span("qor.script",
                                           script="+".join(script)):
                        candidate = synthesize_source(state.rtl_source,
                                                      state.module_name)
                        candidate.aig = optimize(candidate.aig, script).aig
                        report = estimate_ppa(candidate)
                except Exception:
                    continue
                if report.area_um2 * report.delay_ns \
                        < best_report.area_um2 * best_report.delay_ns:
                    best_report = report
                    state.netlist = candidate
                    chosen = "+".join(script)
        state.ppa = best_report
        state.record(self.name, True,
                     f"{best_report.summary()} (script: {chosen})")
        return True


DEFAULT_PIPELINE: tuple[Stage, ...] = (
    SpecificationStage(),
    RtlGenerationStage(),
    StaticAnalysisStage(),
    VerificationStage(),
    SynthesisStage(),
    QorStage(),
)
