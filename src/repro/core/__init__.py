"""``repro.core`` — the unified multi-modal LLM-EDA agent of Fig. 6.

Orchestrates specification review, RTL generation with tool feedback,
static analysis, verification, logic synthesis, and closed-loop QoR
refinement over one shared multi-modal design state.
"""

from .agent import (AgentConfig, AgentRunReport, AgentSweep, EdaAgent,
                    run_agent_sweep)
from .planner import PlannerAgent, PlannerRunReport, PlanStep
from .policy import (PlanAction, PlannerClient, SimulatedPlanner,
                     parse_action, render_action, resolve_planner)
from .report import agent_report_text, format_table, sweep_report_text
from .stages import (DEFAULT_PIPELINE, QorStage, RtlGenerationStage,
                     SpecificationStage, Stage, StageContext,
                     StaticAnalysisStage, SynthesisStage, VerificationStage)
from .state import DesignState, StageRecord

__all__ = [
    "AgentConfig", "AgentRunReport", "AgentSweep", "DEFAULT_PIPELINE",
    "DesignState", "EdaAgent", "PlanAction", "PlanStep", "PlannerAgent",
    "PlannerClient", "PlannerRunReport", "QorStage", "RtlGenerationStage",
    "SimulatedPlanner", "SpecificationStage", "Stage", "StageContext",
    "StageRecord", "StaticAnalysisStage", "SynthesisStage",
    "VerificationStage", "agent_report_text", "format_table", "parse_action",
    "render_action", "resolve_planner", "run_agent_sweep",
    "sweep_report_text",
]
