"""Counter/Histogram metrics with a process-wide registry.

Metrics complement spans: spans answer "where did this run spend its
time", metrics answer "how many compile-cache hits / simulator events /
evaluator timeouts did it accumulate".  Both stream into the same sink
(via :func:`repro.obs.flush_metrics`), so one JSONL trace carries the
full picture of a run.

Everything is thread-safe — the parallel evaluator's thread mode and the
compile cache's thread sharing update metrics concurrently.
"""

from __future__ import annotations

import threading


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Streaming summary statistics (count/total/min/max) of observations."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        return {"count": self.count, "total": round(self.total, 6),
                "mean": round(self.mean, 6), "min": round(self.min, 6),
                "max": round(self.max, 6)}


class Gauge:
    """Last-write-wins instantaneous value (queue depths, cache sizes)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float = 1.0) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    def snapshot(self) -> dict:
        """JSON-serializable view of every registered metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(histograms.items())},
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_default_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _default_registry


def reset_metrics() -> None:
    """Drop all registered metrics (tests, bench harnesses)."""
    _default_registry.clear()
