"""Pluggable telemetry sinks.

A sink receives finished telemetry *records* — plain JSON-serializable
dicts with a ``type`` key (``"span"`` or ``"metrics"``).  Three sinks
cover every deployment mode the repo needs:

* :class:`NullSink` — swallows everything; the default when tracing is
  disabled (``REPRO_TRACE=0``), so instrumented hot paths stay no-ops.
* :class:`InMemorySink` — accumulates records in a list; used by tests
  and by :mod:`repro.obs.report` to render run summaries.
* :class:`JsonlSink` — appends one JSON line per record to a file
  (``REPRO_TRACE_FILE``), the production-shaped output future scaling
  PRs regress span timings against.
"""

from __future__ import annotations

import json
import threading


class Sink:
    """Interface: receive one finished telemetry record."""

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class NullSink(Sink):
    """Discards every record."""

    def emit(self, record: dict) -> None:
        pass


class InMemorySink(Sink):
    """Accumulates records in memory (thread-safe)."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)

    def spans(self) -> list[dict]:
        with self._lock:
            return [r for r in self.records if r.get("type") == "span"]

    def metrics(self) -> list[dict]:
        with self._lock:
            return [r for r in self.records if r.get("type") == "metrics"]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()


class JsonlSink(Sink):
    """Appends one JSON object per line to ``path`` (thread-safe).

    The file handle is opened lazily on first emit and kept open; lines
    are flushed per record so a crashed run still leaves a usable trace.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = None
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_jsonl(path: str) -> list[dict]:
    """Load a JSONL trace file back into records (skips blank lines)."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
