"""Span-based tracer: monotonic timers, nested spans, per-span attributes.

The tracer is the repo's substrate for operating loop-shaped flows
(AutoChip feedback rounds, the Fig. 5 SLT loop, HLS repair stages, the
Fig. 6 agent pipeline) at scale: every hot path opens a span, spans nest
via a per-thread stack, and finished spans stream to a pluggable sink.

Design constraints:

* **zero dependencies** — stdlib only;
* **no-op by default** — ``REPRO_TRACE`` is unset/0 unless the operator
  opts in, and a disabled tracer hands out a shared immutable no-op span,
  so instrumentation never perturbs experiment statistics (tracing code
  touches no RNG and allocates nothing on the disabled path);
* **monotonic clocks** — span timing uses ``time.monotonic`` so wall-clock
  adjustments cannot produce negative durations.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .sinks import InMemorySink, JsonlSink, NullSink, Sink

TRACE_ENV = "REPRO_TRACE"
TRACE_FILE_ENV = "REPRO_TRACE_FILE"


def tracing_enabled() -> bool:
    """True when the environment opts into tracing (default: off)."""
    from ..config import get_settings
    return get_settings().trace_enabled


@dataclass
class Span:
    """One timed operation.  ``start``/``end`` are monotonic seconds."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start, 6),
            "duration_s": round(self.duration_s, 6),
            "attrs": self.attrs,
        }


class _NoopSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates nested spans and streams finished ones to a sink.

    Nesting is tracked with a thread-local stack, so spans opened by
    worker threads parent correctly within that thread while concurrent
    threads never corrupt each other's context.
    """

    def __init__(self, sink: Sink | None = None, enabled: bool = True,
                 clock=time.monotonic):
        self.sink: Sink = sink if sink is not None else (
            InMemorySink() if enabled else NullSink())
        self.enabled = enabled
        self._clock = clock
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open a span; closes (and emits) when the ``with`` block exits."""
        if not self.enabled:
            yield NOOP_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(name=name, span_id=next(self._ids),
                  parent_id=parent.span_id if parent else None,
                  start=self._clock(), attrs=dict(attrs))
        stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            sp.end = self._clock()
            if stack and stack[-1] is sp:
                stack.pop()
            self.sink.emit(sp.as_dict())

    def current_span(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- raw records ---------------------------------------------------------

    def emit(self, record: dict) -> None:
        """Emit a non-span record (e.g. a metrics snapshot) to the sink."""
        if self.enabled:
            self.sink.emit(record)

    def close(self) -> None:
        self.sink.close()


# -- process-wide default tracer ---------------------------------------------

_default_tracer: Tracer | None = None
_tracer_lock = threading.Lock()


def _tracer_from_env() -> Tracer:
    from ..config import get_settings
    settings = get_settings()
    if not settings.trace_enabled:
        return Tracer(NullSink(), enabled=False)
    path = settings.trace_file
    sink: Sink = JsonlSink(path) if path else InMemorySink()
    return Tracer(sink, enabled=True)


def get_tracer() -> Tracer:
    """The process-wide tracer, configured from the environment on first use."""
    global _default_tracer
    if _default_tracer is None:
        with _tracer_lock:
            if _default_tracer is None:
                _default_tracer = _tracer_from_env()
    return _default_tracer


def install_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer (tests, bench harnesses)."""
    global _default_tracer
    with _tracer_lock:
        _default_tracer = tracer
    return tracer


def reset_tracer() -> None:
    """Drop the process-wide tracer so the next use re-reads the environment."""
    global _default_tracer
    with _tracer_lock:
        if _default_tracer is not None:
            _default_tracer.close()
        _default_tracer = None
