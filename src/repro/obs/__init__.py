"""``repro.obs`` — zero-dependency structured observability.

Every case study the paper reports is a *loop* (AutoChip feedback
iterations, the Fig. 5 SLT loop, HLS repair rounds, the Fig. 6 agent
pipeline), and the ROADMAP's production-scale north star cannot be
operated — or its perf PRs trusted — without visibility into where those
loops spend their time.  This package provides:

* :class:`~repro.obs.trace.Tracer` — nested spans with monotonic timing
  and per-span attributes, streamed to a pluggable sink;
* :class:`~repro.obs.metrics.Counter` / :class:`~repro.obs.metrics.Histogram`
  — process-wide named metrics (compile-cache hits, simulator events,
  evaluator timeouts);
* sinks — in-memory (tests/reports), JSONL file (``REPRO_TRACE_FILE``),
  and the no-op default;
* :mod:`repro.obs.report` — renders a run summary table from any of the
  above (imported lazily: ``from repro.obs import report``).

Tracing is **off by default** (``REPRO_TRACE=0``): the disabled tracer
hands out one shared no-op span and emits nothing, so all experiment
statistics stay byte-identical to an uninstrumented build.  Set
``REPRO_TRACE=1`` to trace into memory, plus ``REPRO_TRACE_FILE=path``
to stream a JSONL trace.
"""

from __future__ import annotations

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_metrics, reset_metrics)
from .sinks import InMemorySink, JsonlSink, NullSink, Sink, read_jsonl
from .trace import (NOOP_SPAN, Span, TRACE_ENV, TRACE_FILE_ENV, Tracer,
                    get_tracer, install_tracer, reset_tracer,
                    tracing_enabled)

__all__ = [
    "Counter", "Gauge", "Histogram", "InMemorySink", "JsonlSink",
    "MetricsRegistry", "NOOP_SPAN", "NullSink", "Sink", "Span", "TRACE_ENV",
    "TRACE_FILE_ENV", "Tracer", "enabled", "flush_metrics", "get_metrics",
    "get_tracer", "install_tracer", "read_jsonl", "reset_metrics",
    "reset_tracer", "span", "tracing_enabled",
]


def enabled() -> bool:
    """Whether the process-wide tracer is recording."""
    return get_tracer().enabled


def span(name: str, **attrs: object):
    """Open a span on the process-wide tracer (context manager)."""
    return get_tracer().span(name, **attrs)


def flush_metrics(tracer: Tracer | None = None) -> dict | None:
    """Emit one metrics snapshot record to the tracer's sink.

    The snapshot merges the process-wide registry (simulator/evaluator
    counters and histograms) with the default compile cache's layer
    statistics surfaced as gauges, so a single JSONL trace carries both
    span timings and cache effectiveness.  Returns the record, or ``None``
    when tracing is disabled.
    """
    tracer = tracer or get_tracer()
    if not tracer.enabled:
        return None
    snapshot = get_metrics().snapshot()
    # Lazy imports: avoid an import cycle with repro.hdl / repro.store.
    from ..hdl.compile import cumulative_gauges, get_default_cache
    from ..store import store_gauges
    # The instance gauges cover the current default cache; the cumulative
    # gauges survive cache replacement (bench harnesses install private
    # caches), so traced runs always report nonzero cache activity.  The
    # store gauges describe the disk tier (per-region hits/misses/corrupt
    # blobs) when REPRO_STORE is enabled.
    gauges = {**snapshot.pop("gauges", {}),
              **get_default_cache().metrics_gauges(),
              **cumulative_gauges(),
              **store_gauges()}
    record = {"type": "metrics", "gauges": gauges, **snapshot}
    tracer.emit(record)
    return record
