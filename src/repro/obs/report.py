"""Render a telemetry run summary from spans and metrics records.

Reuses :func:`repro.core.report.format_table` so observability output
matches the repo's experiment tables.  Accepts records from an
:class:`~repro.obs.sinks.InMemorySink`, a JSONL trace file, or any list
of record dicts:

>>> from repro import obs
>>> from repro.obs import report
>>> print(report.render(obs.get_tracer().sink.records))  # doctest: +SKIP

Also usable as a CLI on a ``REPRO_TRACE_FILE`` dump::

    PYTHONPATH=src python -m repro.obs.report trace.jsonl
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.report import format_table
from .sinks import InMemorySink, read_jsonl


def _coerce_records(source) -> list[dict]:
    if isinstance(source, InMemorySink):
        return list(source.records)
    if isinstance(source, str):
        return read_jsonl(source)
    return list(source)


def aggregate_spans(records: Iterable[dict]) -> list[dict]:
    """Aggregate span records by name: count, total/mean/max duration."""
    agg: dict[str, dict] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        entry = agg.setdefault(record["name"], {
            "name": record["name"], "count": 0, "total_s": 0.0, "max_s": 0.0})
        duration = float(record.get("duration_s", 0.0))
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)
    out = sorted(agg.values(), key=lambda e: -e["total_s"])
    for entry in out:
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return out


def span_table(records: Iterable[dict]) -> str:
    rows = [[e["name"], e["count"], f"{e['total_s'] * 1e3:.1f}",
             f"{e['mean_s'] * 1e3:.2f}", f"{e['max_s'] * 1e3:.2f}"]
            for e in aggregate_spans(records)]
    if not rows:
        return "(no spans recorded)"
    return format_table(["span", "count", "total ms", "mean ms", "max ms"],
                        rows)


def metrics_table(records: Iterable[dict]) -> str:
    """Table of the *last* metrics snapshot (cumulative totals)."""
    snapshots = [r for r in records if r.get("type") == "metrics"]
    if not snapshots:
        return "(no metrics recorded)"
    snap = snapshots[-1]
    rows: list[list[object]] = []
    for name, value in snap.get("counters", {}).items():
        rows.append([name, "counter", value])
    for name, h in snap.get("histograms", {}).items():
        rows.append([name, "histogram",
                     f"n={h['count']} mean={h['mean']:.4g} max={h['max']:.4g}"])
    for name, value in snap.get("gauges", {}).items():
        rows.append([name, "gauge", value])
    if not rows:
        return "(metrics snapshot is empty)"
    return format_table(["metric", "kind", "value"], rows)


def engine_table(records: Iterable[dict]) -> str:
    """Per-engine simulation breakdown from ``sim.backend.*`` counters.

    Rows come from the last metrics snapshot: one per backend (event,
    compiled) plus the selector outcomes (fallbacks, ineligible designs).
    Returns ``""`` when no engine counters were recorded.
    """
    snapshots = [r for r in _coerce_records(records)
                 if r.get("type") == "metrics"]
    if not snapshots:
        return ""
    counters = snapshots[-1].get("counters", {})
    backends: dict[str, dict[str, object]] = {}
    selector_rows: list[list[object]] = []
    for name, value in counters.items():
        if not name.startswith("sim.backend."):
            continue
        rest = name[len("sim.backend."):]
        if "." in rest:
            backend, stat = rest.split(".", 1)
            backends.setdefault(backend, {})[stat] = value
        else:
            selector_rows.append([rest, "-", "-", value])
    rows = [[backend, stats.get("runs", 0), stats.get("events", 0), "-"]
            for backend, stats in sorted(backends.items())]
    rows += sorted(selector_rows)
    if not rows:
        return ""
    return format_table(["sim backend", "runs", "events", "count"], rows)


def service_table(records: Iterable[dict]) -> str:
    """Serving-layer breakdown from ``service.*`` metrics.

    One row per broker/router counter (sheds, retries, breaker trips,
    per-shard request counts), plus batch-size histograms and in-flight
    gauges from the last metrics snapshot.  Returns ``""`` when the run
    never touched the service layer.
    """
    snapshots = [r for r in _coerce_records(records)
                 if r.get("type") == "metrics"]
    if not snapshots:
        return ""
    snap = snapshots[-1]
    rows: list[list[object]] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        if name.startswith("service."):
            rows.append([name, "counter", value])
    for name, h in sorted(snap.get("histograms", {}).items()):
        if name.startswith("service."):
            rows.append([name, "histogram",
                         f"n={h['count']} mean={h['mean']:.4g} "
                         f"max={h['max']:.4g}"])
    for name, value in sorted(snap.get("gauges", {}).items()):
        if name.startswith("service."):
            rows.append([name, "gauge", value])
    if not rows:
        return ""
    return format_table(["service metric", "kind", "value"], rows)


def critic_table(records: Iterable[dict]) -> str:
    """Critic verdict breakdown from ``critic.*`` metrics.

    One row per counter: candidates reviewed, rejections, judge calls,
    and per-taxonomy flag counts (``critic.flag.<label>``) from the last
    metrics snapshot.  Returns ``""`` when the run never ran the critic.
    """
    snapshots = [r for r in _coerce_records(records)
                 if r.get("type") == "metrics"]
    if not snapshots:
        return ""
    snap = snapshots[-1]
    rows: list[list[object]] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        if name.startswith("critic."):
            rows.append([name, "counter", value])
    if not rows:
        return ""
    return format_table(["critic metric", "kind", "value"], rows)


def store_table(records: Iterable[dict]) -> str:
    """Artifact-store breakdown from ``store.*`` gauges and counters.

    One row per region/stat gauge (hits, misses, corrupt blobs, writes)
    from the last metrics snapshot, plus any live ``store.*`` counters.
    Returns ``""`` when the run never touched the persistent store.
    """
    snapshots = [r for r in _coerce_records(records)
                 if r.get("type") == "metrics"]
    if not snapshots:
        return ""
    snap = snapshots[-1]
    rows: list[list[object]] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        if name.startswith("store."):
            rows.append([name, "counter", value])
    for name, value in sorted(snap.get("gauges", {}).items()):
        if name.startswith("store."):
            rows.append([name, "gauge", value])
    if not rows:
        return ""
    return format_table(["store metric", "kind", "value"], rows)


def render(source) -> str:
    """Full run summary: span aggregation plus the latest metrics snapshot.

    ``source`` is an :class:`InMemorySink`, a JSONL trace path, or a list
    of record dicts.
    """
    records = _coerce_records(source)
    spans = [r for r in records if r.get("type") == "span"]
    lines = [f"telemetry: {len(spans)} spans, "
             f"{len(records) - len(spans)} other records", ""]
    lines.append(span_table(records))
    lines.append("")
    lines.append(metrics_table(records))
    engines = engine_table(records)
    if engines:
        lines.append("")
        lines.append(engines)
    service = service_table(records)
    if service:
        lines.append("")
        lines.append(service)
    critic = critic_table(records)
    if critic:
        lines.append("")
        lines.append(critic)
    store = store_table(records)
    if store:
        lines.append("")
        lines.append(store)
    return "\n".join(lines)


def span_tree(records: Iterable[dict], max_depth: int = 6) -> str:
    """Indented parent/child view of individual spans (debugging aid)."""
    records = [r for r in _coerce_records(records)
               if r.get("type") == "span"]
    children: dict[object, list[dict]] = {}
    for r in records:
        children.setdefault(r.get("parent_id"), []).append(r)
    lines: list[str] = []

    def walk(parent_id, depth: int) -> None:
        if depth > max_depth:
            return
        for r in sorted(children.get(parent_id, ()),
                        key=lambda x: x.get("start_s", 0.0)):
            attrs = r.get("attrs") or {}
            attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
            lines.append(f"{'  ' * depth}{r['name']} "
                         f"[{float(r.get('duration_s', 0.0)) * 1e3:.2f}ms]"
                         + (f" {attr_text}" if attr_text else ""))
            walk(r["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def main(argv: Sequence[str] | None = None) -> int:
    import json

    from ..cli import build_parser, fail
    parser = build_parser(
        prog="python -m repro.obs.report",
        description="Render span/metrics tables from a JSONL trace dump.")
    parser.add_argument("trace", nargs="?", metavar="trace.jsonl",
                        help="trace file written via REPRO_TRACE_FILE")
    parser.add_argument("--tree", action="store_true",
                        help="also print the indented span tree")
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.trace is None:
        parser.print_usage()
        return 2
    path = args.trace
    try:
        print(render(path))
        if args.tree:
            print()
            print(span_tree(path))
    except BrokenPipeError:  # e.g. piped into head
        return 0
    except OSError as exc:
        return fail(f"error: cannot read trace '{path}': {exc}")
    except json.JSONDecodeError as exc:
        return fail(f"error: '{path}' is not a JSONL trace: {exc}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
