"""``repro.tasks`` — seeded multi-step scenarios for the planner agent.

The agent half of the paper is about decomposing requests like
"synthesize this, report PPA, fix the slowest path" into tool sequences;
this package holds those requests as a benchmarkable suite: each
:class:`TaskSpec` pairs a natural-language goal with a success predicate
over the final tool context, and :func:`run_task_suite` scores pass@k
through the journaled sweep scheduler (``BENCH_agent.json``).
"""

from .suite import (TASKS, TaskScore, TaskSpec, TaskSuiteResult, get_task,
                    run_task, run_task_suite)

__all__ = [
    "TASKS", "TaskScore", "TaskSpec", "TaskSuiteResult", "get_task",
    "run_task", "run_task_suite",
]
