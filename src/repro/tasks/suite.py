"""The multi-step agent task suite: seeded scenarios scored pass@k.

Each :class:`TaskSpec` is a natural-language goal plus a machine-checkable
success predicate over the final :class:`~repro.tools.ToolContext`.  The
scenarios deliberately span sequences the fixed stage pipeline can and
cannot express — ``alu_ppa_tune`` needs PPA-report → targeted-fix →
re-report, a loop ``DEFAULT_PIPELINE`` never takes (it visits synthesis
exactly once); ``gray_crosscheck`` and ``hls_malloc`` live entirely
outside the pipeline's stage set.

``run_task_suite`` fans (task, seed) cells through the
:class:`~repro.exec.SweepScheduler` — journaled and resumable when a
campaign scope is active — and reports pass@k per task into the shape
``benchmarks/bench_agent.py`` serializes as ``BENCH_agent.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..tools import ToolContext

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..llm.model import SimulatedLLM
    from ..service import LLMClient


def _ordered_stages(ctx: ToolContext, *stages: str) -> bool:
    """True when ``stages`` appear in the history in order (gaps allowed)."""
    position = 0
    for record in ctx.state.history:
        if record.stage == stages[position] and record.success:
            position += 1
            if position == len(stages):
                return True
    return False


# -- success predicates (module-level: shared by run-time finish gating
# -- and post-hoc scoring) ----------------------------------------------------

def check_verified(ctx: ToolContext) -> bool:
    return ctx.state.verified


def check_verified_spot_checked(ctx: ToolContext) -> bool:
    return ctx.state.verified \
        and ctx.state.stage_succeeded("fuzz_spot_check")


def check_crosschecked(ctx: ToolContext) -> bool:
    return ctx.state.stage_succeeded("crosscheck")


def check_ppa_tuned(ctx: ToolContext) -> bool:
    """The pipeline-inexpressible sequence: report, targeted fix, re-report.

    ``tune_synthesis`` records an attempt whether or not a script won, so
    the predicate is about the *loop* (measure → fix → re-measure), which
    the fixed pipeline cannot take — it visits synthesis exactly once.
    """
    history = ctx.state.history
    position = 0
    wanted = ("ppa_report", "tune_synthesis", "ppa_report")
    for record in history:
        if record.stage == wanted[position] \
                and (record.success or wanted[position] == "tune_synthesis"):
            position += 1
            if position == len(wanted):
                return True
    return False


def check_hls_repaired(ctx: ToolContext) -> bool:
    return ctx.state.schedule is not None \
        and ctx.state.stage_succeeded("hls_repair")


def check_linted_with_docs(ctx: ToolContext) -> bool:
    linted = any(r.stage == "lint_rtl" for r in ctx.state.history)
    return linted and bool(ctx.scratch.get("doc_citations"))


def check_verified_with_ppa(ctx: ToolContext) -> bool:
    return ctx.state.verified and ctx.state.ppa is not None


@dataclass(frozen=True)
class TaskSpec:
    """One seeded multi-step scenario for the planner agent."""

    task_id: str
    goal: str
    check: Callable[[ToolContext], bool]
    problem_id: str = ""          # repro.bench problem, when RTL-centric
    workload_id: str = ""         # repro.bench HLS repair workload
    description: str = ""
    pipeline_expressible: bool = True


TASKS: tuple[TaskSpec, ...] = (
    TaskSpec(
        task_id="adder_verify",
        goal="design the 8-bit adder and verify it against the testbench",
        check=check_verified, problem_id="c2_adder8",
        description="baseline generate-then-verify loop"),
    TaskSpec(
        task_id="mux_spot_check",
        goal="design and verify the mux, then run a random-vector "
             "sim-vs-synth equivalence spot check",
        check=check_verified_spot_checked, problem_id="c1_mux2",
        pipeline_expressible=False,
        description="verification plus a differential synthesis audit the "
                    "stage pipeline has no stage for"),
    TaskSpec(
        task_id="gray_crosscheck",
        goal="the C model and the RTL disagree: find why and repair the "
             "divergence",
        check=check_crosschecked, problem_id="c2_gray",
        pipeline_expressible=False,
        description="cross-level guided debugging (Section VI)"),
    TaskSpec(
        task_id="alu_ppa_tune",
        goal="synthesize the ALU, report PPA, fix the slowest path, and "
             "re-report the improvement",
        check=check_ppa_tuned, problem_id="c3_alu",
        pipeline_expressible=False,
        description="PPA-report -> targeted-fix -> re-report loop the "
                    "fixed pipeline cannot express"),
    TaskSpec(
        task_id="hls_malloc",
        goal="repair the C kernel so it passes HLS and report the "
             "schedule",
        check=check_hls_repaired, workload_id="malloc_sum",
        pipeline_expressible=False,
        description="HLS incompatibility repair from the software "
                    "modality"),
    TaskSpec(
        task_id="seqdet_lint_doc",
        goal="generate RTL for the sequence detector, lint it, and "
             "consult the documentation to explain any diagnostic",
        check=check_linted_with_docs, problem_id="c4_seqdet",
        pipeline_expressible=False,
        description="lint plus RAG documentation lookup"),
    TaskSpec(
        task_id="counter_verify_synth",
        goal="design, verify and synthesize the 4-bit counter, then "
             "report its area and delay",
        check=check_verified_with_ppa, problem_id="c2_counter",
        description="the full spec-to-QoR path, planned instead of fixed"),
)


def get_task(task_id: str) -> TaskSpec:
    for task in TASKS:
        if task.task_id == task_id:
            return task
    known = ", ".join(t.task_id for t in TASKS)
    raise KeyError(f"unknown task {task_id!r}; known tasks: {known}")


def run_task(task_id: str, model: str = "gpt-4o", seed: int = 0,
             max_steps: int | None = None, budget=None):
    """One planner run of one task; returns the PlannerRunReport."""
    from ..core.planner import PlannerAgent
    task = get_task(task_id)
    problem = None
    c_source = c_top = ""
    if task.problem_id:
        from ..bench.problems import get_problem
        problem = get_problem(task.problem_id)
    if task.workload_id:
        from ..bench.workloads import repair_workload
        workload = repair_workload(task.workload_id)
        c_source, c_top = workload.source, workload.top
    agent = PlannerAgent(model, seed=seed, max_steps=max_steps,
                         goal_check=task.check)
    report = agent.run(task.goal, problem, c_source=c_source, c_top=c_top,
                       budget=budget)
    return report


@dataclass
class TaskScore:
    """pass@k evidence for one task across its seed attempts."""

    task_id: str
    attempts: int
    passes: int
    tool_sequences: list[list[str]] = field(default_factory=list)
    pipeline_expressible: bool = True

    @property
    def pass_at_k(self) -> bool:
        return self.passes > 0

    @property
    def pass_rate(self) -> float:
        return self.passes / self.attempts if self.attempts else 0.0


@dataclass
class TaskSuiteResult:
    model: str
    k: int
    scores: list[TaskScore] = field(default_factory=list)

    @property
    def solved(self) -> int:
        return sum(s.pass_at_k for s in self.scores)

    def summary(self) -> str:
        rows = ", ".join(f"{s.task_id}:"
                         f"{'pass' if s.pass_at_k else 'FAIL'}"
                         f"({s.passes}/{s.attempts})"
                         for s in self.scores)
        return (f"task suite [{self.model}] k={self.k}: "
                f"{self.solved}/{len(self.scores)} solved | {rows}")


def run_task_suite(model: "str | SimulatedLLM | LLMClient" = "gpt-4o",
                   k: int = 3, task_ids: tuple[str, ...] = (), *,
                   seed: int = 0, max_steps: int | None = None, budget=None,
                   jobs: int | str | None = None) -> TaskSuiteResult:
    """pass@k over the suite through the :class:`SweepScheduler`.

    ``seed`` is the base of the attempt grid (attempt ``i`` of a task runs
    at ``seed + i``).  Cells are primitive ``(task_id, model, seed,
    max_steps)`` tuples, so the grid fans over a process pool and
    journals/resumes under an active campaign scope exactly like every
    other flow sweep; client instances (not picklable) run serially.
    """
    from ..exec import SweepScheduler, planner_task_cell
    tasks = [get_task(t) for t in task_ids] if task_ids else list(TASKS)
    cells = [(task.task_id, model, seed + attempt, max_steps)
             for task in tasks for attempt in range(k)]
    if budget is None and isinstance(model, str):
        reports = SweepScheduler(jobs).map(planner_task_cell, cells)
    else:
        # Budget objects and client instances don't cross pools; serial.
        reports = [run_task(t, m, s, max_steps=ms, budget=budget)
                   for t, m, s, ms in cells]
    result = TaskSuiteResult(model=model, k=k)
    for index, task in enumerate(tasks):
        chunk = reports[index * k:(index + 1) * k]
        result.scores.append(TaskScore(
            task_id=task.task_id, attempts=len(chunk),
            passes=sum(bool(r.success) for r in chunk),
            tool_sequences=[r.tool_sequence for r in chunk],
            pipeline_expressible=task.pipeline_expressible))
    return result
