"""Typed tool registry: frozen signatures for every EDA capability.

The ChatEDA shape (PAPERS.md) needs one catalogue of *tools* — compile,
simulate, lint, synthesize, report PPA, repair, look up documentation —
with signatures a planner can reason about and a kernel can validate
against.  :class:`ToolSpec` is that signature: name, argument schema,
result schema, cost hints and a documentation string that doubles as the
tool's RAG passage.  It generalizes :class:`repro.flows.registry.FlowSpec`
from "how to launch a whole flow" down to "one invocable capability".

Purity contract: a tool reads the :class:`ToolContext` (problem, client,
seed, design state) and its validated arguments, and returns a
:class:`ToolOutcome`; any model call inside a tool goes through the
context's resolved :class:`~repro.service.LLMClient`, so a tool's result
is a pure function of ``(context coordinates, args)`` — planned order can
change *which* tools run, never what any individual call returns
(DESIGN.md §13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs import get_metrics, get_tracer


class ToolError(Exception):
    """A tool invocation that could not be validated or executed."""


@dataclass(frozen=True)
class ToolArg:
    """One argument in a tool's typed signature."""

    name: str
    type: type
    doc: str = ""
    required: bool = False
    default: Any = None

    def check(self, value: Any) -> str | None:
        """Type-check one supplied value; returns an error string or None."""
        if value is None:
            return f"argument '{self.name}' is None" if self.required else None
        if self.type is float and isinstance(value, int):
            return None  # ints are acceptable floats everywhere in the repo
        if not isinstance(value, self.type):
            return (f"argument '{self.name}' expects "
                    f"{self.type.__name__}, got {type(value).__name__}")
        return None


@dataclass(frozen=True)
class ToolCost:
    """Static cost hints the planner weighs before invoking a tool.

    ``model_calls`` marks tools that spend LLM tokens; ``est_evals`` is a
    rough count of EDA-tool evaluations one invocation performs.  Hints
    are advisory — the :class:`~repro.engine.Budget` enforces the real
    limits from the run record's counters.
    """

    model_calls: bool = False
    est_evals: int = 1
    est_tokens: int = 0


@dataclass
class ToolContext:
    """Everything a tool may read: the run's coordinates and design state.

    Mutable by design — tools enrich ``state`` (the same multi-modal
    :class:`~repro.core.state.DesignState` the stage pipeline used) and
    stash planner-visible facts in ``scratch``.
    """

    llm: Any                      # resolved LLMClient
    seed: int = 0
    problem: Any = None           # repro.bench.problems.Problem | None
    state: Any = None             # repro.core.state.DesignState
    c_source: str = ""            # HLS modality input (repair workloads)
    c_top: str = ""
    scratch: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ToolOutcome:
    """What one tool invocation reports back to the planner.

    ``observation`` is the text folded into the plan/act/observe
    transcript; ``artifacts`` carries structured results (plain picklable
    values) the task checkers and the planner scratchpad read.
    """

    ok: bool
    observation: str
    artifacts: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ToolSpec:
    """One registered tool: typed signature plus the implementation."""

    name: str
    summary: str
    doc: str                      # retrieval passage (RAG grounding)
    fn: Callable[[ToolContext, dict], ToolOutcome]
    args: tuple[ToolArg, ...] = ()
    returns: tuple[str, ...] = ()            # artifact keys the tool emits
    requires: tuple[str, ...] = ()           # state modalities needed
    cost: ToolCost = ToolCost()
    accepts_budget: bool = False  # threads ctx budget into a nested kernel

    def validate(self, args: dict) -> list[str]:
        """All schema violations for one proposed invocation (empty = ok)."""
        errors = []
        known = {a.name: a for a in self.args}
        for name in sorted(args):
            if name not in known:
                errors.append(f"unknown argument '{name}' "
                              f"(accepts: {sorted(known) or 'none'})")
        for arg in self.args:
            if arg.required and name_missing(args, arg.name):
                errors.append(f"missing required argument '{arg.name}'")
            elif arg.name in args:
                problem = arg.check(args[arg.name])
                if problem:
                    errors.append(problem)
        return errors

    def missing_state(self, ctx: ToolContext) -> list[str]:
        """Which required modalities the context does not have yet."""
        present = set(ctx.state.modalities_present()) if ctx.state else set()
        if ctx.c_source:
            present.add("software")
        return [m for m in self.requires if m not in present]

    def bound_args(self, args: dict) -> dict:
        """The supplied args over the schema defaults."""
        bound = {a.name: a.default for a in self.args if a.default is not None}
        bound.update(args)
        return bound

    def invoke(self, ctx: ToolContext, args: dict | None = None) -> ToolOutcome:
        """Validate and run the tool; schema violations raise ToolError."""
        args = dict(args or {})
        errors = self.validate(args)
        if errors:
            raise ToolError(f"{self.name}: " + "; ".join(errors))
        missing = self.missing_state(ctx)
        if missing:
            raise ToolError(
                f"{self.name}: requires {', '.join(missing)} — produce "
                f"that modality first (state has: "
                f"{', '.join(ctx.state.modalities_present()) if ctx.state else 'nothing'})")
        metrics = get_metrics()
        with get_tracer().span(f"tool.{self.name}") as sp:
            outcome = self.fn(ctx, self.bound_args(args))
            sp.set(ok=outcome.ok)
        metrics.counter("tool.calls").add()
        metrics.counter(f"tool.{self.name}.calls").add()
        if not outcome.ok:
            metrics.counter("tool.failures").add()
        return outcome


def name_missing(args: dict, name: str) -> bool:
    return name not in args or args[name] is None


_REGISTRY: dict[str, ToolSpec] = {}


def register_tool(spec: ToolSpec) -> ToolSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate tool '{spec.name}'")
    _REGISTRY[spec.name] = spec
    return spec


def get_tool(name: str) -> ToolSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown tool {name!r}; known tools: {known}") from None


def list_tools() -> list[ToolSpec]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
