"""``repro.tools`` — the typed tool registry behind the planner agent.

The agent half of the paper (and ChatEDA in PAPERS.md) frames EDA
automation as an LLM planner invoking *tools*: compile, simulate, lint,
synthesize, report PPA, repair, consult documentation.  This package is
that tool surface for the reproduction:

* :mod:`repro.tools.spec` — :class:`ToolSpec`: frozen typed signatures
  (name, arg schema, result schema, cost hints) generalizing
  :class:`repro.flows.registry.FlowSpec` down to single capabilities,
  plus the registry and the invoke seam (validation, spans, counters);
* :mod:`repro.tools.catalog` — the built-in tools, each wrapping an
  existing subsystem (hdl, synth, hls, critic, flows, llm.docqa);
* :mod:`repro.tools.grounding` — the RAG index over tool documentation
  that grounds the planner's next-action shortlist with citations.

Importing the package registers the catalogue.
"""

from __future__ import annotations

from . import catalog as _catalog  # noqa: F401  (registers the built-ins)
from .grounding import GroundedTool, ToolIndex, build_tool_index
from .spec import (ToolArg, ToolContext, ToolCost, ToolError, ToolOutcome,
                   ToolSpec, get_tool, list_tools, register_tool)

__all__ = [
    "GroundedTool", "ToolArg", "ToolContext", "ToolCost", "ToolError",
    "ToolIndex", "ToolOutcome", "ToolSpec", "build_tool_index", "get_tool",
    "list_tools", "register_tool",
]
