"""RAG grounding for the planner: retrieve tool docs before choosing.

Every registered :class:`~repro.tools.spec.ToolSpec` carries a ``doc``
passage; this module indexes those passages (plus the problem spec) in
the TF-IDF :class:`~repro.llm.rag.VectorIndex` so the planner's shortlist
is grounded in retrieval — each planned step cites the tool documents it
retrieved, the same discipline the HLS repair loop already applies to its
correction templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..llm.rag import Document, VectorIndex
from ..obs import get_metrics
from .spec import ToolSpec, list_tools


@dataclass(frozen=True)
class GroundedTool:
    """One retrieval-ranked tool candidate with its citations."""

    tool: str
    score: float
    citations: tuple[str, ...] = ()


@dataclass
class ToolIndex:
    """Retrieval index over tool documentation and the problem spec.

    ``rank(query)`` returns every registered tool ordered by retrieval
    relevance to the query; spec documents never rank (they only ground —
    a retrieved ``spec:*`` citation tells the reader *why* the plan
    matched, but the planner can only act through tools).
    """

    index: VectorIndex = field(default_factory=VectorIndex)
    tools: dict[str, ToolSpec] = field(default_factory=dict)

    def add_spec_document(self, doc_id: str, text: str) -> None:
        """Ground planning in the problem's own text (spec modality)."""
        self.index.add(Document(f"spec:{doc_id}", text))

    def rank(self, query: str, top_k: int = 0) -> list[GroundedTool]:
        """Tools by descending retrieval relevance; unmatched tools last.

        Ties (including score 0.0) break on tool name, so ranking is a
        pure function of (index contents, query).
        """
        get_metrics().counter("tools.rag_queries").add()
        hits = self.index.query(query, top_k=len(self.index) or 1)
        scores: dict[str, float] = {}
        spec_hits: list[str] = []
        for hit in hits:
            if hit.document.doc_id.startswith("spec:"):
                spec_hits.append(hit.document.doc_id)
            elif hit.document.doc_id.startswith("tool:"):
                scores[hit.document.doc_id[len("tool:"):]] = hit.score
        citations = tuple(spec_hits[:2])
        ranked = [GroundedTool(name, scores.get(name, 0.0),
                               citations=((f"tool:{name}",) + citations
                                          if name in scores else citations))
                  for name in sorted(self.tools)]
        ranked.sort(key=lambda g: (-g.score, g.tool))
        return ranked[:top_k] if top_k else ranked

    def passage(self, tool: str) -> str:
        return self.tools[tool].doc


def build_tool_index(specs: list[ToolSpec] | None = None,
                     spec_text: str = "") -> ToolIndex:
    """Index every registered tool's doc passage (and the problem spec)."""
    ti = ToolIndex()
    for spec in (specs if specs is not None else list_tools()):
        ti.tools[spec.name] = spec
        ti.index.add(Document(f"tool:{spec.name}",
                              f"{spec.name} {spec.summary} {spec.doc}"))
    if spec_text:
        ti.add_spec_document("problem", spec_text)
    return ti
