"""The built-in tool catalogue: every repo capability behind one signature.

Each tool wraps an existing subsystem — nothing here reimplements EDA
logic.  The ``doc`` strings double as RAG passages: the planner retrieves
them from the tool index (:mod:`repro.tools.grounding`) to ground its next
action, so they are written the way a tool vendor documents a command:
what it does, what it needs, what it reports.
"""

from __future__ import annotations

from .spec import (ToolArg, ToolContext, ToolCost, ToolOutcome, ToolSpec,
                   register_tool)


def _record(ctx: ToolContext, tool: str, ok: bool, detail: str,
            **artifacts) -> None:
    """Append to the shared design-state history (the provenance ledger the
    stage pipeline also writes, so reports render either way)."""
    if ctx.state is not None:
        ctx.state.record(tool, ok, detail, **artifacts)


def _top(ctx: ToolContext) -> str:
    """The design's top module name, from state or the bound problem."""
    if ctx.state is not None and ctx.state.module_name:
        return ctx.state.module_name
    return ctx.problem.module_name if ctx.problem is not None else ""


def _no_problem(ctx: ToolContext, tool: str) -> ToolOutcome | None:
    """Benchmark-bound tools fail cleanly when no problem is attached."""
    if ctx.problem is not None:
        return None
    detail = "no benchmark problem bound to this run"
    _record(ctx, tool, False, detail)
    return ToolOutcome(False, detail)


# -- generation ---------------------------------------------------------------

def _generate_rtl(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..flows.autochip import AutoChip, AutoChipConfig
    missing = _no_problem(ctx, "generate_rtl")
    if missing is not None:
        return missing
    feedback = args.get("feedback") or ""
    chip = AutoChip(ctx.llm, AutoChipConfig(k=int(args["k"]),
                                            depth=int(args["depth"])))
    outcome = chip.run(ctx.problem, initial_feedback=feedback)
    ctx.state.rtl_source = outcome.best_source
    ctx.state.module_name = ctx.problem.module_name
    _record(ctx, "generate_rtl", outcome.success, outcome.summary(),
            score=outcome.best_score, generations=outcome.generations)
    return ToolOutcome(
        outcome.success,
        f"generated RTL for '{ctx.problem.module_name}': {outcome.summary()}",
        {"score": outcome.best_score, "generations": outcome.generations,
         "evaluations": outcome.tool_evaluations})


register_tool(ToolSpec(
    name="generate_rtl",
    summary="LLM RTL generation with tool-feedback rounds (AutoChip)",
    doc="generate_rtl: produce Verilog RTL for the problem specification "
        "using candidate sampling and tool feedback iterations. Use when "
        "no RTL exists yet or the current RTL failed verification; pass "
        "accumulated lint or critic feedback to condition regeneration. "
        "Reports the best candidate score and writes the RTL modality.",
    fn=_generate_rtl,
    args=(ToolArg("k", int, "candidates per round", default=3),
          ToolArg("depth", int, "feedback iterations", default=3),
          ToolArg("feedback", str, "prior findings to condition on",
                  default="")),
    returns=("score", "generations", "evaluations"),
    requires=("spec",),
    cost=ToolCost(model_calls=True, est_evals=9, est_tokens=2000),
))


# -- static checks ------------------------------------------------------------

def _compile_rtl(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..hdl import elaborate, parse
    try:
        source = parse(ctx.state.rtl_source)
        elaborate(source, _top(ctx))
    except Exception as exc:
        _record(ctx, "compile_rtl", False, f"compile failed: {exc}")
        return ToolOutcome(False, f"compile failed: {exc}",
                           {"error": str(exc)})
    modules = sorted(source.modules)
    _record(ctx, "compile_rtl", True, f"compiled modules: {modules}")
    return ToolOutcome(True, f"compile clean; modules: {', '.join(modules)}",
                       {"modules": modules})


register_tool(ToolSpec(
    name="compile_rtl",
    summary="parse + elaborate the current RTL (syntax/structure check)",
    doc="compile_rtl: run the HDL front end — parse and elaborate the "
        "current RTL design. Cheap first check after generation; reports "
        "syntax or elaboration errors with messages suitable as repair "
        "feedback. Requires the rtl modality.",
    fn=_compile_rtl,
    returns=("modules", "error"),
    requires=("rtl",),
    cost=ToolCost(est_evals=1),
))


def _lint_rtl(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..hdl import lint_source, parse
    try:
        source = parse(ctx.state.rtl_source)
    except Exception as exc:
        _record(ctx, "lint_rtl", False, f"parse failed: {exc}")
        return ToolOutcome(False, f"lint aborted, parse failed: {exc}",
                           {"error": str(exc)})
    warnings = [str(w) for w in lint_source(source)]
    ctx.state.lint_warnings = warnings
    blocking = [w for w in warnings
                if "LINT-UNDECL" in w or "LINT-MULTIDRIVE" in w]
    detail = (f"{len(warnings)} warnings ({len(blocking)} blocking)")
    _record(ctx, "lint_rtl", not blocking, detail)
    shown = "; ".join(warnings[:4]) or "clean"
    return ToolOutcome(not blocking, f"lint: {detail}: {shown}",
                       {"warnings": warnings, "blocking": len(blocking)})


register_tool(ToolSpec(
    name="lint_rtl",
    summary="lint the current RTL; warnings become repair feedback",
    doc="lint_rtl: static analysis of the current RTL. Reports undeclared "
        "identifiers, multiple drivers, blocking/non-blocking misuse, "
        "inferred latches and width mismatches. Blocking findings fail "
        "the check; all warnings are stored as feedback for regeneration. "
        "Use doc_lookup to explain an unfamiliar lint code.",
    fn=_lint_rtl,
    returns=("warnings", "blocking"),
    requires=("rtl",),
    cost=ToolCost(est_evals=1),
))


def _critic_review(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..config import get_settings
    from ..critic import Critic, resolve_judge
    judge = resolve_judge(ctx.seed) \
        if get_settings().critic_judge_enabled else None
    critic = Critic(flow="planner", seed=ctx.seed, judge=judge)
    verdict = critic.review([ctx.state.rtl_source],
                            ctx.state.module_name or None)[0]
    if verdict.ok:
        _record(ctx, "critic_review", True, "critic accepted the design")
        return ToolOutcome(True, "critic review: accepted",
                           {"verdict_ok": True})
    failures = [str(f) for f in verdict.failures]
    ctx.state.critic_verdicts.extend(failures)
    _record(ctx, "critic_review", False,
            f"critic rejected: {'; '.join(failures)}")
    return ToolOutcome(False, "critic review REJECTED: "
                       + "; ".join(failures),
                       {"verdict_ok": False, "failures": failures,
                        "stage": verdict.stage})


register_tool(ToolSpec(
    name="critic_review",
    summary="two-stage critic verdict on the current RTL",
    doc="critic_review: run the rule validators (lint, width, X-prop, "
        "vacuity, trojan mux, dead reset) and, when enabled, the seeded "
        "LLM judge over the current RTL. A rejection verdict names the "
        "failure taxonomy labels and is folded into the observation "
        "transcript as repair context. Good before sign-off.",
    fn=_critic_review,
    returns=("verdict_ok", "failures"),
    requires=("rtl",),
    cost=ToolCost(est_evals=1),
))


# -- verification -------------------------------------------------------------

def _run_testbench(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..bench.harness import evaluate_candidate
    missing = _no_problem(ctx, "run_testbench")
    if missing is not None:
        return missing
    tb = evaluate_candidate(ctx.problem, ctx.state.rtl_source)
    ctx.state.verified = tb.passed
    detail = f"testbench {tb.pass_count}/{tb.total_checks} checks"
    ctx.state.verification_detail = detail
    _record(ctx, "run_testbench", tb.passed, detail)
    feedback = tb.feedback() if hasattr(tb, "feedback") else ""
    return ToolOutcome(tb.passed, f"{detail}: "
                       f"{'PASS' if tb.passed else 'FAIL'}"
                       + (f" — {feedback[:160]}" if not tb.passed else ""),
                       {"passed": tb.passed, "pass_count": tb.pass_count,
                        "total_checks": tb.total_checks})


register_tool(ToolSpec(
    name="run_testbench",
    summary="golden-testbench sign-off for the current RTL",
    doc="run_testbench: simulate the current RTL against the problem's "
        "golden quality testbench and report PASS/FAIL check counts. "
        "This is the verification sign-off; failing output is localized "
        "feedback for regeneration. Requires the rtl modality.",
    fn=_run_testbench,
    returns=("passed", "pass_count", "total_checks"),
    requires=("rtl",),
    cost=ToolCost(est_evals=1),
))


def _crosscheck(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..flows.crosscheck import guided_debug, supports_crosscheck
    missing = _no_problem(ctx, "crosscheck")
    if missing is not None:
        return missing
    if not supports_crosscheck(ctx.problem):
        _record(ctx, "crosscheck", False,
                "no behavioural C model for this problem")
        return ToolOutcome(False, "crosscheck unavailable: no behavioural "
                           "C model exists for this problem",
                           {"supported": False})
    result = guided_debug(ctx.problem, ctx.llm, use_crosscheck=True,
                          max_iterations=int(args["max_iterations"]),
                          seed=ctx.seed)
    ctx.state.verified = ctx.state.verified or result.success
    _record(ctx, "crosscheck", result.success, result.summary())
    return ToolOutcome(result.success, f"cross-level debug: "
                       f"{result.summary()}",
                       {"supported": True, "success": result.success,
                        "iterations": result.iterations,
                        "model_faithful": result.model_faithful})


register_tool(ToolSpec(
    name="crosscheck",
    summary="find why the C model and the RTL disagree (Section VI)",
    doc="crosscheck: high-level guided debugging — drive the behavioural "
        "C model and the RTL with shared stimulus, localize the diverging "
        "input vector (expected vs actual), and repair the RTL against "
        "that localized feedback. The tool to use when the C model and "
        "RTL disagree or plain testbench feedback is too vague.",
    fn=_crosscheck,
    args=(ToolArg("max_iterations", int, "repair iterations", default=4),),
    returns=("success", "iterations", "model_faithful"),
    requires=("spec",),
    cost=ToolCost(model_calls=True, est_evals=6, est_tokens=1500),
))


def _fuzz_spot_check(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..hdl import parse
    from ..synth import check_against_simulation, synthesize_module
    from ..synth.flatten import flatten
    top = _top(ctx)
    try:
        source = parse(ctx.state.rtl_source)
        flat = flatten(source, top)
        synth = synthesize_module(flat)
    except Exception as exc:
        _record(ctx, "fuzz_spot_check", False, f"synthesis failed: {exc}")
        return ToolOutcome(False, f"spot check aborted: {exc}",
                           {"error": str(exc)})
    if synth.is_sequential:
        _record(ctx, "fuzz_spot_check", True,
                "sequential design: combinational CEC skipped")
        return ToolOutcome(True, "spot check skipped: sequential design "
                           "(combinational sim-vs-synth CEC only)",
                           {"skipped": True})
    vectors = int(args["vectors"])
    cec = check_against_simulation(synth, ctx.state.rtl_source, flat,
                                   vectors=vectors, seed=ctx.seed)
    ok = cec.equivalent
    detail = (f"{vectors} random vectors: "
              + ("equivalent" if ok else
                 f"MISMATCH on {', '.join(cec.mismatched_outputs)}"))
    _record(ctx, "fuzz_spot_check", ok, detail)
    return ToolOutcome(ok, f"sim-vs-synth spot check: {detail}",
                       {"equivalent": cec.equivalent, "vectors": vectors,
                        "mismatched_outputs": list(cec.mismatched_outputs)})


register_tool(ToolSpec(
    name="fuzz_spot_check",
    summary="random-vector sim-vs-synth equivalence spot check",
    doc="fuzz_spot_check: differential audit of the current RTL — "
        "synthesize it to an AIG and compare against event-driven "
        "simulation on random vectors (the fuzzing campaign's sim/synth "
        "oracle in miniature). Catches divergence and trojan-style "
        "behaviour the testbench does not exercise. Combinational only; "
        "sequential designs skip with a note.",
    fn=_fuzz_spot_check,
    args=(ToolArg("vectors", int, "random vectors to drive", default=64),),
    returns=("equivalent", "vectors"),
    requires=("rtl",),
    cost=ToolCost(est_evals=2),
))


# -- synthesis / QoR ----------------------------------------------------------

def _synthesize(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..synth import optimize, synthesize_source
    from ..synth.optimize import DEFAULT_SCRIPT
    try:
        synthesized = synthesize_source(ctx.state.rtl_source,
                                        _top(ctx))
    except Exception as exc:
        _record(ctx, "synthesize", False, f"synthesis failed: {exc}")
        return ToolOutcome(False, f"synthesis failed: {exc}",
                           {"error": str(exc)})
    optimized = optimize(synthesized.aig, DEFAULT_SCRIPT)
    synthesized.aig = optimized.aig
    ctx.state.netlist = synthesized
    ctx.state.aig_stats = optimized.aig.stats()
    _record(ctx, "synthesize", True, f"netlist: {ctx.state.aig_stats}")
    return ToolOutcome(True, f"synthesized netlist: {ctx.state.aig_stats}",
                       {"aig_stats": dict(ctx.state.aig_stats)})


register_tool(ToolSpec(
    name="synthesize",
    summary="logic synthesis of the current RTL to an optimized AIG",
    doc="synthesize: elaborate and synthesize the current RTL into an "
        "and-inverter-graph netlist, then run the default optimization "
        "script. Produces the netlist modality ppa_report needs. Re-run "
        "after any RTL change to refresh the netlist.",
    fn=_synthesize,
    returns=("aig_stats",),
    requires=("rtl",),
    cost=ToolCost(est_evals=1),
))


def _ppa_report(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..synth import estimate_ppa
    report = estimate_ppa(ctx.state.netlist)
    ctx.state.ppa = report
    adp = report.area_um2 * report.delay_ns
    history = ctx.scratch.setdefault("ppa_history", [])
    history.append(adp)
    _record(ctx, "ppa_report", True, report.summary(), adp=adp)
    slowest = (f"critical path {report.logic_depth} levels, "
               f"delay {report.delay_ns:.2f}ns")
    return ToolOutcome(True, f"PPA: {report.summary()}; {slowest}; "
                       f"area-delay product {adp:.1f}",
                       {"area_um2": report.area_um2,
                        "delay_ns": report.delay_ns,
                        "power_uw": report.power_uw,
                        "adp": adp, "logic_depth": report.logic_depth})


register_tool(ToolSpec(
    name="ppa_report",
    summary="PPA estimation of the current netlist (area/delay/power)",
    doc="ppa_report: estimate power, performance and area of the current "
        "synthesized netlist, including the critical-path depth and delay "
        "(the slowest path). Run after synthesize; run again after "
        "tune_synthesis to measure the improvement. Reports the "
        "area-delay product used to compare netlists.",
    fn=_ppa_report,
    returns=("area_um2", "delay_ns", "power_uw", "adp", "logic_depth"),
    requires=("netlist",),
    cost=ToolCost(est_evals=1),
))


_TUNE_SCRIPTS: tuple[tuple[str, ...], ...] = (
    ("rewrite", "sweep"),
    ("balance", "rewrite", "balance", "sweep"),
    ("rewrite", "balance", "rewrite", "sweep"),
)


def _tune_synthesis(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..synth import estimate_ppa, optimize, synthesize_source
    baseline = ctx.state.ppa or estimate_ppa(ctx.state.netlist)
    best_report, best_netlist, chosen = baseline, ctx.state.netlist, None
    for script in _TUNE_SCRIPTS:
        try:
            candidate = synthesize_source(ctx.state.rtl_source,
                                          _top(ctx))
            candidate.aig = optimize(candidate.aig, script).aig
            report = estimate_ppa(candidate)
        except Exception:
            continue
        if report.area_um2 * report.delay_ns \
                < best_report.area_um2 * best_report.delay_ns:
            best_report, best_netlist, chosen = report, candidate, script
    improved = chosen is not None
    if improved:
        ctx.state.netlist = best_netlist
        ctx.state.aig_stats = best_netlist.aig.stats()
        ctx.state.ppa = best_report
    before = baseline.area_um2 * baseline.delay_ns
    after = best_report.area_um2 * best_report.delay_ns
    detail = (f"script {'+'.join(chosen) if chosen else 'unchanged'}: "
              f"area-delay {before:.1f} -> {after:.1f}")
    _record(ctx, "tune_synthesis", improved, detail)
    ctx.scratch["tuned"] = True   # attempt made; "improved" says if it won
    if improved:
        ctx.scratch.setdefault("ppa_history", []).append(after)
    return ToolOutcome(improved, f"targeted synthesis fix: {detail}",
                       {"improved": improved, "adp_before": before,
                        "adp_after": after,
                        "script": "+".join(chosen) if chosen else ""})


register_tool(ToolSpec(
    name="tune_synthesis",
    summary="targeted re-synthesis: try scripts, keep the best area-delay",
    doc="tune_synthesis: the targeted fix for a slow or large netlist — "
        "re-synthesize the RTL under alternative optimization scripts "
        "(rewrite, balance, sweep orderings) and keep the configuration "
        "with the best area-delay product. Use after ppa_report flags the "
        "slowest path; follow with ppa_report to confirm the improvement.",
    fn=_tune_synthesis,
    returns=("improved", "adp_before", "adp_after", "script"),
    requires=("rtl", "netlist"),
    cost=ToolCost(est_evals=4),
))


# -- HLS ----------------------------------------------------------------------

def _hls_repair(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..hls.repair import HlsRepairEngine
    engine = HlsRepairEngine(ctx.llm, use_rag=True, seed=ctx.seed)
    result = engine.repair(ctx.c_source, ctx.c_top)
    ctx.c_source = result.repaired_source
    ctx.state.c_source = result.repaired_source
    ctx.state.schedule = result.schedule_after
    ok = result.success
    detail = (f"{len(result.issues_found)} issues found, "
              f"{len(result.issues_fixed)} fixed, "
              f"{len(result.issues_remaining)} remaining")
    _record(ctx, "hls_repair", ok, detail)
    sched = ""
    if result.schedule_after is not None:
        sched = (f"; schedule {result.schedule_after.latency_cycles} cycles")
    return ToolOutcome(ok, f"HLS repair "
                       f"{'succeeded' if ok else 'failed'}: {detail}{sched}",
                       {"success": ok,
                        "issues_found": len(result.issues_found),
                        "issues_fixed": len(result.issues_fixed),
                        "issues_remaining": len(result.issues_remaining),
                        "latency_cycles":
                            result.schedule_after.latency_cycles
                            if result.schedule_after else 0})


register_tool(ToolSpec(
    name="hls_repair",
    summary="RAG-grounded HLS incompatibility repair (Fig. 2)",
    doc="hls_repair: run the four-stage HLS repair framework on the C "
        "kernel — detect incompatibilities (malloc, recursion, unbounded "
        "loops, pointer parameters), retrieve correction templates, "
        "verify equivalence, and optimize pragmas. Use when a C kernel "
        "fails high-level synthesis; reports the repaired schedule "
        "latency. Requires the software (C source) modality.",
    fn=_hls_repair,
    returns=("success", "issues_found", "issues_fixed", "latency_cycles"),
    requires=("software",),
    cost=ToolCost(model_calls=True, est_evals=8, est_tokens=1200),
))


# -- documentation ------------------------------------------------------------

def _doc_lookup(ctx: ToolContext, args: dict) -> ToolOutcome:
    from ..llm.docqa import DocQa
    question = args["question"]
    answer = DocQa().ask(question, top_k=3)
    sources = [r.document.doc_id for r in answer.sources]
    ok = bool(answer.sources)
    ctx.scratch.setdefault("doc_citations", []).extend(sources)
    _record(ctx, "doc_lookup", ok,
            f"{question!r} -> {sources[0] if sources else 'no match'}")
    return ToolOutcome(ok, f"documentation [{', '.join(sources) or 'none'}]: "
                       f"{answer.text}",
                       {"sources": sources, "answer": answer.text})


register_tool(ToolSpec(
    name="doc_lookup",
    summary="retrieval-augmented QA over the EDA tool documentation",
    doc="doc_lookup: ask the tool-documentation QA index a question — "
        "lint diagnostics (LINT-LATCH, LINT-MULTIDRIVE), HLS error codes, "
        "pragma semantics, simulator limits. Returns the best passage "
        "with cited document ids. Use to understand an unfamiliar "
        "diagnostic before attempting a fix.",
    fn=_doc_lookup,
    args=(ToolArg("question", str, "the documentation question",
                  required=True),),
    returns=("sources", "answer"),
    cost=ToolCost(est_evals=0),
))


# -- terminal -----------------------------------------------------------------

def _finish(ctx: ToolContext, args: dict) -> ToolOutcome:
    note = args.get("note") or "goal satisfied"
    ctx.scratch["finished"] = True
    _record(ctx, "finish", True, note)
    return ToolOutcome(True, f"finish: {note}", {"note": note})


register_tool(ToolSpec(
    name="finish",
    summary="declare the goal satisfied and stop the plan loop",
    doc="finish: terminal action — declare the request satisfied and end "
        "the plan/act/observe loop. Emit only after the goal's required "
        "evidence exists (verification passed, report produced, repair "
        "verified).",
    fn=_finish,
    args=(ToolArg("note", str, "closing note", default="goal satisfied"),),
    returns=("note",),
    cost=ToolCost(est_evals=0),
))
