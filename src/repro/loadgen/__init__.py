"""``repro.loadgen`` — seeded traffic replay against the sharded service.

Synthesizes sessions for thousands of simulated concurrent users (mixed
flow kinds, heavy-tailed deterministic arrival times), replays them
against a :class:`~repro.service.router.ShardedRouter`, and reports
p50/p95/p99 latency, shed rate, breaker trips and stranded futures.  See
``benchmarks/bench_service.py`` for the measured shard-scaling curve and
``python -m repro.loadgen --help`` for the CLI.
"""

from .harness import LoadReport, run_load
from .workload import (DEFAULT_MODELS, FLOW_KINDS, Arrival, LoadBackend,
                       LoadConfig, build_schedule)

__all__ = [
    "Arrival", "DEFAULT_MODELS", "FLOW_KINDS", "LoadBackend", "LoadConfig",
    "LoadReport", "build_schedule", "run_load",
]
