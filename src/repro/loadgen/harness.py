"""The load harness: replay a seeded schedule against a sharded router.

One dispatcher thread walks the time-sorted schedule from
:func:`~repro.loadgen.workload.build_schedule`, sleeps until each arrival
(scaled by ``time_scale``), and fires the request at the router
**without blocking** — completion is observed through future callbacks, so
thousands of simulated users cost one thread plus the broker's own lane
workers.  Every submission is accounted for exactly once:

``ok``                completed with a result
``shed``              rejected at submit (lane queue full)
``tenant_shed``       rejected at submit (tenant over its share)
``breaker_rejected``  rejected at submit (lane breaker open)
``timeout``           future failed with :class:`RequestTimeout`
``failed``            future failed with a backend/hard error
``stranded``          future still pending after drain + shutdown —
                      **must be zero**; a nonzero count is the
                      shutdown-races-submit bug the broker fixes guard

Latency is measured from the request's *intended* arrival time to its
completion, so dispatcher lag under overload shows up in the percentiles
exactly as a user would feel it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..obs import get_metrics
from ..service.broker import (BrokerConfig, CircuitOpenError, RequestTimeout,
                              ServiceError)
from ..service.router import LoadShedError, ShardedRouter, TenantShedError
from .workload import Arrival, LoadBackend, LoadConfig, build_schedule, \
    method_for

_DELTA_COUNTERS = ("service.breaker_trips", "service.retries",
                   "service.failed_on_shutdown")


@dataclass
class LoadReport:
    """Outcome of one campaign replay at one shard count."""

    users: int
    shards: int
    requests: int
    ok: int = 0
    shed: int = 0
    tenant_shed: int = 0
    breaker_rejected: int = 0
    timeout: int = 0
    failed: int = 0
    stranded: int = 0
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    shed_rate: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    breaker_trips: int = 0
    retries: int = 0
    failed_on_shutdown: int = 0
    per_tenant_ok: dict = field(default_factory=dict)

    def accounted(self) -> int:
        return (self.ok + self.shed + self.tenant_shed
                + self.breaker_rejected + self.timeout + self.failed
                + self.stranded)

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in (
            "users", "shards", "requests", "ok", "shed", "tenant_shed",
            "breaker_rejected", "timeout", "failed", "stranded", "wall_s",
            "throughput_rps", "shed_rate", "p50_ms", "p95_ms", "p99_ms",
            "max_ms", "breaker_trips", "retries", "failed_on_shutdown",
            "per_tenant_ok")}


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_load(cfg: LoadConfig, *, shards: int = 1,
             broker_config: BrokerConfig | None = None,
             router: ShardedRouter | None = None) -> LoadReport:
    """Replay ``cfg``'s schedule against ``shards`` broker shards.

    Builds its own router unless one is supplied; either way the router is
    shut down at the end of the replay (shutdown is idempotent), because
    the zero-stranded-futures check is only meaningful after drain.  The
    schedule itself is deterministic; the measured latencies are the
    experiment.
    """
    schedule = build_schedule(cfg)
    backends = {}
    for arrival in schedule:
        if arrival.model not in backends:
            backends[arrival.model] = LoadBackend(arrival.model, cfg)
    if router is None:
        router = ShardedRouter(shards=shards,
                               config=broker_config or BrokerConfig())
    report = LoadReport(users=cfg.users, shards=router.num_shards,
                        requests=len(schedule))
    metrics = get_metrics()
    before = metrics.snapshot()["counters"]

    lock = threading.Lock()
    latencies: list[float] = []
    futures: list = []

    def finish(arrival: Arrival, target_wall: float):
        def _cb(future):
            done_wall = time.perf_counter()
            exc = future.exception()
            with lock:
                if exc is None:
                    report.ok += 1
                    latencies.append((done_wall - target_wall) * 1e3)
                    per = report.per_tenant_ok
                    per[arrival.tenant] = per.get(arrival.tenant, 0) + 1
                elif isinstance(exc, RequestTimeout):
                    report.timeout += 1
                else:
                    report.failed += 1
        return _cb

    t0 = time.perf_counter()
    scale = max(1e-9, cfg.time_scale)
    for arrival in schedule:
        target = t0 + arrival.t / scale
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        try:
            future = router.submit(
                backends[arrival.model], method_for(arrival.kind),
                (arrival.req_id,), key=arrival.req_id,
                timeout=cfg.request_timeout_s / scale,
                tenant=arrival.tenant)
        except TenantShedError:
            with lock:
                report.tenant_shed += 1
            continue
        except CircuitOpenError:
            with lock:
                report.breaker_rejected += 1
            continue
        except LoadShedError:
            with lock:
                report.shed += 1
            continue
        except ServiceError:
            with lock:
                report.failed += 1
            continue
        future.add_done_callback(finish(arrival, max(target, now)))
        futures.append(future)

    # Drain: wait out the in-flight tail, then shut the router down (which
    # fails anything still queued) and count what is *still* pending.
    grace = time.perf_counter() + 2.0 * cfg.request_timeout_s / scale + 2.0
    for future in futures:
        remaining = grace - time.perf_counter()
        if remaining <= 0:
            break
        try:
            future.result(timeout=remaining)
        except Exception:
            pass
    router.shutdown()
    deadline = time.perf_counter() + 1.0
    for future in futures:
        if not future.done() and time.perf_counter() < deadline:
            try:
                future.result(timeout=max(0.0,
                                          deadline - time.perf_counter()))
            except Exception:
                pass
    report.stranded = sum(1 for f in futures if not f.done())

    wall = time.perf_counter() - t0
    after = metrics.snapshot()["counters"]
    for name in _DELTA_COUNTERS:
        delta = after.get(name, 0) - before.get(name, 0)
        setattr(report, name.split(".", 1)[1].replace(".", "_"), delta)
    report.wall_s = round(wall, 3)
    report.throughput_rps = round(report.ok / wall, 1) if wall else 0.0
    total_sheds = report.shed + report.tenant_shed
    report.shed_rate = round(total_sheds / max(1, report.requests), 4)
    latencies.sort()
    report.p50_ms = round(_percentile(latencies, 0.50), 2)
    report.p95_ms = round(_percentile(latencies, 0.95), 2)
    report.p99_ms = round(_percentile(latencies, 0.99), 2)
    report.max_ms = round(latencies[-1], 2) if latencies else 0.0
    return report
