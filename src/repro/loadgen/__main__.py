"""CLI: ``python -m repro.loadgen --users 500 --shards 4``."""

from __future__ import annotations

import json
import sys

from ..cli import (CliError, activate_store, add_seed_argument,
                   add_store_arguments, build_parser, fail)
from ..core.report import format_table
from ..service.broker import BrokerConfig
from .harness import run_load
from .workload import LoadConfig


def main(argv=None) -> int:
    parser = build_parser(
        prog="python -m repro.loadgen",
        description="Replay seeded user sessions against the sharded "
                    "serving router and report latency/shed/breaker SLOs.")
    parser.add_argument("--users", type=int, default=500)
    parser.add_argument("--shards", type=int, default=1)
    add_seed_argument(parser)
    parser.add_argument("--duration", type=float, default=3.0,
                        help="arrival horizon in seconds (pre-scaling)")
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help=">1 compresses the schedule (faster runs)")
    parser.add_argument("--workers", type=int, default=3,
                        help="backend-call slots per shard")
    parser.add_argument("--queue", type=int, default=64,
                        help="lane queue capacity")
    parser.add_argument("--tenant-share", type=float, default=0.25)
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the report as JSON to this path")
    add_store_arguments(parser, resume=False)
    args = parser.parse_args(argv)

    if args.users < 1:
        parser.error("--users must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    try:
        activate_store(args)
    except CliError as exc:
        return fail(str(exc))

    cfg = LoadConfig(users=args.users, seed=args.seed,
                     duration_s=args.duration, time_scale=args.time_scale)
    broker_cfg = BrokerConfig(queue_capacity=args.queue,
                              max_concurrent=args.workers,
                              request_timeout_s=cfg.request_timeout_s)
    from ..service.router import ShardedRouter
    with ShardedRouter(shards=args.shards, config=broker_cfg,
                       tenant_share=args.tenant_share) as router:
        report = run_load(cfg, router=router)
    data = report.as_dict()
    rows = [[k, v] for k, v in data.items() if k != "per_tenant_ok"]
    print(format_table(["metric", "value"], rows))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if report.stranded:
        print(f"error: {report.stranded} stranded futures", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
