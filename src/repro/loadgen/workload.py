"""Seeded traffic synthesis: simulated users, sessions, and backends.

The ROADMAP's "millions of users" claim needs a measured curve, so the
workload here is built to be **replayable**: every arrival time, session
shape, service time and fault decision is a pure function of the campaign
seed via :func:`repro.llm.model._stable_seed` — two runs of the same
config produce the same request schedule byte-for-byte (only the measured
latencies differ, because those are the experiment).

A *session* is one simulated user's request sequence.  Each user draws a
**flow kind** modeled on the repo's real flows — the shape controls how
many requests the session issues and in what kind mix:

* ``vrank``     — one burst of k ``generate`` calls (self-consistency);
* ``autochip``  — alternating ``generate``/``refine`` rounds (tree search);
* ``chat``      — serial conversational ``generate`` turns;
* ``structured``— generate → refine → occasional ``human_fix``.

Arrival times are **heavy-tailed**: users activate by a Pareto-distributed
inter-arrival process, so the schedule has the bursts that make admission
control and load shedding earn their keep, not a polite uniform trickle.

:class:`LoadBackend` stands in for a model server: it "serves" a request
by sleeping a deterministic Pareto-distributed service time (threads
sleeping release the GIL, so shard worker slots overlap realistically) and
optionally injecting seeded hard/transient faults — the flaky model in the
default mix is what drives measurable breaker trips.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..llm.model import _stable_seed
from ..llm.registry import get_model
from ..service.broker import BackendError, TransientBackendError

DEFAULT_MODELS = (
    "gpt-4", "chatgpt-3.5", "gpt-4o", "cl-verilog-34b", "rtlcoder-7b",
    "codev-7b", "verigen-codegen-16b", "codellama-34b-instruct",
)

FLOW_KINDS = ("vrank", "autochip", "chat", "structured")


@dataclass(frozen=True)
class LoadConfig:
    """One load-test campaign; every field feeds the seeded synthesis."""

    users: int = 1000
    seed: int = 0
    duration_s: float = 4.0            # arrival horizon (pre-scaling)
    models: tuple[str, ...] = DEFAULT_MODELS
    tenants: int = 8
    hog_tenant: bool = True            # tenant 0 issues ~4x the requests
    mean_session_len: float = 4.0      # heavy-tailed, per flow kind
    service_time_ms: float = 6.0       # mean simulated backend latency
    service_tail_alpha: float = 2.2    # Pareto shape (lower = heavier tail)
    flaky_model: str | None = "dave-gpt2"   # extra lane that trips breakers
    flaky_hard_rate: float = 0.85
    transient_rate: float = 0.02
    request_timeout_s: float = 2.0
    time_scale: float = 1.0            # >1 compresses the schedule


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: everything the dispatcher needs to fire it."""

    t: float                 # seconds from campaign start (pre-scaling)
    req_id: int
    user: int
    tenant: str
    model: str
    kind: str                # 'generate' | 'refine' | 'human_fix'
    flow: str


def _session_kinds(flow: str, length: int, rng: random.Random) -> list[str]:
    if flow == "vrank":
        return ["generate"] * length
    if flow == "autochip":
        return [("generate" if i % 2 == 0 else "refine")
                for i in range(length)]
    if flow == "chat":
        return ["generate"] * length
    kinds = []
    for i in range(length):              # structured feedback flow
        if i == 0:
            kinds.append("generate")
        elif rng.random() < 0.15:
            kinds.append("human_fix")
        else:
            kinds.append("refine")
    return kinds


def build_schedule(cfg: LoadConfig) -> list[Arrival]:
    """The full campaign schedule, sorted by arrival time.

    Pure function of ``cfg``: user u's session derives every draw from
    ``_stable_seed(cfg.seed, "user", u)``, so schedules replay exactly.
    """
    arrivals: list[Arrival] = []
    req_id = 0
    models = list(cfg.models)
    if cfg.flaky_model and cfg.flaky_model not in models:
        models.append(cfg.flaky_model)
    for user in range(cfg.users):
        rng = random.Random(_stable_seed(cfg.seed, "user", user))
        tenant_id = user % max(1, cfg.tenants)
        if cfg.hog_tenant and rng.random() < 0.25:
            tenant_id = 0                # the hog absorbs extra sessions
        flow = FLOW_KINDS[user % len(FLOW_KINDS)]
        # Heavy-tailed session start inside the horizon: bursts of users
        # activate together near Pareto cluster points.
        start = (rng.paretovariate(1.8) - 1.0) * cfg.duration_s * 0.25
        start = min(start, cfg.duration_s * 0.95)
        length = max(1, min(24, int(rng.expovariate(
            1.0 / cfg.mean_session_len)) + 1))
        kinds = _session_kinds(flow, length, rng)
        model = models[rng.randrange(len(models))]
        t = start
        for kind in kinds:
            arrivals.append(Arrival(
                t=round(t, 6), req_id=req_id, user=user,
                tenant=f"tenant-{tenant_id}", model=model, kind=kind,
                flow=flow))
            req_id += 1
            if flow == "vrank":          # burst: near-simultaneous
                t += rng.random() * 0.002
            else:                        # think time, heavy-tailed
                t += (rng.paretovariate(2.5) - 1.0) * 0.2
            t = min(t, cfg.duration_s)
    arrivals.sort(key=lambda a: (a.t, a.req_id))
    return arrivals


class _Profile:
    """Duck-typed stand-in for a model profile (the lane key)."""

    def __init__(self, name: str):
        self.name = name


class LoadBackend:
    """A latency-faithful fake model server for one lane.

    ``generate``/``refine``/``apply_human_fix`` all serve the same way:
    sleep a deterministic heavy-tailed service time keyed by the request id,
    inject seeded faults, count the call.  The *service fabric* (lanes,
    shards, breakers, shedding) is what the harness measures — the payload
    is irrelevant, so the response is just the request id echoed back.
    """

    def __init__(self, model: str, cfg: LoadConfig,
                 sleeper: Callable[[float], None] = time.sleep):
        # Use the real registry profile when the name is registered so the
        # lane keys match production; fall back to a bare name otherwise.
        try:
            self.profile = get_model(model)
        except Exception:
            self.profile = _Profile(model)
        self.cfg = cfg
        self.sleeper = sleeper
        self.flaky = (model == cfg.flaky_model)
        self.calls = 0
        self.faults = 0
        self._lock = threading.Lock()

    def _serve(self, req_id: int, attempt_salt: str = "") -> int:
        with self._lock:
            self.calls += 1
        cfg = self.cfg
        rng = random.Random(_stable_seed(cfg.seed, "svc", self.profile.name,
                                         req_id, attempt_salt))
        hard_rate = cfg.flaky_hard_rate if self.flaky else 0.0
        roll = rng.random()
        if roll < hard_rate:
            with self._lock:
                self.faults += 1
            raise BackendError(f"injected hard failure (req {req_id})")
        if roll < hard_rate + cfg.transient_rate:
            with self._lock:
                self.faults += 1
            raise TransientBackendError(
                f"injected transient fault (req {req_id})")
        mean_s = cfg.service_time_ms / 1000.0
        alpha = cfg.service_tail_alpha
        # Pareto with mean == mean_s: scale by (alpha-1)/alpha.
        service = mean_s * (alpha - 1.0) / alpha * rng.paretovariate(alpha)
        self.sleeper(min(service, mean_s * 20) / max(1e-9, cfg.time_scale))
        return req_id

    # Kind surface the broker dispatches on:

    def generate(self, req_id: int) -> int:
        return self._serve(req_id, "generate")

    def refine(self, req_id: int) -> int:
        return self._serve(req_id, "refine")

    def apply_human_fix(self, req_id: int) -> int:
        return self._serve(req_id, "human_fix")


_KIND_METHOD = {"generate": "generate", "refine": "refine",
                "human_fix": "apply_human_fix"}


def method_for(kind: str) -> str:
    return _KIND_METHOD[kind]
