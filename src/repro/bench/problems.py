"""Built-in Verilog generation benchmark suite.

Shaped like VerilogEval (the set AutoChip evaluates on): each problem has a
natural-language spec, a golden reference design, and a *quality testbench*
that prints PASS/FAIL lines and ``$finish`` — the harness contract the
paper's feedback loops consume.  Complexity runs from novice textbook
problems (the DAVE regime) to multi-module open-ended designs (the
Chip-Chat regime).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Problem:
    problem_id: str
    name: str
    spec: str
    reference: str
    testbench: str
    module_name: str
    tb_name: str = "tb"
    complexity: int = 2
    sequential: bool = False
    open_ended: bool = False
    category: str = "combinational"


_PROBLEMS: dict[str, Problem] = {}


def _register(problem: Problem) -> None:
    if problem.problem_id in _PROBLEMS:
        raise ValueError(f"duplicate problem '{problem.problem_id}'")
    _PROBLEMS[problem.problem_id] = problem


def get_problem(problem_id: str) -> Problem:
    if problem_id not in _PROBLEMS:
        raise KeyError(f"unknown problem '{problem_id}'; "
                       f"known: {sorted(_PROBLEMS)}")
    return _PROBLEMS[problem_id]


def all_problems() -> list[Problem]:
    return [p for _, p in sorted(_PROBLEMS.items())]


def problems_by(complexity: int | None = None, sequential: bool | None = None,
                category: str | None = None) -> list[Problem]:
    out = all_problems()
    if complexity is not None:
        out = [p for p in out if p.complexity == complexity]
    if sequential is not None:
        out = [p for p in out if p.sequential == sequential]
    if category is not None:
        out = [p for p in out if p.category == category]
    return out


# ===========================================================================
# Complexity 1 — novice textbook problems (the DAVE regime)
# ===========================================================================

_register(Problem(
    "c1_mux2", "2-to-1 multiplexer",
    "Write a Verilog module 'mux2' with inputs a, b, sel and output y. "
    "When sel is 0, y is a; when sel is 1, y is b.",
    """module mux2(input a, input b, input sel, output y);
  assign y = sel ? b : a;
endmodule
""",
    """module tb;
  reg a, b, sel; wire y;
  integer i;
  mux2 dut(.a(a), .b(b), .sel(sel), .y(y));
  initial begin
    for (i = 0; i < 8; i = i + 1) begin
      a = i[0]; b = i[1]; sel = i[2];
      #1;
      if (y == (sel ? b : a)) $display("PASS: case %0d", i);
      else $display("FAIL: case %0d y=%b", i, y);
    end
    $finish;
  end
endmodule
""",
    "mux2", complexity=1))

_register(Problem(
    "c1_half_adder", "half adder",
    "Write a Verilog module 'half_adder' with inputs a and b, outputs sum "
    "and carry, implementing a half adder.",
    """module half_adder(input a, input b, output sum, output carry);
  assign sum = a ^ b;
  assign carry = a & b;
endmodule
""",
    """module tb;
  reg a, b; wire sum, carry;
  integer i;
  half_adder dut(.a(a), .b(b), .sum(sum), .carry(carry));
  initial begin
    for (i = 0; i < 4; i = i + 1) begin
      a = i[0]; b = i[1];
      #1;
      if (sum == (a ^ b) && carry == (a & b)) $display("PASS: %0d", i);
      else $display("FAIL: %0d sum=%b carry=%b", i, sum, carry);
    end
    $finish;
  end
endmodule
""",
    "half_adder", complexity=1))

_register(Problem(
    "c1_parity", "even parity generator",
    "Write a Verilog module 'parity8' with an 8-bit input d and output p "
    "that is the XOR of all bits of d (even parity).",
    """module parity8(input [7:0] d, output p);
  assign p = ^d;
endmodule
""",
    """module tb;
  reg [7:0] d; wire p;
  integer i;
  reg expected;
  parity8 dut(.d(d), .p(p));
  initial begin
    for (i = 0; i < 16; i = i + 1) begin
      d = i * 37 + i;
      #1;
      expected = d[0]^d[1]^d[2]^d[3]^d[4]^d[5]^d[6]^d[7];
      if (p == expected) $display("PASS: %0d", i);
      else $display("FAIL: %0d d=%h p=%b", i, d, p);
    end
    $finish;
  end
endmodule
""",
    "parity8", complexity=1))

_register(Problem(
    "c1_and4", "4-input AND",
    "Write a Verilog module 'and4' with a 4-bit input x and output y that "
    "is 1 only when all bits of x are 1.",
    """module and4(input [3:0] x, output y);
  assign y = &x;
endmodule
""",
    """module tb;
  reg [3:0] x; wire y;
  integer i;
  and4 dut(.x(x), .y(y));
  initial begin
    for (i = 0; i < 16; i = i + 1) begin
      x = i;
      #1;
      if (y == (x == 4'hf)) $display("PASS: %0d", i);
      else $display("FAIL: %0d y=%b", i, y);
    end
    $finish;
  end
endmodule
""",
    "and4", complexity=1))

# ===========================================================================
# Complexity 2 — simple datapath blocks
# ===========================================================================

_register(Problem(
    "c2_adder8", "8-bit adder with carry",
    "Write a Verilog module 'adder8' with 8-bit inputs a and b, input cin, "
    "8-bit output sum and output cout implementing a full 8-bit adder.",
    """module adder8(input [7:0] a, input [7:0] b, input cin,
              output [7:0] sum, output cout);
  wire [8:0] total;
  assign total = a + b + cin;
  assign sum = total[7:0];
  assign cout = total[8];
endmodule
""",
    """module tb;
  reg [7:0] a, b; reg cin;
  wire [7:0] sum; wire cout;
  integer i;
  reg [8:0] expected;
  adder8 dut(.a(a), .b(b), .cin(cin), .sum(sum), .cout(cout));
  initial begin
    for (i = 0; i < 20; i = i + 1) begin
      a = i * 13 + 7; b = i * 29 + 3; cin = i[0];
      #1;
      expected = a + b + cin;
      if (sum == expected[7:0] && cout == expected[8])
        $display("PASS: %0d", i);
      else
        $display("FAIL: %0d sum=%h cout=%b", i, sum, cout);
    end
    $finish;
  end
endmodule
""",
    "adder8", complexity=2))

_register(Problem(
    "c2_comparator", "4-bit comparator",
    "Write a Verilog module 'cmp4' with 4-bit inputs a and b and outputs "
    "lt, eq, gt indicating a<b, a==b, a>b respectively.",
    """module cmp4(input [3:0] a, input [3:0] b,
            output lt, output eq, output gt);
  assign lt = a < b;
  assign eq = a == b;
  assign gt = a > b;
endmodule
""",
    """module tb;
  reg [3:0] a, b;
  wire lt, eq, gt;
  integer i;
  cmp4 dut(.a(a), .b(b), .lt(lt), .eq(eq), .gt(gt));
  initial begin
    for (i = 0; i < 25; i = i + 1) begin
      a = i * 7; b = i * 3 + 2;
      #1;
      if (lt == (a < b) && eq == (a == b) && gt == (a > b))
        $display("PASS: %0d", i);
      else
        $display("FAIL: %0d a=%d b=%d", i, a, b);
    end
    $finish;
  end
endmodule
""",
    "cmp4", complexity=2))

_register(Problem(
    "c2_decoder", "3-to-8 decoder",
    "Write a Verilog module 'dec3to8' with a 3-bit input sel, input en, "
    "and an 8-bit one-hot output y. y is all zero when en is 0.",
    """module dec3to8(input [2:0] sel, input en, output [7:0] y);
  assign y = en ? (8'b1 << sel) : 8'b0;
endmodule
""",
    """module tb;
  reg [2:0] sel; reg en;
  wire [7:0] y;
  integer i;
  dec3to8 dut(.sel(sel), .en(en), .y(y));
  initial begin
    en = 1;
    for (i = 0; i < 8; i = i + 1) begin
      sel = i;
      #1;
      if (y == (8'h01 << i)) $display("PASS: sel %0d", i);
      else $display("FAIL: sel %0d y=%b", i, y);
    end
    en = 0; sel = 3;
    #1;
    if (y == 8'h00) $display("PASS: disabled");
    else $display("FAIL: disabled y=%b", y);
    $finish;
  end
endmodule
""",
    "dec3to8", complexity=2))

_register(Problem(
    "c2_absdiff", "absolute difference",
    "Write a Verilog module 'absdiff' with 8-bit unsigned inputs a and b "
    "and an 8-bit output y equal to the absolute difference |a - b|.",
    """module absdiff(input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = (a > b) ? (a - b) : (b - a);
endmodule
""",
    """module tb;
  reg [7:0] a, b; wire [7:0] y;
  integer i;
  reg [7:0] expected;
  absdiff dut(.a(a), .b(b), .y(y));
  initial begin
    for (i = 0; i < 20; i = i + 1) begin
      a = i * 11; b = 255 - i * 17;
      #1;
      if (a > b) expected = a - b; else expected = b - a;
      if (y == expected) $display("PASS: %0d", i);
      else $display("FAIL: %0d y=%d expected=%d", i, y, expected);
    end
    $finish;
  end
endmodule
""",
    "absdiff", complexity=2))

_register(Problem(
    "c2_gray", "binary to Gray code",
    "Write a Verilog module 'bin2gray' converting a 4-bit binary input b "
    "to its Gray code output g.",
    """module bin2gray(input [3:0] b, output [3:0] g);
  assign g = b ^ (b >> 1);
endmodule
""",
    """module tb;
  reg [3:0] b; wire [3:0] g;
  integer i;
  bin2gray dut(.b(b), .g(g));
  initial begin
    for (i = 0; i < 16; i = i + 1) begin
      b = i;
      #1;
      if (g == (b ^ (b >> 1))) $display("PASS: %0d", i);
      else $display("FAIL: %0d g=%b", i, g);
    end
    $finish;
  end
endmodule
""",
    "bin2gray", complexity=2))

_register(Problem(
    "c2_counter", "4-bit counter with synchronous reset",
    "Write a Verilog module 'counter4' with inputs clk and rst and a 4-bit "
    "output q. On each rising clock edge q increments; when rst is high at "
    "the clock edge q becomes 0. Reset is synchronous.",
    """module counter4(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule
""",
    """module tb;
  reg clk, rst; wire [3:0] q;
  integer i;
  counter4 dut(.clk(clk), .rst(rst), .q(q));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1;
    @(posedge clk); #1;
    if (q == 0) $display("PASS: reset"); else $display("FAIL: reset q=%d", q);
    rst = 0;
    for (i = 1; i <= 5; i = i + 1) begin
      @(posedge clk); #1;
      if (q == i) $display("PASS: count %0d", i);
      else $display("FAIL: count %0d q=%d", i, q);
    end
    $finish;
  end
endmodule
""",
    "counter4", complexity=2, sequential=True, category="sequential"))

_register(Problem(
    "c2_shiftreg", "8-bit shift register",
    "Write a Verilog module 'shiftreg8' with inputs clk, rst, din and an "
    "8-bit output q. On each rising clock edge the register shifts left by "
    "one and din enters bit 0. rst synchronously clears the register.",
    """module shiftreg8(input clk, input rst, input din, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'd0;
    else q <= {q[6:0], din};
  end
endmodule
""",
    """module tb;
  reg clk, rst, din; wire [7:0] q;
  shiftreg8 dut(.clk(clk), .rst(rst), .din(din), .q(q));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1; din = 0;
    @(posedge clk); #1;
    rst = 0; din = 1;
    @(posedge clk); #1;
    if (q == 8'h01) $display("PASS: shift 1"); else $display("FAIL: q=%h", q);
    din = 0;
    @(posedge clk); #1;
    if (q == 8'h02) $display("PASS: shift 2"); else $display("FAIL: q=%h", q);
    din = 1;
    @(posedge clk); #1;
    if (q == 8'h05) $display("PASS: shift 3"); else $display("FAIL: q=%h", q);
    $finish;
  end
endmodule
""",
    "shiftreg8", complexity=2, sequential=True, category="sequential"))

# ===========================================================================
# Complexity 3 — compound blocks
# ===========================================================================

_register(Problem(
    "c3_alu", "8-bit ALU",
    "Write a Verilog module 'alu8' with 8-bit inputs a and b, a 2-bit "
    "input op, and an 8-bit output y. op=0: a+b, op=1: a-b, op=2: a AND b, "
    "op=3: a XOR b.",
    """module alu8(input [7:0] a, input [7:0] b, input [1:0] op,
            output reg [7:0] y);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
endmodule
""",
    """module tb;
  reg [7:0] a, b; reg [1:0] op;
  wire [7:0] y;
  integer i;
  reg [7:0] expected;
  alu8 dut(.a(a), .b(b), .op(op), .y(y));
  initial begin
    for (i = 0; i < 24; i = i + 1) begin
      a = i * 23 + 5; b = i * 7 + 99; op = i % 4;
      #1;
      case (op)
        2'd0: expected = a + b;
        2'd1: expected = a - b;
        2'd2: expected = a & b;
        default: expected = a ^ b;
      endcase
      if (y == expected) $display("PASS: %0d", i);
      else $display("FAIL: %0d op=%d y=%h expected=%h", i, op, y, expected);
    end
    $finish;
  end
endmodule
""",
    "alu8", complexity=3))

_register(Problem(
    "c3_priority", "8-bit priority encoder",
    "Write a Verilog module 'prienc8' with an 8-bit input req and outputs: "
    "3-bit grant (index of the highest-priority set bit, bit 7 highest) and "
    "valid (1 when any bit of req is set; grant is 0 when valid is 0).",
    """module prienc8(input [7:0] req, output reg [2:0] grant, output valid);
  assign valid = |req;
  always @(*) begin
    if (req[7]) grant = 3'd7;
    else if (req[6]) grant = 3'd6;
    else if (req[5]) grant = 3'd5;
    else if (req[4]) grant = 3'd4;
    else if (req[3]) grant = 3'd3;
    else if (req[2]) grant = 3'd2;
    else if (req[1]) grant = 3'd1;
    else grant = 3'd0;
  end
endmodule
""",
    """module tb;
  reg [7:0] req;
  wire [2:0] grant; wire valid;
  integer i, j;
  reg [2:0] expected;
  prienc8 dut(.req(req), .grant(grant), .valid(valid));
  initial begin
    req = 0;
    #1;
    if (valid == 0) $display("PASS: idle"); else $display("FAIL: idle");
    for (i = 0; i < 16; i = i + 1) begin
      req = i * 37 + 1;
      #1;
      expected = 0;
      for (j = 0; j < 8; j = j + 1)
        if (req[j]) expected = j;
      if (grant == expected && valid == 1) $display("PASS: %0d", i);
      else $display("FAIL: %0d req=%b grant=%d", i, req, grant);
    end
    $finish;
  end
endmodule
""",
    "prienc8", complexity=3))

_register(Problem(
    "c3_updown", "4-bit up/down counter with enable",
    "Write a Verilog module 'updown4' with inputs clk, rst, en, up and a "
    "4-bit output q. When en is high at a rising clock edge, q increments "
    "if up is 1 and decrements if up is 0. rst synchronously clears q.",
    """module updown4(input clk, input rst, input en, input up,
               output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) begin
      if (up) q <= q + 4'd1;
      else q <= q - 4'd1;
    end
  end
endmodule
""",
    """module tb;
  reg clk, rst, en, up; wire [3:0] q;
  updown4 dut(.clk(clk), .rst(rst), .en(en), .up(up), .q(q));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1; en = 0; up = 1;
    @(posedge clk); #1;
    rst = 0; en = 1;
    @(posedge clk); #1;
    if (q == 1) $display("PASS: up"); else $display("FAIL: up q=%d", q);
    @(posedge clk); #1;
    if (q == 2) $display("PASS: up2"); else $display("FAIL: up2 q=%d", q);
    up = 0;
    @(posedge clk); #1;
    if (q == 1) $display("PASS: down"); else $display("FAIL: down q=%d", q);
    en = 0;
    @(posedge clk); #1;
    if (q == 1) $display("PASS: hold"); else $display("FAIL: hold q=%d", q);
    $finish;
  end
endmodule
""",
    "updown4", complexity=3, sequential=True, category="sequential"))

_register(Problem(
    "c3_edge", "rising edge detector",
    "Write a Verilog module 'edgedet' with inputs clk, rst and din, and "
    "output pulse that is high for exactly one cycle after din transitions "
    "from 0 to 1. rst synchronously clears internal state.",
    """module edgedet(input clk, input rst, input din, output pulse);
  reg prev;
  always @(posedge clk) begin
    if (rst) prev <= 1'b0;
    else prev <= din;
  end
  assign pulse = din & ~prev;
endmodule
""",
    """module tb;
  reg clk, rst, din; wire pulse;
  edgedet dut(.clk(clk), .rst(rst), .din(din), .pulse(pulse));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1; din = 0;
    @(posedge clk); #1;
    rst = 0;
    @(posedge clk); #1;
    din = 1;
    #1;
    if (pulse == 1) $display("PASS: edge seen");
    else $display("FAIL: no pulse");
    @(posedge clk); #1;
    if (pulse == 0) $display("PASS: pulse one cycle");
    else $display("FAIL: pulse still high");
    din = 0;
    @(posedge clk); #1;
    if (pulse == 0) $display("PASS: idle low");
    else $display("FAIL: pulse on falling edge");
    $finish;
  end
endmodule
""",
    "edgedet", complexity=3, sequential=True, category="sequential"))

_register(Problem(
    "c3_lfsr", "4-bit Fibonacci LFSR",
    "Write a Verilog module 'lfsr4' with inputs clk and rst and a 4-bit "
    "output q. On reset q loads 4'b0001. Each rising clock edge shifts "
    "left with the new bit 0 equal to q[3] XOR q[2].",
    """module lfsr4(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'b0001;
    else q <= {q[2:0], q[3] ^ q[2]};
  end
endmodule
""",
    """module tb;
  reg clk, rst; wire [3:0] q;
  integer i;
  reg [3:0] model;
  lfsr4 dut(.clk(clk), .rst(rst), .q(q));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1;
    @(posedge clk); #1;
    rst = 0; model = 4'b0001;
    for (i = 0; i < 8; i = i + 1) begin
      @(posedge clk); #1;
      model = {model[2:0], model[3] ^ model[2]};
      if (q == model) $display("PASS: step %0d", i);
      else $display("FAIL: step %0d q=%b model=%b", i, q, model);
    end
    $finish;
  end
endmodule
""",
    "lfsr4", complexity=3, sequential=True, category="sequential"))

# ===========================================================================
# Complexity 4 — control-dominated designs
# ===========================================================================

_register(Problem(
    "c4_seqdet", "sequence detector FSM (101, overlapping)",
    "Write a Verilog module 'seq101' with inputs clk, rst, din and output "
    "found, a Mealy FSM that raises found for one cycle whenever the "
    "serial input din has produced the pattern 1-0-1 (overlap allowed). "
    "rst synchronously returns to the idle state.",
    """module seq101(input clk, input rst, input din, output found);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else begin
      case (state)
        2'd0: state <= din ? 2'd1 : 2'd0;
        2'd1: state <= din ? 2'd1 : 2'd2;
        default: state <= din ? 2'd1 : 2'd0;
      endcase
    end
  end
  assign found = (state == 2'd2) & din;
endmodule
""",
    """module tb;
  reg clk, rst, din; wire found;
  seq101 dut(.clk(clk), .rst(rst), .din(din), .found(found));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1; din = 0;
    @(posedge clk); #1;
    rst = 0;
    din = 1; @(posedge clk); #1;
    din = 0; @(posedge clk); #1;
    din = 1;
    #1;
    if (found == 1) $display("PASS: detect 101");
    else $display("FAIL: no detect");
    @(posedge clk); #1;
    din = 0; @(posedge clk); #1;
    din = 1;
    #1;
    if (found == 1) $display("PASS: overlap 101");
    else $display("FAIL: no overlap detect");
    @(posedge clk); #1;
    din = 1;
    #1;
    if (found == 0) $display("PASS: 11 not detected");
    else $display("FAIL: false positive");
    $finish;
  end
endmodule
""",
    "seq101", complexity=4, sequential=True, category="fsm"))

_register(Problem(
    "c4_sat_counter", "saturating up/down counter",
    "Write a Verilog module 'satcnt' with inputs clk, rst, inc, dec and a "
    "4-bit output q. Each rising edge: if inc and not dec, q increments "
    "but saturates at 15; if dec and not inc, q decrements but saturates "
    "at 0; otherwise q holds. rst synchronously clears q.",
    """module satcnt(input clk, input rst, input inc, input dec,
              output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (inc && !dec) begin
      if (q != 4'd15) q <= q + 4'd1;
    end else if (dec && !inc) begin
      if (q != 4'd0) q <= q - 4'd1;
    end
  end
endmodule
""",
    """module tb;
  reg clk, rst, inc, dec; wire [3:0] q;
  integer i;
  satcnt dut(.clk(clk), .rst(rst), .inc(inc), .dec(dec), .q(q));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1; inc = 0; dec = 0;
    @(posedge clk); #1;
    rst = 0; dec = 1;
    @(posedge clk); #1;
    if (q == 0) $display("PASS: floor"); else $display("FAIL: floor q=%d", q);
    dec = 0; inc = 1;
    for (i = 0; i < 17; i = i + 1) begin
      @(posedge clk); #1;
    end
    if (q == 15) $display("PASS: ceiling"); else $display("FAIL: ceil q=%d", q);
    inc = 1; dec = 1;
    @(posedge clk); #1;
    if (q == 15) $display("PASS: both hold"); else $display("FAIL: hold q=%d", q);
    inc = 0;
    @(posedge clk); #1;
    if (q == 14) $display("PASS: down"); else $display("FAIL: down q=%d", q);
    $finish;
  end
endmodule
""",
    "satcnt", complexity=4, sequential=True, category="fsm"))

# ===========================================================================
# Complexity 5 — open-ended / hierarchical (the Chip-Chat regime)
# ===========================================================================

_register(Problem(
    "c5_accumulator_cpu", "accumulator-based micro-datapath",
    "Design a small accumulator-based datapath 'accproc' with inputs clk, "
    "rst, a 2-bit instruction ins (0: load literal, 1: add literal, "
    "2: xor literal, 3: shift accumulator left by 1) and an 8-bit literal "
    "operand lit. The 8-bit accumulator acc is an output and updates on "
    "each rising clock edge; rst synchronously clears it. You have freedom "
    "in internal structure; match the architectural behaviour.",
    """module accproc(input clk, input rst, input [1:0] ins,
               input [7:0] lit, output reg [7:0] acc);
  always @(posedge clk) begin
    if (rst) acc <= 8'd0;
    else begin
      case (ins)
        2'd0: acc <= lit;
        2'd1: acc <= acc + lit;
        2'd2: acc <= acc ^ lit;
        default: acc <= {acc[6:0], 1'b0};
      endcase
    end
  end
endmodule
""",
    """module tb;
  reg clk, rst; reg [1:0] ins; reg [7:0] lit;
  wire [7:0] acc;
  accproc dut(.clk(clk), .rst(rst), .ins(ins), .lit(lit), .acc(acc));
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 1; ins = 0; lit = 0;
    @(posedge clk); #1;
    rst = 0;
    ins = 2'd0; lit = 8'h3c;
    @(posedge clk); #1;
    if (acc == 8'h3c) $display("PASS: load"); else $display("FAIL: load acc=%h", acc);
    ins = 2'd1; lit = 8'h11;
    @(posedge clk); #1;
    if (acc == 8'h4d) $display("PASS: add"); else $display("FAIL: add acc=%h", acc);
    ins = 2'd2; lit = 8'hff;
    @(posedge clk); #1;
    if (acc == 8'hb2) $display("PASS: xor"); else $display("FAIL: xor acc=%h", acc);
    ins = 2'd3; lit = 8'h00;
    @(posedge clk); #1;
    if (acc == 8'h64) $display("PASS: shift"); else $display("FAIL: shift acc=%h", acc);
    $finish;
  end
endmodule
""",
    "accproc", complexity=5, sequential=True, open_ended=True,
    category="processor"))

_register(Problem(
    "c5_crypto_round", "toy cipher round (hierarchical)",
    "Design a combinational toy cipher round 'cround' with 16-bit input "
    "blk and 16-bit key, producing a 16-bit output out. The round XORs the "
    "block with the key, then substitutes each 4-bit nibble n with "
    "(n*5 + 3) mod 16, then rotates the whole 16-bit word left by 3. "
    "Structure the design as you see fit (submodules welcome).",
    """module sbox4(input [3:0] n, output [3:0] s);
  assign s = (n * 4'd5) + 4'd3;
endmodule

module cround(input [15:0] blk, input [15:0] key, output [15:0] out);
  wire [15:0] x;
  wire [15:0] subbed;
  assign x = blk ^ key;
  sbox4 s0(.n(x[3:0]), .s(subbed[3:0]));
  sbox4 s1(.n(x[7:4]), .s(subbed[7:4]));
  sbox4 s2(.n(x[11:8]), .s(subbed[11:8]));
  sbox4 s3(.n(x[15:12]), .s(subbed[15:12]));
  assign out = {subbed[12:0], subbed[15:13]};
endmodule
""",
    """module tb;
  reg [15:0] blk, key;
  wire [15:0] out;
  integer i;
  reg [15:0] x, subbed, expected;
  cround dut(.blk(blk), .key(key), .out(out));
  initial begin
    for (i = 0; i < 12; i = i + 1) begin
      blk = i * 4097 + 13; key = i * 257 + 911;
      #1;
      x = blk ^ key;
      subbed[3:0] = x[3:0] * 5 + 3;
      subbed[7:4] = x[7:4] * 5 + 3;
      subbed[11:8] = x[11:8] * 5 + 3;
      subbed[15:12] = x[15:12] * 5 + 3;
      expected = {subbed[12:0], subbed[15:13]};
      if (out == expected) $display("PASS: %0d", i);
      else $display("FAIL: %0d out=%h expected=%h", i, out, expected);
    end
    $finish;
  end
endmodule
""",
    "cround", complexity=5, open_ended=True, category="crypto"))
