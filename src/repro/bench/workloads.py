"""C workloads for the HLS experiments.

Two families:

* :data:`REPAIR_WORKLOADS` — programs with deliberate HLS incompatibilities
  (dynamic memory, unbounded loops, I/O, recursion...) for the Fig. 2 repair
  loop (experiment E2);
* :data:`TESTER_WORKLOADS` — HLS-compatible kernels whose FPGA deployment
  uses custom bit widths and/or pipelining, for the Fig. 3 discrepancy
  tester (experiment E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RepairWorkload:
    workload_id: str
    description: str
    source: str
    top: str
    expected_issue_codes: tuple[str, ...]


@dataclass(frozen=True)
class TesterWorkload:
    workload_id: str
    description: str
    source: str
    top: str
    width_overrides: dict[str, int] = field(default_factory=dict)
    pipeline_hazard: bool = False
    has_discrepancy: bool = True


REPAIR_WORKLOADS: tuple[RepairWorkload, ...] = (
    RepairWorkload(
        "malloc_sum", "heap buffer accumulation",
        """
int kernel(int n) {
    int *buf = malloc(32 * sizeof(int));
    for (int i = 0; i < 32; i++) {
        buf[i] = i * n + 3;
    }
    int acc = 0;
    for (int i = 0; i < 32; i++) {
        acc += buf[i];
    }
    free(buf);
    return acc;
}
""",
        "kernel", ("HLS001",)),
    RepairWorkload(
        "debug_prints", "kernel with debug printf",
        """
int kernel(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc += a * i + b;
        printf("step %d acc=%d\\n", i, acc);
    }
    return acc;
}
""",
        "kernel", ("HLS005",)),
    RepairWorkload(
        "while_search", "unbounded convergence loop",
        """
int kernel(int x) {
    int v = x;
    while (v > 1) {
        if ((v & 1) == 0) { v = v / 2; }
        else { v = v + 1; }
    }
    return v;
}
""",
        "kernel", ("HLS003",)),
    RepairWorkload(
        "tail_recursion", "tail-recursive gcd-style kernel",
        """
int kernel(int a, int b) {
    if (b == 0) { return a; }
    int r = a % b;
    return kernel(b, r);
}
""",
        "kernel", ("HLS002", "HLS009")),
    RepairWorkload(
        "unsized_pointer", "pointer parameter without bound",
        """
int kernel(int *data, int n) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc += data[i] * n;
    }
    return acc;
}
""",
        "kernel", ("HLS004",)),
    RepairWorkload(
        "mixed_everything", "malloc + printf + while together",
        """
int kernel(int n) {
    int *tmp = malloc(16 * sizeof(int));
    int i = 0;
    while (i < 16) {
        tmp[i] = i * n;
        i++;
    }
    int best = 0;
    for (int j = 0; j < 16; j++) {
        if (tmp[j] > best) { best = tmp[j]; }
    }
    printf("best=%d\\n", best);
    free(tmp);
    return best;
}
""",
        "kernel", ("HLS001", "HLS003", "HLS005")),
    RepairWorkload(
        "runtime_div", "division by runtime value",
        """
int kernel(int a, int b) {
    int acc = 0;
    for (int i = 1; i < 12; i++) {
        acc += a / (b + i);
    }
    return acc;
}
""",
        "kernel", ("HLS009",)),
    RepairWorkload(
        "clean_already", "already HLS-compatible kernel",
        """
int kernel(int a[16], int scale) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc += a[i] * scale;
    }
    return acc;
}
""",
        "kernel", ()),
)


TESTER_WORKLOADS: tuple[TesterWorkload, ...] = (
    TesterWorkload(
        "mac_overflow", "multiply-accumulate with a narrowed accumulator",
        """
int mac(int a[8], int b[8]) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc += a[i] * b[i];
    }
    return acc;
}
""",
        "mac", width_overrides={"acc": 16}),
    TesterWorkload(
        "scaled_sum", "scaling sum with a narrowed intermediate",
        """
int scaled_sum(int x[16], int k) {
    int total = 0;
    for (int i = 0; i < 16; i++) {
        int term = x[i] * k;
        total += term;
    }
    return total;
}
""",
        "scaled_sum", width_overrides={"term": 12}),
    TesterWorkload(
        "pipelined_acc", "pipelined accumulation with a feedback dependency",
        """
int pacc(int d[16]) {
    int acc = 1;
    for (int i = 0; i < 16; i++) {
    #pragma HLS pipeline II=1
        acc = acc * 3 + d[i];
    }
    return acc;
}
""",
        "pacc", pipeline_hazard=True),
    TesterWorkload(
        "max_window", "windowed maximum — no width hazard (control kernel)",
        """
int wmax(int d[16]) {
    int best = 0;
    for (int i = 0; i < 16; i++) {
        if (d[i] > best) { best = d[i]; }
    }
    return best;
}
""",
        "wmax", has_discrepancy=False),
    TesterWorkload(
        "checksum16", "checksum folded to 16 bits",
        """
int checksum(int d[32]) {
    int sum = 0;
    for (int i = 0; i < 32; i++) {
        sum += d[i] * 31 + (d[i] ^ 77);
    }
    return sum;
}
""",
        "checksum", width_overrides={"sum": 16}),
    TesterWorkload(
        "sat_filter", "saturating filter with narrow taps",
        """
int filter(int x[8]) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        int tap = x[i] * 19 + 5;
        if (tap > 4000) { tap = 4000; }
        acc += tap;
    }
    return acc;
}
""",
        "filter", width_overrides={"tap": 11}),
)


def repair_workload(workload_id: str) -> RepairWorkload:
    for w in REPAIR_WORKLOADS:
        if w.workload_id == workload_id:
            return w
    raise KeyError(workload_id)


def tester_workload(workload_id: str) -> TesterWorkload:
    for w in TESTER_WORKLOADS:
        if w.workload_id == workload_id:
            return w
    raise KeyError(workload_id)
