"""Evaluation harness: pass@k over the problem suite.

Implements the VerilogEval-style protocol the paper's Section IV models are
compared under: sample k candidates per problem, score each against the
problem's quality testbench, and report pass@k / pass-fraction statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import run_testbench
from ..hdl.testbench import TestbenchResult
from ..llm.model import Generation, GenerationTask, SimulatedLLM
from ..llm.prompts import Prompt, PromptStrategy
from .problems import Problem


def make_task(problem: Problem) -> GenerationTask:
    """Wrap a benchmark problem as a generation task."""
    return GenerationTask(
        task_id=problem.problem_id,
        spec=problem.spec,
        reference_source=problem.reference,
        complexity=problem.complexity,
        language="verilog",
        open_ended=problem.open_ended,
    )


def evaluate_candidate(problem: Problem, candidate_source: str,
                       max_time: int = 200_000) -> TestbenchResult:
    """Score one candidate design against the problem's testbench."""
    return run_testbench(candidate_source + "\n" + problem.testbench,
                         problem.tb_name, max_time=max_time)


@dataclass
class SampleOutcome:
    generation: Generation
    result: TestbenchResult

    @property
    def passed(self) -> bool:
        return self.result.passed

    @property
    def score(self) -> float:
        return self.result.score


@dataclass
class ProblemEval:
    problem_id: str
    samples: list[SampleOutcome] = field(default_factory=list)

    @property
    def pass_at_1(self) -> float:
        if not self.samples:
            return 0.0
        return 1.0 if self.samples[0].passed else 0.0

    def pass_at_k(self, k: int) -> float:
        subset = self.samples[:k]
        return 1.0 if any(s.passed for s in subset) else 0.0

    @property
    def best_score(self) -> float:
        return max((s.score for s in self.samples), default=0.0)


@dataclass
class SuiteEval:
    model: str
    strategy: PromptStrategy
    problems: list[ProblemEval] = field(default_factory=list)

    def pass_at_k(self, k: int) -> float:
        if not self.problems:
            return 0.0
        return sum(p.pass_at_k(k) for p in self.problems) / len(self.problems)

    @property
    def mean_best_score(self) -> float:
        if not self.problems:
            return 0.0
        return sum(p.best_score for p in self.problems) / len(self.problems)

    def by_complexity(self, k: int = 1) -> dict[int, float]:
        from .problems import get_problem
        buckets: dict[int, list[float]] = {}
        for pe in self.problems:
            c = get_problem(pe.problem_id).complexity
            buckets.setdefault(c, []).append(pe.pass_at_k(k))
        return {c: sum(v) / len(v) for c, v in sorted(buckets.items())}


def evaluate_model(model: str | SimulatedLLM, problems: list[Problem],
                   k: int = 1, temperature: float = 0.7,
                   strategy: PromptStrategy = PromptStrategy.DIRECT,
                   seed: int = 0) -> SuiteEval:
    """Sample ``k`` candidates per problem and score them all."""
    llm = model if isinstance(model, SimulatedLLM) else SimulatedLLM(model,
                                                                     seed=seed)
    suite = SuiteEval(model=llm.profile.name, strategy=strategy)
    for problem in problems:
        task = make_task(problem)
        prompt = Prompt(spec=problem.spec, strategy=strategy)
        pe = ProblemEval(problem.problem_id)
        for i in range(k):
            generation = llm.generate(task, prompt, temperature,
                                      sample_index=i)
            result = evaluate_candidate(problem, generation.text)
            pe.samples.append(SampleOutcome(generation, result))
        suite.problems.append(pe)
    return suite
