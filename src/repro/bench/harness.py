"""Evaluation harness: pass@k over the problem suite.

Implements the VerilogEval-style protocol the paper's Section IV models are
compared under: sample k candidates per problem, score each against the
problem's quality testbench, and report pass@k / pass-fraction statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exec import ParallelEvaluator, evaluate_candidate_task
from ..hdl import run_testbench
from ..hdl.testbench import TestbenchResult
from ..llm.model import Generation, GenerationTask, SimulatedLLM
from ..llm.prompts import Prompt, PromptStrategy
from ..obs import get_tracer
from ..service import LLMClient, resolve_client
from .problems import Problem


def make_task(problem: Problem) -> GenerationTask:
    """Wrap a benchmark problem as a generation task."""
    return GenerationTask(
        task_id=problem.problem_id,
        spec=problem.spec,
        reference_source=problem.reference,
        complexity=problem.complexity,
        language="verilog",
        open_ended=problem.open_ended,
    )


def evaluate_candidate(problem: Problem, candidate_source: str,
                       max_time: int = 200_000) -> TestbenchResult:
    """Score one candidate design against the problem's testbench.

    The candidate and the testbench are compiled as separate units so the
    compile cache parses each problem's testbench once per suite rather
    than once per sample (see :mod:`repro.hdl.compile`).
    """
    return run_testbench(candidate_source, problem.tb_name,
                         max_time=max_time, tb_source=problem.testbench)


@dataclass
class SampleOutcome:
    generation: Generation
    result: TestbenchResult

    @property
    def passed(self) -> bool:
        return self.result.passed

    @property
    def score(self) -> float:
        return self.result.score


@dataclass
class ProblemEval:
    problem_id: str
    samples: list[SampleOutcome] = field(default_factory=list)

    @property
    def pass_at_1(self) -> float:
        if not self.samples:
            return 0.0
        return 1.0 if self.samples[0].passed else 0.0

    def pass_at_k(self, k: int) -> float:
        subset = self.samples[:k]
        return 1.0 if any(s.passed for s in subset) else 0.0

    @property
    def best_score(self) -> float:
        return max((s.score for s in self.samples), default=0.0)


@dataclass
class SuiteEval:
    model: str
    strategy: PromptStrategy
    problems: list[ProblemEval] = field(default_factory=list)

    def pass_at_k(self, k: int) -> float:
        if not self.problems:
            return 0.0
        return sum(p.pass_at_k(k) for p in self.problems) / len(self.problems)

    @property
    def mean_best_score(self) -> float:
        if not self.problems:
            return 0.0
        return sum(p.best_score for p in self.problems) / len(self.problems)

    def by_complexity(self, k: int = 1) -> dict[int, float]:
        from .problems import get_problem
        buckets: dict[int, list[float]] = {}
        for pe in self.problems:
            c = get_problem(pe.problem_id).complexity
            buckets.setdefault(c, []).append(pe.pass_at_k(k))
        return {c: sum(v) / len(v) for c, v in sorted(buckets.items())}


def evaluate_model(model: str | SimulatedLLM | LLMClient,
                   problems: list[Problem],
                   k: int = 1, temperature: float = 0.7,
                   strategy: PromptStrategy = PromptStrategy.DIRECT,
                   *, seed: int = 0, jobs: int | str | None = None,
                   mode: str = "auto",
                   timeout: float | None = None) -> SuiteEval:
    """Sample ``k`` candidates per problem and score them all.

    ``model`` may be a profile name, a raw :class:`SimulatedLLM`, or any
    :class:`~repro.service.LLMClient` (strings resolve through
    :func:`repro.service.resolve_client`, so ``REPRO_SERVICE=1`` routes
    generation through the broker with identical statistics).  ``jobs``
    fans the (independent, CPU-bound) testbench evaluations out over a
    worker pool; unset, it falls back to the ``REPRO_JOBS`` environment
    variable and then to serial.  Generation stays in-process and scoring
    is a pure function of the candidate text, so the parallel path
    produces statistics identical to the serial path for a fixed seed.
    """
    llm = resolve_client(model, seed=seed)
    suite = SuiteEval(model=llm.profile.name, strategy=strategy)
    tracer = get_tracer()
    with tracer.span("bench.evaluate_model", model=llm.profile.name, k=k,
                     problems=len(problems)) as sp:
        generations: list[list[Generation]] = []
        with tracer.span("bench.generate"):
            for problem in problems:
                task = make_task(problem)
                prompt = Prompt(spec=problem.spec, strategy=strategy)
                generations.append([llm.generate(task, prompt, temperature,
                                                 sample_index=i)
                                    for i in range(k)])
        evaluator = ParallelEvaluator(jobs, mode=mode, timeout=timeout)
        payloads = [(problem, gen.text, 200_000)
                    for problem, gens in zip(problems, generations)
                    for gen in gens]
        results = evaluator.map(evaluate_candidate_task, payloads)
        cursor = 0
        for problem, gens in zip(problems, generations):
            pe = ProblemEval(problem.problem_id)
            for gen in gens:
                pe.samples.append(SampleOutcome(gen, results[cursor]))
                cursor += 1
            suite.problems.append(pe)
        sp.set(pass_at_1=round(suite.pass_at_k(1), 4))
    return suite
