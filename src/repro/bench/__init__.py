"""``repro.bench`` — benchmark problem suites, workloads and pass@k harness.

Stands in for VerilogEval/RTLLM: specs + golden references + quality
testbenches, plus the C workload sets the HLS experiments run on.
"""

from .harness import (ProblemEval, SampleOutcome, SuiteEval,
                      evaluate_candidate, evaluate_model, make_task)
from .problems import Problem, all_problems, get_problem, problems_by
from .workloads import (REPAIR_WORKLOADS, RepairWorkload, TESTER_WORKLOADS,
                        TesterWorkload, repair_workload, tester_workload)

__all__ = [
    "Problem", "ProblemEval", "REPAIR_WORKLOADS", "RepairWorkload",
    "SampleOutcome", "SuiteEval", "TESTER_WORKLOADS", "TesterWorkload",
    "all_problems", "evaluate_candidate", "evaluate_model", "get_problem",
    "make_task", "problems_by", "repair_workload", "tester_workload",
]
