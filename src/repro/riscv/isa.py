"""RV32IM instruction set: representation, encoding and decoding.

The SLT case study (Section V) scores C programs by the power they induce in
a BOOM-class out-of-order RISC-V core.  This module gives the core a real
ISA to execute: the RV32I base plus the M extension, with binary
encode/decode so the assembler and core can be cross-checked bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

# Functional-unit classes used by the timing and power models.
UNIT_ALU = "alu"
UNIT_MUL = "mul"
UNIT_DIV = "div"
UNIT_LSU = "lsu"
UNIT_BRANCH = "branch"


@dataclass(frozen=True)
class InstrSpec:
    mnemonic: str
    fmt: str          # R, I, S, B, U, J
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    unit: str = UNIT_ALU
    latency: int = 1


_R = lambda m, f3, f7, unit=UNIT_ALU, lat=1: InstrSpec(m, "R", 0b0110011, f3, f7, unit, lat)

SPECS: dict[str, InstrSpec] = {}


def _add(spec: InstrSpec) -> None:
    SPECS[spec.mnemonic] = spec


# R-type ALU
_base_r = [
    ("add", 0b000, 0b0000000), ("sub", 0b000, 0b0100000),
    ("sll", 0b001, 0b0000000), ("slt", 0b010, 0b0000000),
    ("sltu", 0b011, 0b0000000), ("xor", 0b100, 0b0000000),
    ("srl", 0b101, 0b0000000), ("sra", 0b101, 0b0100000),
    ("or", 0b110, 0b0000000), ("and", 0b111, 0b0000000),
]
for m, f3, f7 in _base_r:
    _add(_R(m, f3, f7))

# M extension
_m_ext = [
    ("mul", 0b000, UNIT_MUL, 3), ("mulh", 0b001, UNIT_MUL, 3),
    ("mulhsu", 0b010, UNIT_MUL, 3), ("mulhu", 0b011, UNIT_MUL, 3),
    ("div", 0b100, UNIT_DIV, 20), ("divu", 0b101, UNIT_DIV, 20),
    ("rem", 0b110, UNIT_DIV, 20), ("remu", 0b111, UNIT_DIV, 20),
]
for m, f3, unit, lat in _m_ext:
    _add(_R(m, f3, 0b0000001, unit, lat))

# I-type ALU
for m, f3 in [("addi", 0b000), ("slti", 0b010), ("sltiu", 0b011),
              ("xori", 0b100), ("ori", 0b110), ("andi", 0b111)]:
    _add(InstrSpec(m, "I", 0b0010011, f3))
_add(InstrSpec("slli", "I", 0b0010011, 0b001, 0b0000000))
_add(InstrSpec("srli", "I", 0b0010011, 0b101, 0b0000000))
_add(InstrSpec("srai", "I", 0b0010011, 0b101, 0b0100000))

# Loads / stores
for m, f3 in [("lb", 0b000), ("lh", 0b001), ("lw", 0b010),
              ("lbu", 0b100), ("lhu", 0b101)]:
    _add(InstrSpec(m, "I", 0b0000011, f3, unit=UNIT_LSU, latency=2))
for m, f3 in [("sb", 0b000), ("sh", 0b001), ("sw", 0b010)]:
    _add(InstrSpec(m, "S", 0b0100011, f3, unit=UNIT_LSU, latency=1))

# Branches
for m, f3 in [("beq", 0b000), ("bne", 0b001), ("blt", 0b100),
              ("bge", 0b101), ("bltu", 0b110), ("bgeu", 0b111)]:
    _add(InstrSpec(m, "B", 0b1100011, f3, unit=UNIT_BRANCH))

# Jumps / upper immediates
_add(InstrSpec("jal", "J", 0b1101111, unit=UNIT_BRANCH))
_add(InstrSpec("jalr", "I", 0b1100111, 0b000, unit=UNIT_BRANCH))
_add(InstrSpec("lui", "U", 0b0110111))
_add(InstrSpec("auipc", "U", 0b0010111))

# Environment (used as halt marker)
_add(InstrSpec("ebreak", "I", 0b1110011, 0b000))


ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

REG_NAMES = {v: k for k, v in ABI_NAMES.items() if k != "fp"}


def parse_register(text: str) -> int:
    text = text.strip().lower()
    if text in ABI_NAMES:
        return ABI_NAMES[text]
    if text.startswith("x") and text[1:].isdigit():
        n = int(text[1:])
        if 0 <= n < 32:
            return n
    raise ValueError(f"unknown register '{text}'")


@dataclass(frozen=True)
class Instruction:
    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: str | None = None   # unresolved branch/jump target

    @property
    def spec(self) -> InstrSpec:
        return SPECS[self.mnemonic]

    @property
    def unit(self) -> str:
        return self.spec.unit

    def __str__(self) -> str:
        spec = self.spec
        rd = REG_NAMES.get(self.rd, f"x{self.rd}")
        rs1 = REG_NAMES.get(self.rs1, f"x{self.rs1}")
        rs2 = REG_NAMES.get(self.rs2, f"x{self.rs2}")
        if spec.fmt == "R":
            return f"{self.mnemonic} {rd}, {rs1}, {rs2}"
        if spec.fmt == "I":
            if spec.opcode == 0b0000011:
                return f"{self.mnemonic} {rd}, {self.imm}({rs1})"
            return f"{self.mnemonic} {rd}, {rs1}, {self.imm}"
        if spec.fmt == "S":
            return f"{self.mnemonic} {rs2}, {self.imm}({rs1})"
        if spec.fmt == "B":
            target = self.label or str(self.imm)
            return f"{self.mnemonic} {rs1}, {rs2}, {target}"
        if spec.fmt == "U":
            return f"{self.mnemonic} {rd}, {self.imm}"
        if spec.fmt == "J":
            target = self.label or str(self.imm)
            return f"{self.mnemonic} {rd}, {target}"
        return self.mnemonic


def _field(value: int, hi: int, lo: int) -> int:
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def encode(instr: Instruction) -> int:
    """Encode to the 32-bit RISC-V machine word."""
    spec = instr.spec
    op = spec.opcode
    if spec.fmt == "R":
        return ((spec.funct7 << 25) | (instr.rs2 << 20) | (instr.rs1 << 15)
                | (spec.funct3 << 12) | (instr.rd << 7) | op)
    if spec.fmt == "I":
        imm = instr.imm & 0xFFF
        if spec.funct7 is not None:  # shifts carry funct7 in imm[11:5]
            imm = (spec.funct7 << 5) | (instr.imm & 0x1F)
        if instr.mnemonic == "ebreak":
            imm = 1
        return ((imm << 20) | (instr.rs1 << 15) | (spec.funct3 << 12)
                | (instr.rd << 7) | op)
    if spec.fmt == "S":
        imm = instr.imm & 0xFFF
        return ((_field(imm, 11, 5) << 25) | (instr.rs2 << 20)
                | (instr.rs1 << 15) | (spec.funct3 << 12)
                | (_field(imm, 4, 0) << 7) | op)
    if spec.fmt == "B":
        imm = instr.imm & 0x1FFF
        return ((_field(imm, 12, 12) << 31) | (_field(imm, 10, 5) << 25)
                | (instr.rs2 << 20) | (instr.rs1 << 15)
                | (spec.funct3 << 12) | (_field(imm, 4, 1) << 8)
                | (_field(imm, 11, 11) << 7) | op)
    if spec.fmt == "U":
        return ((instr.imm & 0xFFFFF) << 12) | (instr.rd << 7) | op
    if spec.fmt == "J":
        imm = instr.imm & 0x1FFFFF
        return ((_field(imm, 20, 20) << 31) | (_field(imm, 10, 1) << 21)
                | (_field(imm, 11, 11) << 20) | (_field(imm, 19, 12) << 12)
                | (instr.rd << 7) | op)
    raise ValueError(f"cannot encode format {spec.fmt}")


def _sext(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def decode(word: int) -> Instruction:
    """Decode a 32-bit machine word back to an :class:`Instruction`."""
    op = word & 0x7F
    funct3 = _field(word, 14, 12)
    funct7 = _field(word, 31, 25)
    rd = _field(word, 11, 7)
    rs1 = _field(word, 19, 15)
    rs2 = _field(word, 24, 20)

    if op == 0b0110011:  # R-type
        for spec in SPECS.values():
            if spec.fmt == "R" and spec.funct3 == funct3 and spec.funct7 == funct7:
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        raise ValueError(f"unknown R-type funct3={funct3} funct7={funct7}")
    if op == 0b0010011:  # I-type ALU
        if funct3 == 0b001:
            return Instruction("slli", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 0b101:
            name = "srai" if funct7 == 0b0100000 else "srli"
            return Instruction(name, rd=rd, rs1=rs1, imm=rs2)
        for spec in SPECS.values():
            if spec.fmt == "I" and spec.opcode == op and spec.funct3 == funct3 \
                    and spec.funct7 is None:
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1,
                                   imm=_sext(_field(word, 31, 20), 12))
    if op == 0b0000011:  # loads
        for spec in SPECS.values():
            if spec.opcode == op and spec.funct3 == funct3:
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1,
                                   imm=_sext(_field(word, 31, 20), 12))
    if op == 0b0100011:  # stores
        imm = (_field(word, 31, 25) << 5) | _field(word, 11, 7)
        for spec in SPECS.values():
            if spec.opcode == op and spec.funct3 == funct3:
                return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2,
                                   imm=_sext(imm, 12))
    if op == 0b1100011:  # branches
        imm = ((_field(word, 31, 31) << 12) | (_field(word, 7, 7) << 11)
               | (_field(word, 30, 25) << 5) | (_field(word, 11, 8) << 1))
        for spec in SPECS.values():
            if spec.opcode == op and spec.funct3 == funct3:
                return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2,
                                   imm=_sext(imm, 13))
    if op == 0b1101111:  # jal
        imm = ((_field(word, 31, 31) << 20) | (_field(word, 19, 12) << 12)
               | (_field(word, 20, 20) << 11) | (_field(word, 30, 21) << 1))
        return Instruction("jal", rd=rd, imm=_sext(imm, 21))
    if op == 0b1100111:
        return Instruction("jalr", rd=rd, rs1=rs1,
                           imm=_sext(_field(word, 31, 20), 12))
    if op == 0b0110111:
        return Instruction("lui", rd=rd, imm=_field(word, 31, 12))
    if op == 0b0010111:
        return Instruction("auipc", rd=rd, imm=_field(word, 31, 12))
    if op == 0b1110011:
        return Instruction("ebreak")
    raise ValueError(f"cannot decode word 0x{word:08x}")
