"""Trace-driven out-of-order superscalar core model (the BOOM substitute).

Two phases, like every trace-driven simulator:

1. **Functional execution** — run the RV32IM program to obtain the dynamic
   instruction trace, architectural results, and data values (needed for the
   activity/power model).
2. **Timing model** — replay the trace through a scoreboard with a fetch /
   dispatch width, a reorder buffer, per-class functional units (pipelined
   ALUs and multiplier, unpipelined divider, one load/store unit), and a
   static backward-taken branch predictor with a mispredict penalty.

The outputs (IPC, per-unit occupancy, operand toggle activity, mispredict
counts) feed the activity-based power model in :mod:`repro.riscv.power`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .assembler import Program
from .isa import (Instruction, UNIT_ALU, UNIT_BRANCH, UNIT_DIV, UNIT_LSU,
                  UNIT_MUL)


class ExecutionFault(Exception):
    def __init__(self, kind: str, message: str):
        self.kind = kind
        super().__init__(f"[CPU:{kind}] {message}")


def _s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def _u32(value: int) -> int:
    return value & 0xFFFFFFFF


@dataclass(frozen=True)
class CoreConfig:
    """BOOM-like microarchitecture parameters."""

    fetch_width: int = 2
    retire_width: int = 2
    rob_size: int = 32
    alu_units: int = 2
    mul_units: int = 1
    div_units: int = 1
    lsu_units: int = 1
    branch_units: int = 1
    mispredict_penalty: int = 7
    cache_hit_latency: int = 2
    cache_miss_latency: int = 20
    cache_lines: int = 64          # direct-mapped, 16-byte lines
    max_instructions: int = 2_000_000


@dataclass
class TraceEntry:
    instr: Instruction
    srcs: tuple[int, ...]
    dst: int
    result: int
    is_mem: bool
    mem_addr: int
    taken: bool
    pc: int


@dataclass
class CoreStats:
    instret: int = 0
    cycles: int = 0
    unit_ops: dict[str, int] = field(default_factory=dict)
    unit_activity: dict[str, float] = field(default_factory=dict)
    branch_count: int = 0
    mispredicts: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    cache_misses: int = 0
    halted: bool = False
    return_value: int = 0

    @property
    def ipc(self) -> float:
        return self.instret / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branch_count if self.branch_count else 0.0

    def unit_rate(self, unit: str) -> float:
        if not self.cycles:
            return 0.0
        return self.unit_ops.get(unit, 0) / self.cycles

    def summary(self) -> str:
        return (f"{self.instret} insns in {self.cycles} cycles "
                f"(IPC={self.ipc:.2f}), mispredict={self.mispredict_rate:.1%}, "
                f"cache_misses={self.cache_misses}")


class Core:
    """Functional + timing simulation of one program run."""

    def __init__(self, config: CoreConfig | None = None):
        self.config = config or CoreConfig()

    # -- phase 1: functional execution --------------------------------------------

    def _exec_functional(self, program: Program) -> tuple[list[TraceEntry], int]:
        cfg = self.config
        regs = [0] * 32
        regs[2] = 0x10000
        memory: dict[int, int] = {}
        trace: list[TraceEntry] = []
        pc = program.labels.get("_start", 0)
        count = 0
        instrs = program.instructions

        while 0 <= pc < len(instrs):
            count += 1
            if count > cfg.max_instructions:
                raise ExecutionFault("timeout",
                                     f"exceeded {cfg.max_instructions} "
                                     f"dynamic instructions")
            instr = instrs[pc]
            m = instr.mnemonic
            rs1 = regs[instr.rs1]
            rs2 = regs[instr.rs2]
            result = 0
            dst = instr.rd
            is_mem = False
            mem_addr = 0
            taken = False
            next_pc = pc + 1

            if m == "ebreak":
                trace.append(TraceEntry(instr, (), 0, 0, False, 0, False, pc))
                return trace, regs[10]
            elif m in ("add", "addi"):
                other = rs2 if m == "add" else instr.imm
                result = _s32(rs1 + other)
            elif m == "sub":
                result = _s32(rs1 - rs2)
            elif m in ("and", "andi"):
                other = rs2 if m == "and" else instr.imm
                result = _s32(rs1 & other)
            elif m in ("or", "ori"):
                other = rs2 if m == "or" else instr.imm
                result = _s32(rs1 | other)
            elif m in ("xor", "xori"):
                other = rs2 if m == "xor" else instr.imm
                result = _s32(rs1 ^ other)
            elif m in ("sll", "slli"):
                amount = (rs2 if m == "sll" else instr.imm) & 31
                result = _s32(rs1 << amount)
            elif m in ("srl", "srli"):
                amount = (rs2 if m == "srl" else instr.imm) & 31
                result = _s32(_u32(rs1) >> amount)
            elif m in ("sra", "srai"):
                amount = (rs2 if m == "sra" else instr.imm) & 31
                result = rs1 >> amount
            elif m in ("slt", "slti"):
                other = rs2 if m == "slt" else instr.imm
                result = 1 if rs1 < other else 0
            elif m in ("sltu", "sltiu"):
                other = _u32(rs2) if m == "sltu" else _u32(instr.imm)
                result = 1 if _u32(rs1) < other else 0
            elif m == "mul":
                result = _s32(rs1 * rs2)
            elif m == "mulh":
                result = _s32((rs1 * rs2) >> 32)
            elif m == "mulhu":
                result = _s32((_u32(rs1) * _u32(rs2)) >> 32)
            elif m == "mulhsu":
                result = _s32((rs1 * _u32(rs2)) >> 32)
            elif m in ("div", "divu", "rem", "remu"):
                if (m in ("div", "rem") and rs2 == 0) or \
                        (m in ("divu", "remu") and _u32(rs2) == 0):
                    result = -1 if m.startswith("div") else rs1
                elif m == "div":
                    q = abs(rs1) // abs(rs2)
                    result = _s32(-q if (rs1 < 0) != (rs2 < 0) else q)
                elif m == "divu":
                    result = _s32(_u32(rs1) // _u32(rs2))
                elif m == "rem":
                    q = abs(rs1) // abs(rs2)
                    q = -q if (rs1 < 0) != (rs2 < 0) else q
                    result = _s32(rs1 - q * rs2)
                else:
                    result = _s32(_u32(rs1) % _u32(rs2))
            elif m == "lui":
                result = _s32(instr.imm << 12)
            elif m == "auipc":
                result = _s32((pc * 4) + (instr.imm << 12))
            elif m in ("lw", "lh", "lhu", "lb", "lbu"):
                is_mem = True
                mem_addr = _u32(rs1 + instr.imm)
                word = memory.get(mem_addr >> 2, 0)
                if m == "lw":
                    result = _s32(word)
                else:
                    shift = (mem_addr & 3) * 8
                    if m in ("lb", "lbu"):
                        byte = (word >> shift) & 0xFF
                        result = byte - 256 if (m == "lb" and byte & 0x80) \
                            else byte
                    else:
                        half = (word >> shift) & 0xFFFF
                        result = half - 65536 if (m == "lh" and half & 0x8000) \
                            else half
            elif m in ("sw", "sh", "sb"):
                is_mem = True
                dst = 0
                mem_addr = _u32(rs1 + instr.imm)
                if m == "sw":
                    memory[mem_addr >> 2] = _s32(rs2)
                else:
                    word = _u32(memory.get(mem_addr >> 2, 0))
                    shift = (mem_addr & 3) * 8
                    mask = 0xFF if m == "sb" else 0xFFFF
                    word = (word & ~(mask << shift)) \
                        | ((_u32(rs2) & mask) << shift)
                    memory[mem_addr >> 2] = _s32(word)
            elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
                dst = 0
                conds = {
                    "beq": rs1 == rs2, "bne": rs1 != rs2,
                    "blt": rs1 < rs2, "bge": rs1 >= rs2,
                    "bltu": _u32(rs1) < _u32(rs2),
                    "bgeu": _u32(rs1) >= _u32(rs2),
                }
                taken = conds[m]
                if taken:
                    next_pc = pc + instr.imm // 4
            elif m == "jal":
                result = (pc + 1) * 4
                taken = True
                next_pc = pc + instr.imm // 4
            elif m == "jalr":
                result = (pc + 1) * 4
                taken = True
                next_pc = _u32(rs1 + instr.imm) // 4
            else:  # pragma: no cover - all mnemonics handled
                raise ExecutionFault("decode", f"unhandled mnemonic '{m}'")

            if dst != 0:
                regs[dst] = _s32(result)
                regs[0] = 0
            srcs = tuple(r for r in (instr.rs1, instr.rs2) if r != 0)
            trace.append(TraceEntry(instr, srcs, dst, result, is_mem,
                                    mem_addr, taken, pc))
            pc = next_pc
        raise ExecutionFault("pcrange", f"program counter left code at {pc}")

    # -- phase 2: timing model ------------------------------------------------------------

    def _timing(self, trace: list[TraceEntry], stats: CoreStats) -> None:
        cfg = self.config
        reg_ready = [0] * 32
        unit_free: dict[str, list[int]] = {
            UNIT_ALU: [0] * cfg.alu_units,
            UNIT_MUL: [0] * cfg.mul_units,
            UNIT_DIV: [0] * cfg.div_units,
            UNIT_LSU: [0] * cfg.lsu_units,
            UNIT_BRANCH: [0] * cfg.branch_units,
        }
        retire_times: list[int] = []
        fetch_cycle = 0
        fetched_this_cycle = 0
        last_result: dict[str, int] = {}
        toggle_sum: dict[str, float] = {}
        cache_tags: list[int | None] = [None] * cfg.cache_lines

        last_retire = 0
        for idx, entry in enumerate(trace):
            spec = entry.instr.spec
            unit = spec.unit

            # Fetch/dispatch bandwidth.
            if fetched_this_cycle >= cfg.fetch_width:
                fetch_cycle += 1
                fetched_this_cycle = 0
            # ROB back-pressure: cannot dispatch when ROB holds rob_size.
            if len(retire_times) >= cfg.rob_size:
                oldest = retire_times[-cfg.rob_size]
                if oldest > fetch_cycle:
                    fetch_cycle = oldest
                    fetched_this_cycle = 0
            dispatch = fetch_cycle
            fetched_this_cycle += 1

            operands_ready = max([dispatch]
                                 + [reg_ready[r] for r in entry.srcs])
            # FU allocation: earliest-free instance.
            frees = unit_free[unit]
            slot = min(range(len(frees)), key=lambda i: frees[i])
            issue = max(operands_ready, frees[slot])

            latency = spec.latency
            occupancy = 1
            if unit == UNIT_DIV:
                occupancy = latency          # unpipelined divider
            if entry.is_mem:
                line = (entry.mem_addr >> 4) % cfg.cache_lines
                tag = entry.mem_addr >> 4
                if cache_tags[line] == tag:
                    latency = cfg.cache_hit_latency
                else:
                    latency = cfg.cache_miss_latency
                    cache_tags[line] = tag
                    stats.cache_misses += 1
                if entry.instr.mnemonic.startswith("s"):
                    stats.mem_writes += 1
                    latency = 1   # stores complete at commit
                else:
                    stats.mem_reads += 1
            complete = issue + latency
            frees[slot] = issue + occupancy

            if entry.dst != 0:
                reg_ready[entry.dst] = complete

            # In-order retirement, retire_width per cycle.
            retire = max(complete, last_retire)
            recent = sum(1 for t in retire_times[-cfg.retire_width:]
                         if t == retire)
            if recent >= cfg.retire_width:
                retire += 1
            retire_times.append(retire)
            last_retire = retire

            # Branch prediction: backward taken, forward not-taken.
            if unit == UNIT_BRANCH:
                stats.branch_count += 1
                if entry.instr.mnemonic in ("jal", "jalr"):
                    predicted_taken = True
                    mispredict = entry.instr.mnemonic == "jalr"
                else:
                    predicted_taken = entry.instr.imm < 0
                    mispredict = predicted_taken != entry.taken
                if mispredict:
                    stats.mispredicts += 1
                    fetch_cycle = max(fetch_cycle,
                                      complete + cfg.mispredict_penalty)
                    fetched_this_cycle = 0

            # Operand toggle activity (for the power model).
            prev = last_result.get(unit, 0)
            toggles = bin(_u32(prev ^ entry.result)).count("1") / 32.0
            toggle_sum[unit] = toggle_sum.get(unit, 0.0) + toggles
            last_result[unit] = entry.result
            stats.unit_ops[unit] = stats.unit_ops.get(unit, 0) + 1

        stats.cycles = (retire_times[-1] + 1) if retire_times else 1
        for unit, total in toggle_sum.items():
            ops = stats.unit_ops.get(unit, 1)
            stats.unit_activity[unit] = total / ops

    # -- public -----------------------------------------------------------------------------

    def run(self, program: Program) -> CoreStats:
        """Execute a program and return combined functional+timing stats."""
        stats = CoreStats()
        trace, retval = self._exec_functional(program)
        stats.instret = len(trace)
        stats.halted = True
        stats.return_value = retval
        self._timing(trace, stats)
        return stats


def run_program(program: Program, config: CoreConfig | None = None) -> CoreStats:
    return Core(config).run(program)
