"""Mini-C to RV32IM compiler.

Compiles the same mini-C subset the HLS frontend parses down to the
assembler's textual form, so the SLT loop can score LLM- and GP-generated C
snippets on the out-of-order core.  Classic single-pass code generation:
frame-pointer-relative locals, an expression register stack (t0..t6,
s2..s11), a0-a5 argument registers, result in a0.
"""

from __future__ import annotations

from ..hls.cast import (CAssign, CBinary, CBlock, CBreak, CCall, CCast,
                        CContinue, CDecl, CExpr, CExprStmt, CFor, CFunction,
                        CIf, CIndex, CNum, CPragmaStmt, CProgram, CReturn,
                        CSizeof, CStmt, CStr, CTernary, CUnary, CVar, CWhile)
from ..hls.cparser import cparse


class CompileError(Exception):
    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"[CC] {message} (line {line})")


_TEMP_REGS = ["t0", "t1", "t2", "t3", "t4", "t5", "t6",
              "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"]
_ARG_REGS = ["a0", "a1", "a2", "a3", "a4", "a5"]


class _RegStack:
    def __init__(self) -> None:
        self.depth = 0

    def push(self) -> str:
        if self.depth >= len(_TEMP_REGS):
            raise CompileError("expression too deeply nested for the register "
                               "allocator")
        reg = _TEMP_REGS[self.depth]
        self.depth += 1
        return reg

    def pop(self) -> str:
        self.depth -= 1
        return _TEMP_REGS[self.depth]

    @property
    def top(self) -> str:
        return _TEMP_REGS[self.depth - 1]


class _FunctionCompiler:
    def __init__(self, program: CProgram, func: CFunction, emit,
                 label_counter: list[int]):
        self.program = program
        self.func = func
        self.emit = emit
        self.label_counter = label_counter
        self.offsets: dict[str, int] = {}     # name -> fp-relative offset
        self.array_sizes: dict[str, int] = {}
        # The first 8 bytes below the frame pointer hold saved ra and s0;
        # locals start below them.
        self.frame_size = 8
        self.regs = _RegStack()
        self.loop_stack: list[tuple[str, str]] = []   # (continue, break)

    def _label(self, hint: str) -> str:
        self.label_counter[0] += 1
        return f".L{hint}_{self.label_counter[0]}"

    def _alloc(self, name: str, words: int = 1, line: int = 0) -> int:
        if name in self.offsets:
            return self.offsets[name]
        self.frame_size += 4 * words
        self.offsets[name] = -self.frame_size
        return self.offsets[name]

    # -- layout pre-pass ---------------------------------------------------------

    def _layout(self, stmt: CStmt) -> None:
        if isinstance(stmt, CBlock):
            for s in stmt.stmts:
                self._layout(s)
        elif isinstance(stmt, CDecl):
            if stmt.ctype.is_array:
                size = stmt.ctype.array_size or 0
                if size <= 0:
                    raise CompileError(f"array '{stmt.name}' needs a constant "
                                       f"size", stmt.line)
                self._alloc(stmt.name, size, stmt.line)
                self.array_sizes[stmt.name] = size
            else:
                self._alloc(stmt.name, 1, stmt.line)
        elif isinstance(stmt, CIf):
            self._layout(stmt.then)
            if stmt.other is not None:
                self._layout(stmt.other)
        elif isinstance(stmt, CFor):
            if stmt.init is not None:
                self._layout(stmt.init)
            self._layout(stmt.body)
        elif isinstance(stmt, CWhile):
            self._layout(stmt.body)

    # -- compilation ----------------------------------------------------------------

    def compile(self) -> None:
        func = self.func
        if len(func.params) > len(_ARG_REGS):
            raise CompileError(f"'{func.name}' has more than "
                               f"{len(_ARG_REGS)} parameters", func.line)
        for param in func.params:
            if param.ctype.is_array or param.ctype.is_pointer:
                # Arrays are passed as base addresses.
                self._alloc(param.name, 1, func.line)
            else:
                self._alloc(param.name, 1, func.line)
        self._layout(func.body)
        # Reserve spill slots for temporaries live across calls inside
        # subexpressions (e.g. `s += f(x)`).
        self.spill_slots = [self._alloc(f"__spill{i}")
                            for i in range(len(_TEMP_REGS))]
        frame = (self.frame_size + 15) & ~15   # 16-byte alignment

        self.emit(f"{func.name}:")
        self.emit(f"    addi sp, sp, -{frame}")
        self.emit(f"    sw ra, {frame - 4}(sp)")
        self.emit(f"    sw s0, {frame - 8}(sp)")
        self.emit(f"    addi s0, sp, {frame}")
        for i, param in enumerate(func.params):
            self.emit(f"    sw {_ARG_REGS[i]}, {self.offsets[param.name]}(s0)")
        self.return_label = self._label(f"ret_{func.name}")
        self.frame_total = frame
        self._stmt(func.body)
        # Fallthrough return (value 0).
        self.emit("    li a0, 0")
        self.emit(f"{self.return_label}:")
        self.emit(f"    lw ra, {frame - 4}(sp)")
        self.emit(f"    lw s0, {frame - 8}(sp)")
        self.emit(f"    addi sp, sp, {frame}")
        self.emit("    ret")

    # -- statements --------------------------------------------------------------------

    def _stmt(self, stmt: CStmt) -> None:
        if isinstance(stmt, CBlock):
            for s in stmt.stmts:
                self._stmt(s)
        elif isinstance(stmt, CPragmaStmt):
            pass
        elif isinstance(stmt, CDecl):
            if stmt.ctype.is_array:
                return  # storage already laid out; no init supported
            if stmt.init is not None:
                reg = self._expr(stmt.init)
                self.emit(f"    sw {reg}, {self.offsets[stmt.name]}(s0)")
                self.regs.pop()
        elif isinstance(stmt, CExprStmt):
            reg_count = self.regs.depth
            self._expr_for_effect(stmt.expr)
            assert self.regs.depth == reg_count
        elif isinstance(stmt, CReturn):
            if stmt.value is not None:
                reg = self._expr(stmt.value)
                self.emit(f"    mv a0, {reg}")
                self.regs.pop()
            else:
                self.emit("    li a0, 0")
            self.emit(f"    j {self.return_label}")
        elif isinstance(stmt, CIf):
            self._if(stmt)
        elif isinstance(stmt, CFor):
            self._for(stmt)
        elif isinstance(stmt, CWhile):
            self._while(stmt)
        elif isinstance(stmt, CBreak):
            if not self.loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self.emit(f"    j {self.loop_stack[-1][1]}")
        elif isinstance(stmt, CContinue):
            if not self.loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self.emit(f"    j {self.loop_stack[-1][0]}")
        else:
            raise CompileError(f"cannot compile {type(stmt).__name__}")

    def _if(self, stmt: CIf) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        reg = self._expr(stmt.cond)
        self.emit(f"    beqz {reg}, {else_label}")
        self.regs.pop()
        self._stmt(stmt.then)
        if stmt.other is not None:
            self.emit(f"    j {end_label}")
            self.emit(f"{else_label}:")
            self._stmt(stmt.other)
            self.emit(f"{end_label}:")
        else:
            self.emit(f"{else_label}:")

    def _for(self, stmt: CFor) -> None:
        if stmt.init is not None:
            self._stmt(stmt.init)
        head = self._label("for")
        cont = self._label("forstep")
        done = self._label("forend")
        self.emit(f"{head}:")
        if stmt.cond is not None:
            reg = self._expr(stmt.cond)
            self.emit(f"    beqz {reg}, {done}")
            self.regs.pop()
        self.loop_stack.append((cont, done))
        self._stmt(stmt.body)
        self.loop_stack.pop()
        self.emit(f"{cont}:")
        if stmt.step is not None:
            self._expr_for_effect(stmt.step)
        self.emit(f"    j {head}")
        self.emit(f"{done}:")

    def _while(self, stmt: CWhile) -> None:
        head = self._label("while")
        done = self._label("wend")
        if stmt.do_while:
            body_label = self._label("do")
            self.emit(f"{body_label}:")
            self.loop_stack.append((head, done))
            self._stmt(stmt.body)
            self.loop_stack.pop()
            self.emit(f"{head}:")
            reg = self._expr(stmt.cond)
            self.emit(f"    bnez {reg}, {body_label}")
            self.regs.pop()
            self.emit(f"{done}:")
            return
        self.emit(f"{head}:")
        reg = self._expr(stmt.cond)
        self.emit(f"    beqz {reg}, {done}")
        self.regs.pop()
        self.loop_stack.append((head, done))
        self._stmt(stmt.body)
        self.loop_stack.pop()
        self.emit(f"    j {head}")
        self.emit(f"{done}:")

    # -- expressions ------------------------------------------------------------------------

    def _expr_for_effect(self, expr: CExpr) -> None:
        reg = self._expr(expr)
        self.regs.pop()
        _ = reg

    def _expr(self, expr: CExpr) -> str:
        """Compile an expression; result lands in a freshly pushed register."""
        if isinstance(expr, CNum):
            reg = self.regs.push()
            self.emit(f"    li {reg}, {expr.value}")
            return reg
        if isinstance(expr, CVar):
            if expr.name not in self.offsets:
                raise CompileError(f"undefined variable '{expr.name}'",
                                   expr.line)
            reg = self.regs.push()
            if expr.name in self.array_sizes:
                self.emit(f"    addi {reg}, s0, {self.offsets[expr.name]}")
            else:
                self.emit(f"    lw {reg}, {self.offsets[expr.name]}(s0)")
            return reg
        if isinstance(expr, CIndex):
            addr = self._address_of(expr)
            self.emit(f"    lw {addr}, 0({addr})")
            return addr
        if isinstance(expr, CAssign):
            return self._assign(expr)
        if isinstance(expr, CUnary):
            return self._unary(expr)
        if isinstance(expr, CBinary):
            return self._binary(expr)
        if isinstance(expr, CTernary):
            return self._ternary(expr)
        if isinstance(expr, CCall):
            return self._call(expr)
        if isinstance(expr, CCast):
            return self._expr(expr.operand)
        if isinstance(expr, CSizeof):
            reg = self.regs.push()
            self.emit(f"    li {reg}, 4")
            return reg
        raise CompileError(f"cannot compile {type(expr).__name__}")

    def _address_of(self, expr: CIndex) -> str:
        if not isinstance(expr.base, CVar):
            raise CompileError("only direct array indexing is supported")
        name = expr.base.name
        if name not in self.offsets:
            raise CompileError(f"undefined array '{name}'")
        idx = self._expr(expr.index)
        self.emit(f"    slli {idx}, {idx}, 2")
        if name in self.array_sizes:
            self.emit(f"    addi {idx}, {idx}, {self.offsets[name]}")
            self.emit(f"    add {idx}, {idx}, s0")
        else:
            # Pointer/array parameter: base address stored in the slot.
            base = self.regs.push()
            self.emit(f"    lw {base}, {self.offsets[name]}(s0)")
            self.emit(f"    add {idx}, {idx}, {base}")
            self.regs.pop()
        return idx

    def _assign(self, expr: CAssign) -> str:
        if isinstance(expr.target, CVar):
            name = expr.target.name
            if name not in self.offsets:
                raise CompileError(f"undefined variable '{name}'", expr.line)
            if expr.op == "=":
                value = self._expr(expr.value)
            else:
                value = self._expr(CBinary(expr.op[:-1], expr.target,
                                           expr.value))
            self.emit(f"    sw {value}, {self.offsets[name]}(s0)")
            return value
        if isinstance(expr.target, CIndex):
            if expr.op == "=":
                value = self._expr(expr.value)
            else:
                value = self._expr(CBinary(expr.op[:-1], expr.target,
                                           expr.value))
            addr = self._address_of(expr.target)
            self.emit(f"    sw {value}, 0({addr})")
            self.regs.pop()  # addr
            return value
        raise CompileError("unsupported assignment target", expr.line)

    def _unary(self, expr: CUnary) -> str:
        if expr.op in ("++", "--"):
            target = expr.operand
            binop = "+" if expr.op == "++" else "-"
            if expr.postfix:
                old = self._expr(target)
                update = CAssign("=", target, CBinary(binop, target, CNum(1)))
                self._expr_for_effect(update)
                return old
            return self._expr(CAssign("=", target,
                                      CBinary(binop, target, CNum(1))))
        reg = self._expr(expr.operand)
        if expr.op == "-":
            self.emit(f"    neg {reg}, {reg}")
        elif expr.op == "~":
            self.emit(f"    not {reg}, {reg}")
        elif expr.op == "!":
            self.emit(f"    seqz {reg}, {reg}")
        else:
            raise CompileError(f"unary '{expr.op}' not supported for codegen")
        return reg

    def _binary(self, expr: CBinary) -> str:
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        self.regs.pop()   # right
        ops = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
               "&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra"}
        if expr.op in ops:
            self.emit(f"    {ops[expr.op]} {left}, {left}, {right}")
            return left
        if expr.op == "<":
            self.emit(f"    slt {left}, {left}, {right}")
            return left
        if expr.op == ">":
            self.emit(f"    slt {left}, {right}, {left}")
            return left
        if expr.op == "<=":
            self.emit(f"    slt {left}, {right}, {left}")
            self.emit(f"    xori {left}, {left}, 1")
            return left
        if expr.op == ">=":
            self.emit(f"    slt {left}, {left}, {right}")
            self.emit(f"    xori {left}, {left}, 1")
            return left
        if expr.op == "==":
            self.emit(f"    sub {left}, {left}, {right}")
            self.emit(f"    seqz {left}, {left}")
            return left
        if expr.op == "!=":
            self.emit(f"    sub {left}, {left}, {right}")
            self.emit(f"    snez {left}, {left}")
            return left
        raise CompileError(f"binary '{expr.op}' not supported for codegen")

    def _short_circuit(self, expr: CBinary) -> str:
        end = self._label("sc")
        reg = self._expr(expr.left)
        self.emit(f"    snez {reg}, {reg}")
        if expr.op == "&&":
            self.emit(f"    beqz {reg}, {end}")
        else:
            self.emit(f"    bnez {reg}, {end}")
        right = self._expr(expr.right)
        self.emit(f"    snez {right}, {right}")
        self.emit(f"    mv {reg}, {right}")
        self.regs.pop()
        self.emit(f"{end}:")
        return reg

    def _ternary(self, expr: CTernary) -> str:
        else_label = self._label("terne")
        end_label = self._label("ternd")
        cond = self._expr(expr.cond)
        self.emit(f"    beqz {cond}, {else_label}")
        self.regs.pop()
        result = self._expr(expr.if_true)
        self.emit(f"    j {end_label}")
        self.emit(f"{else_label}:")
        self.regs.pop()
        other = self._expr(expr.if_false)
        assert other == result
        self.emit(f"{end_label}:")
        return result

    def _call(self, expr: CCall) -> str:
        builtin = self._builtin(expr)
        if builtin is not None:
            return builtin
        if expr.func not in self.program.functions:
            raise CompileError(f"call to undefined function '{expr.func}'",
                               expr.line)
        if len(expr.args) > len(_ARG_REGS):
            raise CompileError("too many call arguments", expr.line)
        # Temps are caller-saved in this simple ABI: spill any that are live
        # across the call (supports calls inside subexpressions).
        live = self.regs.depth
        for i in range(live):
            self.emit(f"    sw {_TEMP_REGS[i]}, {self.spill_slots[i]}(s0)")
        arg_regs: list[str] = []
        for arg in expr.args:
            arg_regs.append(self._expr(arg))
        for i, reg in enumerate(arg_regs):
            self.emit(f"    mv {_ARG_REGS[i]}, {reg}")
        for _ in arg_regs:
            self.regs.pop()
        self.emit(f"    call {expr.func}")
        for i in range(live):
            self.emit(f"    lw {_TEMP_REGS[i]}, {self.spill_slots[i]}(s0)")
        reg = self.regs.push()
        self.emit(f"    mv {reg}, a0")
        return reg

    def _builtin(self, expr: CCall) -> str | None:
        if expr.func == "abs":
            reg = self._expr(expr.args[0])
            skip = self._label("abs")
            self.emit(f"    bge {reg}, zero, {skip}")
            self.emit(f"    neg {reg}, {reg}")
            self.emit(f"{skip}:")
            return reg
        if expr.func in ("min", "max"):
            a = self._expr(expr.args[0])
            b = self._expr(expr.args[1])
            skip = self._label(expr.func)
            branch = "blt" if expr.func == "min" else "bge"
            self.emit(f"    {branch} {a}, {b}, {skip}")
            self.emit(f"    mv {a}, {b}")
            self.emit(f"{skip}:")
            self.regs.pop()
            return a
        if expr.func == "printf":
            # No console on the DUT: evaluate args for effect, result 0.
            for arg in expr.args[1:]:
                self._expr_for_effect(arg)
            reg = self.regs.push()
            self.emit(f"    li {reg}, 0")
            return reg
        return None


def compile_program(source: str | CProgram, entry: str = "main") -> str:
    """Compile mini-C to RV32IM assembly text.

    The output starts with a shim that calls ``entry`` and halts, so the
    core can run it directly.
    """
    program = cparse(source) if isinstance(source, str) else source
    if entry not in program.functions:
        raise CompileError(f"entry function '{entry}' not found")
    lines: list[str] = []
    label_counter = [0]
    lines.append("_start:")
    lines.append("    li sp, 0x10000")
    lines.append(f"    call {entry}")
    lines.append("    halt")
    for func in program.functions.values():
        _FunctionCompiler(program, func, lines.append, label_counter).compile()
    return "\n".join(lines)
