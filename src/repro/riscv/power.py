"""Activity-based power model for the out-of-order core.

Calibrated so that realistic RV32IM workloads on the simulated BOOM-class
core land in the 3-6 W band the SLT case study reports for BOOM on an FPGA
(best LLM snippet 5.042 W, best GP snippet 5.682 W).  The model is
structural: power rises with sustained IPC, with multiplier/divider
occupancy, with memory traffic, and with operand toggle activity — so
power-maximizing search is a genuine optimization problem over program
structure, not a lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core import CoreStats
from .isa import UNIT_ALU, UNIT_BRANCH, UNIT_DIV, UNIT_LSU, UNIT_MUL

# Watts. Static floor covers clocks, uncore and leakage on the FPGA.
STATIC_POWER_W = 2.75

# Per-unit energy coefficients (W at 100% occupancy and 50% toggle activity).
_UNIT_POWER_W = {
    UNIT_ALU: 0.90,
    UNIT_MUL: 2.40,
    UNIT_DIV: 1.20,
    UNIT_LSU: 1.00,
    UNIT_BRANCH: 0.45,
}

# Front-end (fetch/decode/rename) and ROB scale with IPC.
_FRONTEND_W_PER_IPC = 0.50
_ROB_W_PER_IPC = 0.28
# Mispredict recovery burns pipeline energy.
_MISPREDICT_W = 0.25
# Cache misses light up the memory hierarchy.
_MISS_W = 0.50


@dataclass(frozen=True)
class PowerBreakdown:
    static_w: float
    frontend_w: float
    rob_w: float
    unit_w: dict[str, float]
    branch_recovery_w: float
    memory_w: float

    @property
    def total_w(self) -> float:
        return (self.static_w + self.frontend_w + self.rob_w
                + sum(self.unit_w.values()) + self.branch_recovery_w
                + self.memory_w)

    def summary(self) -> str:
        units = ", ".join(f"{k}={v:.2f}" for k, v in sorted(self.unit_w.items()))
        return (f"total={self.total_w:.3f}W (static={self.static_w:.2f}, "
                f"frontend={self.frontend_w:.2f}, rob={self.rob_w:.2f}, "
                f"units[{units}], branch={self.branch_recovery_w:.2f}, "
                f"mem={self.memory_w:.2f})")


def estimate_power(stats: CoreStats) -> PowerBreakdown:
    """Average power for the run summarized by ``stats``."""
    ipc = stats.ipc
    frontend = _FRONTEND_W_PER_IPC * ipc
    rob = _ROB_W_PER_IPC * ipc

    unit_w: dict[str, float] = {}
    for unit, base in _UNIT_POWER_W.items():
        rate = stats.unit_rate(unit)
        activity = stats.unit_activity.get(unit, 0.0)
        # 0.5 activity is the calibration midpoint; toggling above it adds
        # power, static-ish data below it saves power.
        unit_w[unit] = base * rate * (0.6 + 0.8 * activity)

    mispredict_rate = (stats.mispredicts / stats.cycles) if stats.cycles else 0
    branch_recovery = _MISPREDICT_W * mispredict_rate * 10.0
    miss_rate = (stats.cache_misses / stats.cycles) if stats.cycles else 0
    memory = _MISS_W * miss_rate * 10.0

    return PowerBreakdown(
        static_w=STATIC_POWER_W,
        frontend_w=frontend,
        rob_w=rob,
        unit_w=unit_w,
        branch_recovery_w=branch_recovery,
        memory_w=memory,
    )


def power_of(stats: CoreStats) -> float:
    return estimate_power(stats).total_w
