"""Two-pass assembler for the RV32IM subset.

Accepts the textual form the compiler emits (labels, ABI register names,
``imm(reg)`` addressing, a few pseudo-instructions) and produces a resolved
:class:`Program` the core executes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .isa import Instruction, SPECS, parse_register


class AsmError(Exception):
    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"[ASM] {message} (line {line})")


@dataclass
class Program:
    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        by_index: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines: list[str] = []
        for i, instr in enumerate(self.instructions):
            for label in by_index.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"    {instr}")
        return "\n".join(lines)


_PSEUDO_DOC = """Supported pseudo-instructions:
  li rd, imm      -> lui+addi / addi
  mv rd, rs       -> addi rd, rs, 0
  nop             -> addi x0, x0, 0
  not rd, rs      -> xori rd, rs, -1
  neg rd, rs      -> sub rd, x0, rs
  j label         -> jal x0, label
  ret             -> jalr x0, ra, 0
  call label      -> jal ra, label
  beqz/bnez rs, label
  halt            -> ebreak
"""


def _parse_imm(text: str, line: int) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise AsmError(f"bad immediate '{text}'", line) from None


def _split_mem(operand: str, line: int) -> tuple[int, int]:
    """Parse 'imm(reg)' into (imm, reg)."""
    operand = operand.strip()
    if "(" not in operand or not operand.endswith(")"):
        raise AsmError(f"bad memory operand '{operand}'", line)
    imm_text, reg_text = operand[:-1].split("(", 1)
    imm = _parse_imm(imm_text or "0", line)
    return imm, parse_register(reg_text)


class Assembler:
    def __init__(self, source: str):
        self.source = source

    def assemble(self) -> Program:
        program = Program()
        pending: list[tuple[Instruction, int]] = []   # needing label resolution
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#")[0].split("//")[0].strip()
            if not line:
                continue
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.replace("_", "").replace(".", "").isalnum():
                    raise AsmError(f"bad label '{label}'", lineno)
                program.labels[label] = len(program.instructions)
                line = rest.strip()
            if not line:
                continue
            for instr in self._parse_line(line, lineno):
                program.instructions.append(instr)

        # Resolve labels to instruction-index offsets.
        resolved: list[Instruction] = []
        for index, instr in enumerate(program.instructions):
            if instr.label is not None:
                if instr.label not in program.labels:
                    raise AsmError(f"undefined label '{instr.label}'")
                target = program.labels[instr.label]
                # Branch/jump immediates are *instruction index deltas* × 4.
                offset = (target - index) * 4
                resolved.append(dataclasses.replace(instr, imm=offset,
                                                    label=instr.label))
            else:
                resolved.append(instr)
        program.instructions = resolved
        return program

    def _parse_line(self, line: str, lineno: int) -> list[Instruction]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [o.strip() for o in parts[1].split(",")] if len(parts) > 1 \
            else []

        # Pseudo-instructions.
        if mnemonic == "nop":
            return [Instruction("addi", rd=0, rs1=0, imm=0)]
        if mnemonic == "halt":
            return [Instruction("ebreak")]
        if mnemonic == "li":
            rd = parse_register(operands[0])
            value = _parse_imm(operands[1], lineno)
            if -2048 <= value < 2048:
                return [Instruction("addi", rd=rd, rs1=0, imm=value)]
            upper = (value + 0x800) >> 12
            lower = value - (upper << 12)
            return [Instruction("lui", rd=rd, imm=upper & 0xFFFFF),
                    Instruction("addi", rd=rd, rs1=rd, imm=lower)]
        if mnemonic == "mv":
            return [Instruction("addi", rd=parse_register(operands[0]),
                                rs1=parse_register(operands[1]), imm=0)]
        if mnemonic == "not":
            return [Instruction("xori", rd=parse_register(operands[0]),
                                rs1=parse_register(operands[1]), imm=-1)]
        if mnemonic == "neg":
            return [Instruction("sub", rd=parse_register(operands[0]),
                                rs1=0, rs2=parse_register(operands[1]))]
        if mnemonic == "j":
            return [Instruction("jal", rd=0, label=operands[0])]
        if mnemonic == "call":
            return [Instruction("jal", rd=1, label=operands[0])]
        if mnemonic == "ret":
            return [Instruction("jalr", rd=0, rs1=1, imm=0)]
        if mnemonic in ("beqz", "bnez"):
            real = "beq" if mnemonic == "beqz" else "bne"
            return [Instruction(real, rs1=parse_register(operands[0]),
                                rs2=0, label=operands[1])]
        if mnemonic in ("seqz",):
            return [Instruction("sltiu", rd=parse_register(operands[0]),
                                rs1=parse_register(operands[1]), imm=1)]
        if mnemonic in ("snez",):
            return [Instruction("sltu", rd=parse_register(operands[0]),
                                rs1=0, rs2=parse_register(operands[1]))]

        spec = SPECS.get(mnemonic)
        if spec is None:
            raise AsmError(f"unknown mnemonic '{mnemonic}'", lineno)
        fmt = spec.fmt
        if fmt == "R":
            return [Instruction(mnemonic, rd=parse_register(operands[0]),
                                rs1=parse_register(operands[1]),
                                rs2=parse_register(operands[2]))]
        if fmt == "I":
            if spec.opcode == 0b0000011:  # loads: rd, imm(rs1)
                imm, rs1 = _split_mem(operands[1], lineno)
                return [Instruction(mnemonic, rd=parse_register(operands[0]),
                                    rs1=rs1, imm=imm)]
            if mnemonic == "jalr":
                if len(operands) == 3:
                    return [Instruction("jalr", rd=parse_register(operands[0]),
                                        rs1=parse_register(operands[1]),
                                        imm=_parse_imm(operands[2], lineno))]
                imm, rs1 = _split_mem(operands[1], lineno)
                return [Instruction("jalr", rd=parse_register(operands[0]),
                                    rs1=rs1, imm=imm)]
            if mnemonic == "ebreak":
                return [Instruction("ebreak")]
            return [Instruction(mnemonic, rd=parse_register(operands[0]),
                                rs1=parse_register(operands[1]),
                                imm=_parse_imm(operands[2], lineno))]
        if fmt == "S":
            imm, rs1 = _split_mem(operands[1], lineno)
            return [Instruction(mnemonic, rs2=parse_register(operands[0]),
                                rs1=rs1, imm=imm)]
        if fmt == "B":
            target = operands[2]
            if target.lstrip("-").isdigit():
                return [Instruction(mnemonic, rs1=parse_register(operands[0]),
                                    rs2=parse_register(operands[1]),
                                    imm=_parse_imm(target, lineno))]
            return [Instruction(mnemonic, rs1=parse_register(operands[0]),
                                rs2=parse_register(operands[1]), label=target)]
        if fmt == "U":
            return [Instruction(mnemonic, rd=parse_register(operands[0]),
                                imm=_parse_imm(operands[1], lineno))]
        if fmt == "J":
            target = operands[1]
            if target.lstrip("-").isdigit():
                return [Instruction(mnemonic, rd=parse_register(operands[0]),
                                    imm=_parse_imm(target, lineno))]
            return [Instruction(mnemonic, rd=parse_register(operands[0]),
                                label=target)]
        raise AsmError(f"cannot assemble format {fmt}", lineno)


def assemble(source: str) -> Program:
    """Assemble RV32IM text into a resolved :class:`Program`."""
    return Assembler(source).assemble()
