"""FPGA measurement-rig simulator.

The SLT study measures power on a physical FPGA: each evaluation costs real
wall-clock time (program load, run, power capture) and returns a noisy
reading.  Both properties matter to the experiment's shape — the 24 h / 39 h
budgets in Section V are *measurement-rig hours*, not CPU hours — so the
meter simulates them: a virtual clock advances per measurement, and readings
carry seeded Gaussian noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .assembler import Program, assemble
from .compiler import CompileError, compile_program
from .core import Core, CoreConfig, CoreStats, ExecutionFault
from .power import estimate_power


@dataclass
class PowerMeasurement:
    ok: bool
    watts: float = 0.0
    stats: CoreStats | None = None
    error: str = ""
    measurement_seconds: float = 0.0


@dataclass
class FpgaPowerMeter:
    """Simulated measurement setup: compile → load → run → read power."""

    config: CoreConfig = field(default_factory=CoreConfig)
    noise_sigma_w: float = 0.015
    # Program load + run + power capture. 24 h of rig time at this rate is
    # ~2021 measurements — the snippet count the paper reports for its 24 h run.
    seconds_per_measurement: float = 42.75
    seconds_per_failure: float = 9.0         # compile errors fail fast
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.elapsed_seconds = 0.0
        self.measurements = 0

    def measure_c(self, c_source: str, entry: str = "main") -> PowerMeasurement:
        """Compile a C snippet and measure its power on the core."""
        try:
            asm = compile_program(c_source, entry=entry)
        except Exception as exc:   # parse or compile failure
            self.elapsed_seconds += self.seconds_per_failure
            return PowerMeasurement(ok=False, error=f"compile: {exc}",
                                    measurement_seconds=self.seconds_per_failure)
        return self.measure_asm(asm)

    def measure_asm(self, asm_source: str) -> PowerMeasurement:
        try:
            program = assemble(asm_source)
        except Exception as exc:
            self.elapsed_seconds += self.seconds_per_failure
            return PowerMeasurement(ok=False, error=f"assemble: {exc}",
                                    measurement_seconds=self.seconds_per_failure)
        return self.measure_program(program)

    def measure_program(self, program: Program) -> PowerMeasurement:
        cost = self.seconds_per_measurement
        try:
            stats = Core(self.config).run(program)
        except ExecutionFault as exc:
            # Unwanted exception or timeout: score zero, per the paper.
            self.elapsed_seconds += cost
            self.measurements += 1
            return PowerMeasurement(ok=False, error=str(exc),
                                    measurement_seconds=cost)
        clean = estimate_power(stats).total_w
        noisy = clean + self._rng.gauss(0.0, self.noise_sigma_w)
        self.elapsed_seconds += cost
        self.measurements += 1
        return PowerMeasurement(ok=True, watts=max(0.0, noisy), stats=stats,
                                measurement_seconds=cost)

    @property
    def elapsed_hours(self) -> float:
        return self.elapsed_seconds / 3600.0
