"""``repro.riscv`` — RV32IM substrate: ISA, assembler, mini-C compiler,
out-of-order core timing model, and the FPGA power-measurement simulator.

Substitutes for the BOOM-on-FPGA rig of the SLT case study (Section V).
"""

from .assembler import AsmError, Assembler, Program, assemble
from .compiler import CompileError, compile_program
from .core import (Core, CoreConfig, CoreStats, ExecutionFault, TraceEntry,
                   run_program)
from .fpga import FpgaPowerMeter, PowerMeasurement
from .isa import (ABI_NAMES, Instruction, InstrSpec, SPECS, UNIT_ALU,
                  UNIT_BRANCH, UNIT_DIV, UNIT_LSU, UNIT_MUL, decode, encode,
                  parse_register)
from .power import (PowerBreakdown, STATIC_POWER_W, estimate_power, power_of)

__all__ = [
    "ABI_NAMES", "AsmError", "Assembler", "CompileError", "Core",
    "CoreConfig", "CoreStats", "ExecutionFault", "FpgaPowerMeter",
    "InstrSpec", "Instruction", "PowerBreakdown", "PowerMeasurement",
    "Program", "SPECS", "STATIC_POWER_W", "TraceEntry", "UNIT_ALU",
    "UNIT_BRANCH", "UNIT_DIV", "UNIT_LSU", "UNIT_MUL", "assemble",
    "compile_program", "decode", "encode", "estimate_power",
    "parse_register", "power_of", "run_program",
]
