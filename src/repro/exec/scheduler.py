"""Sweep scheduler: pipelined generation + evaluation across sweep cells.

A sweep is a grid of independent runs — ``problems × seeds`` (or budgets,
models, mutations).  Each cell alternates between *generation* (model
calls, latency-bound, ideally coalesced into broker micro-batches) and
*evaluation* (tool calls, CPU-bound, ideally spread across cores).  A
serial sweep interleaves the two phases one cell at a time, so neither
resource is ever saturated.

:class:`SweepScheduler` schedules whole cells concurrently and picks the
worker flavour by where the model calls run:

* with the service broker enabled (``REPRO_SERVICE=1``) cells run on
  **threads**: every cell's generations land on the shared in-process
  broker lanes, so concurrent cells coalesce micro-batches with each
  other while other cells' tool evaluations overlap the model latency —
  the generation/evaluation pipeline;
* with direct clients, cells run under the :class:`ParallelEvaluator`'s
  ``auto`` policy (process pool for CPU-bound work, thread fallback).

Determinism: cells are independent by construction (each builds its own
client from ``(model, seed)``), results return in submission order, and a
generation is a pure function of its key — so a scheduled sweep's
statistics are byte-identical to the serial loop.  ``jobs`` resolves
through the usual chain (argument > ``REPRO_JOBS`` > serial), and the
serial default *is* the plain loop.

Checkpointing: when a :func:`repro.store.campaign_scope` is active, the
scheduler journals every completed cell to the artifact store as it lands
and — on a ``--resume`` run — replays the journaled prefix instead of
recomputing it.  A cell's checkpoint key mixes the campaign fingerprint,
the task function, the cell index and the cell's content hash, so a
checkpoint can only ever be replayed into the exact slot that produced it
and a resumed campaign is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..config import get_settings
from ..obs import get_metrics, get_tracer
from ..store import MISS, CampaignJournal, content_key, current_journal
from .parallel import ParallelEvaluator


class SweepScheduler:
    """Order-preserving map over sweep cells; see the module docstring."""

    def __init__(self, jobs: int | str | None = None,
                 timeout: float | None = None):
        self.evaluator = ParallelEvaluator(
            jobs,
            mode="thread" if get_settings().service_enabled else "auto",
            timeout=timeout)

    @property
    def jobs(self) -> int:
        return self.evaluator.jobs

    @property
    def mode(self) -> str:
        return self.evaluator.mode

    def map(self, fn: Callable[[Any], Any], cells: Iterable[Any],
            timeout_result: Callable[[Any], Any] | None = None) -> list[Any]:
        """Run every cell; results in submission order."""
        work = list(cells)
        tracer = get_tracer()
        journal = current_journal()
        with tracer.span("exec.sweep", cells=len(work), jobs=self.jobs,
                         mode=self.mode) as sp:
            get_metrics().counter("exec.sweep_cells").add(len(work))
            if journal is None:
                return self.evaluator.map(fn, work,
                                          timeout_result=timeout_result)
            return self._checkpointed(fn, work, timeout_result, journal, sp)

    def _checkpointed(self, fn: Callable[[Any], Any], work: list[Any],
                      timeout_result, journal: CampaignJournal,
                      span) -> list[Any]:
        label = getattr(fn, "__qualname__", None) or str(fn)
        keys = [("cell", label, index, content_key(cell))
                for index, cell in enumerate(work)]
        results = [journal.lookup(*key) for key in keys]
        pending = [(index, cell)
                   for index, (cell, hit) in enumerate(zip(work, results))
                   if hit is MISS]

        def checkpoint(slot: int, _cell: Any, result: Any) -> None:
            index = pending[slot][0]
            journal.record(*keys[index], result)
            results[index] = result

        if pending:
            fresh = self.evaluator.map(fn, [cell for _, cell in pending],
                                       timeout_result=timeout_result,
                                       on_result=checkpoint)
            # Timeout placeholders bypass the checkpoint hook (an execution
            # accident must not be journaled as a cell outcome); fill their
            # slots from the returned list.
            for (index, _cell), result in zip(pending, fresh):
                if results[index] is MISS:
                    results[index] = result
        restored = len(work) - len(pending)
        span.set(restored=restored)
        if restored and get_tracer().enabled:
            get_metrics().counter("exec.sweep_cells_restored").add(restored)
        return results


def sweep_map(fn: Callable[[Any], Any], cells: Iterable[Any],
              jobs: int | str | None = None,
              timeout: float | None = None,
              timeout_result: Callable[[Any], Any] | None = None) -> list:
    """One-shot convenience wrapper around :class:`SweepScheduler`."""
    return SweepScheduler(jobs, timeout=timeout).map(
        fn, cells, timeout_result=timeout_result)
