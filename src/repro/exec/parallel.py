"""Parallel evaluation engine for CPU-bound EDA-tool invocations.

LLM-for-EDA loops are gated by tool-invocation throughput: pass@k sampling,
VRank self-consistency clustering and trojan-detection sweeps all score
many *independent* candidates.  :class:`ParallelEvaluator` fans those
evaluations out over a ``concurrent.futures`` pool while guaranteeing:

* **deterministic ordering** — results come back in submission order, so a
  parallel run assembles byte-identical statistics to the serial run;
* **process-pool default** for CPU-bound simulation (fork start method where
  available so worker state — e.g. hash randomization — matches the parent),
  with a thread fallback when tasks are not picklable or process spawning is
  unavailable;
* **per-task timeouts** — a stuck evaluation yields ``timeout_result``
  instead of wedging the whole sweep;
* a ``REPRO_JOBS`` environment knob so every flow and benchmark script can
  be parallelized without threading a parameter through each call site.

Job resolution order: explicit ``jobs`` argument > ``REPRO_JOBS`` env var >
serial (1).  ``jobs="auto"`` or any value < 0 means one worker per CPU.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (Future, ProcessPoolExecutor,
                                ThreadPoolExecutor, TimeoutError as
                                FutureTimeout)
from typing import Any, Callable, Iterable, Sequence

JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Resolve a worker count from the argument or the environment."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        jobs = env
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = -1
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, jobs)


class EvaluationTimeout(Exception):
    """A task exceeded the evaluator's per-task timeout."""


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return None


class ParallelEvaluator:
    """Order-preserving map over a process (or thread) pool.

    ``mode`` is one of ``"auto"`` (process pool, thread fallback),
    ``"process"``, ``"thread"``, or ``"serial"``.  With one job the
    evaluator always degrades to a plain in-process loop, so the serial
    path stays byte-for-byte identical to the pre-parallel code.
    """

    def __init__(self, jobs: int | str | None = None, mode: str = "auto",
                 timeout: float | None = None):
        if mode not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown evaluator mode '{mode}'")
        self.jobs = resolve_jobs(jobs)
        self.mode = "serial" if self.jobs <= 1 else mode
        self.timeout = timeout

    # -- public -------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            timeout_result: Callable[[Any], Any] | None = None) -> list[Any]:
        """Apply ``fn`` to every item; results in submission order.

        On a per-task timeout, the slot receives ``timeout_result(item)``
        when provided, otherwise :class:`EvaluationTimeout` is raised.
        Worker exceptions propagate unchanged.
        """
        work = list(items)
        if self.mode == "serial" or len(work) <= 1:
            return [fn(item) for item in work]
        if self.mode in ("auto", "process"):
            try:
                return self._pooled(self._process_executor(), fn, work,
                                    timeout_result)
            except (OSError, ValueError, TypeError, AttributeError,
                    ImportError) as exc:
                if self.mode == "process":
                    raise
                # Unpicklable closure / sandboxed platform: degrade to threads.
                return self._pooled(self._thread_executor(), fn, work,
                                    timeout_result, note=str(exc))
        return self._pooled(self._thread_executor(), fn, work, timeout_result)

    # -- internals ----------------------------------------------------------

    def _process_executor(self) -> ProcessPoolExecutor:
        ctx = _fork_context()
        if ctx is not None:
            return ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx)
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _thread_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.jobs)

    def _pooled(self, executor, fn, work: Sequence[Any],
                timeout_result, note: str = "") -> list[Any]:
        with executor:
            futures: list[Future] = [executor.submit(fn, item)
                                     for item in work]
            out: list[Any] = []
            for item, future in zip(work, futures):
                try:
                    out.append(future.result(timeout=self.timeout))
                except FutureTimeout:
                    future.cancel()
                    if timeout_result is None:
                        raise EvaluationTimeout(
                            f"evaluation exceeded {self.timeout}s") from None
                    out.append(timeout_result(item))
            return out


def parallel_map(fn: Callable[[Any], Any], items: Iterable[Any],
                 jobs: int | str | None = None, mode: str = "auto",
                 timeout: float | None = None,
                 timeout_result: Callable[[Any], Any] | None = None) -> list:
    """One-shot convenience wrapper around :class:`ParallelEvaluator`."""
    return ParallelEvaluator(jobs, mode=mode, timeout=timeout).map(
        fn, items, timeout_result=timeout_result)
